#!/usr/bin/env python3
"""Reward design attack: buy yourself a better equilibrium (Section 5).

The full manipulation pipeline:

1. Find a game with several equilibria and a miner who earns strictly
   more in one of them (Proposition 2 — such a miner almost always
   exists).
2. Run the dynamic reward design mechanism (Algorithm 2) against an
   *adversarial* better-response learner: it still lands on the target.
3. Price the manipulation as whale-transaction fee spend and report the
   break-even horizon — the paper's "bounded cost, indefinite gain".

Run: ``python examples/reward_design_attack.py``
"""

from repro import DynamicRewardDesign, random_game
from repro.core import enumerate_equilibria
from repro.learning import MinimalGainPolicy, SmallestFirstScheduler
from repro.manipulation import improvement_opportunities, manipulation_roi


def main() -> None:
    # Small enough to enumerate equilibria exactly.
    game = random_game(6, 2, seed=0, ensure_generic=True)
    equilibria = enumerate_equilibria(game)
    print(f"game: {game}")
    print(f"pure equilibria found: {len(equilibria)}")

    start = equilibria[0]
    opportunities = improvement_opportunities(game, start, equilibria)
    best = opportunities[0]
    print(
        f"\nbeneficiary: {best.miner.name} "
        f"(payoff {float(best.payoff_before):.2f} → {float(best.payoff_after):.2f}, "
        f"gain ratio {best.gain_ratio:.2f}x)"
    )

    # The paper's guarantee covers ANY better-response learner; use the
    # most obstructive one we have.
    mechanism = DynamicRewardDesign(
        policy=MinimalGainPolicy(),
        scheduler=SmallestFirstScheduler(),
    )
    result = mechanism.run(game, start, best.target, seed=7)
    print(f"\nmechanism success: {result.success}")
    print(f"stages: {len(result.stage_reports)}")
    for report in result.stage_reports:
        print(
            f"  stage {report.stage}: {report.iterations} reward designs, "
            f"{report.steps} better-response steps"
        )
    print(f"total boosted rounds: {result.ledger.total_rounds()}")
    print(f"peak boost per round: {float(result.ledger.peak_excess_per_round()):.1f}")

    roi = manipulation_roi(game, best.miner, start, best.target, result.ledger)
    print(f"\nwhale fee spend: {float(roi.cost):.1f}")
    print(f"gain per round at the new equilibrium: {float(roi.gain_per_round):.3f}")
    print(f"break-even after: {roi.break_even_rounds:.0f} rounds")
    print("after that, the advantage is free — the system stays at the")
    print("target equilibrium because it is stable under the organic rewards.")


if __name__ == "__main__":
    main()
