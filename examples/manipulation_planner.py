#!/usr/bin/env python3
"""The manipulation planner: should this miner pay to move the market?

Combines basin analysis (where does learning land on its own?) with the
Section 5 mechanism (what does it cost to force a landing?) to produce
an investment decision for a specific miner.

Run: ``python examples/manipulation_planner.py``
"""

from repro.analysis import basin_profile
from repro.core import enumerate_equilibria, random_game
from repro.manipulation import plan_manipulation


def main() -> None:
    game = random_game(6, 2, seed=0, ensure_generic=True)
    equilibria = enumerate_equilibria(game)
    print(f"{game}\nequilibria: {len(equilibria)}")

    profile = basin_profile(game, samples=60, seed=1)
    current, frequency = profile.dominant()
    print(
        f"\nleft alone, learning lands on {current.as_dict()} "
        f"{frequency:.0%} of the time (entropy {profile.entropy():.2f} bits)"
    )

    beneficiary = max(game.miners, key=lambda m: m.power)
    print(f"\nplanning for {beneficiary.name} (power {float(beneficiary.power):.1f})")
    print(f"  payoff at the likely equilibrium: "
          f"{float(game.payoff(beneficiary, current)):.3f}")

    report = plan_manipulation(
        game, beneficiary, current, equilibria, basin=profile, seed=2
    )
    if report.luck_baseline is not None:
        print(f"  do-nothing baseline (basin-weighted): "
              f"{float(report.luck_baseline):.3f}")
    if not report.plans:
        print("  no equilibrium improves this miner — nothing to buy.")
        return

    print(f"\n{len(report.plans)} executable plan(s), fastest payback first:")
    for rank, plan in enumerate(report.plans, start=1):
        be = (f"{plan.break_even_rounds:.0f} rounds"
              if plan.break_even_rounds is not None else "never")
        print(
            f"  #{rank}: gain {float(plan.gain_per_round):+.3f}/round, "
            f"cost {float(plan.cost):.1f}, break-even {be}, "
            f"{plan.mechanism_steps} induced moves"
        )

    horizon = 20_000
    verdict = "BUY" if report.worth_buying(horizon) else "PASS"
    print(f"\nverdict at a {horizon}-round horizon: {verdict}")


if __name__ == "__main__":
    main()
