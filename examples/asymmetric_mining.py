#!/usr/bin/env python3
"""Asymmetric mining: the paper's future-work case, executed.

"One also may wonder about the asymmetric case where some coins can be
mined only by a subset of the miners" (Discussion). Here: a market with
two SHA256d coins and two Scrypt coins, miners with fixed hardware
classes, and legal better-response learning. Theorem 1's convergence
survives the restriction — and the example shows *why it matters*:
hardware walls segment the market, so the same miner earns a different
RPU depending on which side of the wall it was born on.

Run: ``python examples/asymmetric_mining.py``
"""

from repro.core import RestrictedGame, random_game
from repro.core.configuration import Configuration
from repro.learning import RestrictedLearningEngine


def main() -> None:
    game = random_game(10, 4, seed=21)
    coin_algorithms = {"c1": "sha256d", "c2": "sha256d", "c3": "scrypt", "c4": "scrypt"}
    miner_hardware = {
        miner.name: ("sha256d" if index < 6 else "scrypt")
        for index, miner in enumerate(game.miners)
    }
    restricted = RestrictedGame.by_algorithm(game, coin_algorithms, miner_hardware)
    print(restricted)
    for miner in game.miners:
        allowed = ", ".join(coin.name for coin in restricted.allowed_coins(miner))
        print(f"  {miner.name} ({miner_hardware[miner.name]:8s}) may mine: {allowed}")

    # Start everyone on their first allowed coin and learn.
    start = Configuration.from_mapping(
        game.miners,
        {miner: restricted.allowed_coins(miner)[0] for miner in game.miners},
    )
    engine = RestrictedLearningEngine(mode="random")
    trajectory = engine.run(restricted, start, seed=1)
    print(f"\nconverged in {trajectory.length} legal better-response steps")
    print(f"equilibrium: {trajectory.final.as_dict()}")
    assert restricted.is_stable(trajectory.final)

    print("\nRPU per coin at the restricted equilibrium:")
    for coin in game.coins:
        rpu = game.rpu(coin, trajectory.final)
        print(f"  {coin.name} ({coin_algorithms[coin.name]:8s}): "
              f"{float(rpu) if rpu is not None else float('nan'):.3f}")
    print("\nnote the RPU gap between hardware classes: the wall prevents")
    print("arbitrage, so per-unit profitability does NOT equalize across it.")

    greedy = restricted.greedy_equilibrium()
    print(f"\nrestricted greedy construction stable: {restricted.is_stable(greedy)}")


if __name__ == "__main__":
    main()
