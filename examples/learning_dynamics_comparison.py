#!/usr/bin/env python3
"""Compare learning dynamics: better-response variants vs MWU.

The paper assumes only *minimal rationality* — arbitrary improving
steps. This example shows how the choice of concrete learning process
changes convergence speed but never the fact of convergence, and
contrasts with multiplicative-weights (regret) learning from the
related work, which converges in a weaker (empirical-play) sense.

Run: ``python examples/learning_dynamics_comparison.py``
"""

from repro import random_game
from repro.analysis import measure_convergence
from repro.learning import (
    BestResponsePolicy,
    LargestFirstScheduler,
    MinimalGainPolicy,
    MultiplicativeWeightsLearner,
    RandomImprovingPolicy,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)


def main() -> None:
    game = random_game(25, 4, power_distribution="pareto", seed=11)
    print(f"game: {game} (pareto powers: a few whales, a long tail)\n")

    processes = [
        ("best response × uniform", BestResponsePolicy(), UniformRandomScheduler()),
        ("best response × largest-first", BestResponsePolicy(), LargestFirstScheduler()),
        ("random improving × uniform", RandomImprovingPolicy(), UniformRandomScheduler()),
        ("minimal gain × smallest-first", MinimalGainPolicy(), SmallestFirstScheduler()),
    ]
    print(f"{'process':38s} {'mean':>8s} {'median':>8s} {'p95':>8s} {'max':>6s}")
    for label, policy, scheduler in processes:
        stats = measure_convergence(
            game, runs=15, policy=policy, scheduler=scheduler, seed=3
        )
        print(
            f"{label:38s} {stats.mean_steps:8.1f} {stats.median_steps:8.1f} "
            f"{stats.p95_steps:8.1f} {stats.max_steps:6d}"
        )

    print("\nmultiplicative weights (full-information Hedge):")
    learner = MultiplicativeWeightsLearner(step_size=0.3)
    outcome = learner.run(game, rounds=400, seed=5)
    if outcome.stabilized_at is not None:
        print(f"  realized play stabilized at round {outcome.stabilized_at}")
    else:
        print("  realized play had not stabilized after 400 rounds")
    print("  final mixed strategies concentrate on single coins for "
          f"{sum(1 for row in outcome.final_strategies if row.max() > 0.9)}"
          f"/{len(outcome.final_strategies)} miners")


if __name__ == "__main__":
    main()
