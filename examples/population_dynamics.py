#!/usr/bin/env python3
"""A million miners, exactly: population-compressed dynamics.

The per-miner engines top out around thousands of miners — the state
is a coin per miner and every convergence tail is population-sized. But
miners with equal power and equal allowed-coin set are
*interchangeable*, so a real market with millions of rigs in a handful
of hardware tiers compresses to a tiny integer count matrix. This
example:

1. Builds a 1,000,000-miner market in four hardware tiers directly
   from a spec — no per-miner objects exist at any point.
2. Runs chunked better-response dynamics to an exact equilibrium
   (every macro step is a maximal run of single improving moves, so
   Theorem 1 still applies verbatim).
3. Checks the equilibrium exactly and reads off per-tier payoffs and
   per-coin hashrate shares as exact fractions.
4. Maps the basin structure with the compressed analysis helpers.

Run: ``python examples/population_dynamics.py``
"""

from fractions import Fraction

from repro.analysis import class_basin_profile
from repro.kernel import ClassGame, run_class_better_response


def main() -> None:
    # (power, allowed coin indices, population): ASIC farms are rare and
    # locked to the major chains, CPUs are everywhere and mine anything.
    cgame = ClassGame.from_spec(
        [
            (1, None, 600_000),        # CPUs: any coin
            (20, None, 300_000),       # GPUs: any coin
            (400, (0, 1, 2), 90_000),  # old ASICs: the three big chains
            (9_000, (0, 1), 10_000),   # ASIC farms: BTC/BCH only
        ],
        rewards=[100, 35, 20, 8],
        coin_names=["btc", "bch", "ltc", "doge"],
    )
    print(f"market: {cgame}")
    print(f"compression: {cgame.compression:,.0f} miners per state row")

    start = cgame.random_counts(seed=1)
    trajectory = run_class_better_response(cgame, start, seed=2, chunk=True)
    assert trajectory.converged and cgame.is_stable_counts(trajectory.final)
    print(
        f"converged in {trajectory.steps} macro steps "
        f"({trajectory.moved:,} miner moves collapsed into them)"
    )

    mass = cgame.mass_of(trajectory.final)
    total = sum(mass)
    print("\nequilibrium hashrate shares (exact):")
    for name, coin_mass in zip(cgame.coin_names, mass):
        share = Fraction(coin_mass, total)
        print(f"  {name}: {float(share):7.2%}  ({share})")

    print("\nper-tier payoffs at equilibrium (per miner, exact):")
    for k, payoffs in enumerate(cgame.class_payoffs(trajectory.final)):
        population = cgame.populations[k]
        line = ", ".join(f"{coin}={float(p):.6f}" for coin, p in payoffs.items())
        print(f"  tier {cgame.class_names[k]} ({population:,} miners): {line}")

    profile = class_basin_profile(cgame, samples=8, seed=3)
    print(
        f"\nbasins from 8 random starts: {profile.distinct_equilibria} distinct "
        f"equilibria, dominant share {profile.dominant()[1]:.0%}, "
        f"entropy {profile.entropy():.2f} bits"
    )


if __name__ == "__main__":
    main()
