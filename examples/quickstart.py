#!/usr/bin/env python3
"""Quickstart: build a game, let miners learn, inspect the equilibrium.

Covers the paper's Section 2–3 story in ~40 lines:

1. A market of 5 miners and 3 coins.
2. Arbitrary better-response learning from a random start — Theorem 1
   guarantees it converges, and we check it does.
3. The equilibrium's payoffs and the evenness of revenue-per-unit.

Run: ``python examples/quickstart.py``
"""

from repro import Game, LearningEngine, random_configuration
from repro.analysis import payoff_distribution, reward_per_unit_spread, verifies_observation3
from repro.core import greedy_equilibrium


def main() -> None:
    # Powers are in arbitrary hash-rate units; rewards in fiat per round.
    game = Game.create(
        powers=[50, 30, 20, 10, 5],
        reward_values=[100, 60, 30],
    )
    print(f"game: {game}")

    start = random_configuration(game, seed=1)
    print(f"start: {start.as_dict()}")

    trajectory = LearningEngine().run(game, start, seed=2)
    final = trajectory.final
    print(f"converged after {trajectory.length} better-response steps")
    print(f"equilibrium: {final.as_dict()}")
    assert game.is_stable(final), "Theorem 1 says this cannot happen"

    print("\npayoffs at equilibrium:")
    for name, payoff in payoff_distribution(game, final).items():
        print(f"  {name}: {float(payoff):.2f}")

    print(f"\nwelfare optimal (Observation 3): {verifies_observation3(game, final)}")
    print(f"RPU spread across coins (1.0 = even): {reward_per_unit_spread(game, final):.3f}")

    constructed = greedy_equilibrium(game)
    print(f"\nAppendix A greedy equilibrium: {constructed.as_dict()}")
    print(f"greedy construction stable: {game.is_stable(constructed)}")


if __name__ == "__main__":
    main()
