#!/usr/bin/env python3
"""Figure 1 replay: the November-2017 BTC → BCH hashrate migration.

Builds the synthetic market episode (BCH price spikes ~3× on day 4 and
decays over two days), replays it through equilibrium learning, and
prints an ASCII chart of the BCH hashrate share against the BCH/BTC
profitability ratio — the two panels of the paper's Figure 1.

Run: ``python examples/btc_bch_migration.py``
"""

import numpy as np

from repro.market import btc_bch_scenario


def ascii_series(label: str, values: np.ndarray, width: int = 60) -> str:
    """Render a series as a one-line-per-sample ASCII bar chart."""
    peak = float(values.max()) or 1.0
    lines = [label]
    for index, value in enumerate(values):
        bar = "#" * max(1, int(width * float(value) / peak))
        lines.append(f"  t={index:3d}  {float(value):8.3f}  {bar}")
    return "\n".join(lines)


def main() -> None:
    scenario = btc_bch_scenario(
        horizon_h=240.0,   # ten days around the episode
        resolution_h=8.0,  # one game per 8 simulated hours
        tail_miners=20,
        seed=2017,
    )
    print(f"miners: {len(scenario.miners)}  coins: {[c.name for c in scenario.coins]}")

    replay = scenario.replay(seed=1)
    bch_share = replay.hashrate_share("BCH")
    ratio = scenario.weight_series().ratio("BCH", "BTC")

    print(ascii_series("\nBCH/BTC profitability ratio (Figure 1(a) analogue):", ratio))
    print(ascii_series("\nBCH hashrate share (Figure 1(b) analogue):", bch_share))

    jump = int(96 / 8)
    pre = bch_share[:jump].mean()
    peak = bch_share[jump:].max()
    print(f"\nBCH share before the price spike: {pre:.3f}")
    print(f"BCH share peak after the spike:   {peak:.3f}")
    print(f"migration factor: {peak / pre:.1f}x  (price spike was 3x)")
    print(f"total coin switches during the episode: {replay.total_switches()}")


if __name__ == "__main__":
    main()
