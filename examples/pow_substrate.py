#!/usr/bin/env python3
"""The PoW substrate under the game: blocks, difficulty, realized rewards.

Demonstrates the substitution claim of DESIGN.md §4: the paper's payoff
``u_p = m_p·F(c)/M_c`` is the long-run limit of the physical block
lottery. We run the event-driven chain simulation with *static*
assignments and compare each miner's realized fiat income with the game
model's prediction, then switch on strategic re-evaluation and the 2017
difficulty rules to watch migration happen block by block.

Run: ``python examples/pow_substrate.py``
"""

import numpy as np

from repro.chainsim import BitcoinRetarget, MiningSimulation, SimMiner, bch_2017_rule
from repro.market import bitcoin_cash_spec, bitcoin_spec


def main() -> None:
    rng = np.random.default_rng(42)
    miners = [SimMiner(f"m{i}", float(p)) for i, p in enumerate(rng.uniform(10, 60, 12))]
    specs = [bitcoin_spec(), bitcoin_cash_spec()]

    def flat_rate(t: float, coin: str) -> float:
        return 6500.0 if coin == "BTC" else 620.0

    # Part 1: static miners — realized vs expected income.
    assignment = {m.name: ("BTC" if i % 3 else "BCH") for i, m in enumerate(miners)}
    sim = MiningSimulation(specs, miners, flat_rate, reevaluation_rate_per_h=1e-9, seed=1)
    horizon = 2000.0
    result = sim.run(horizon, initial_assignment=assignment, sample_resolution_h=100.0)

    print("static assignment, 2000 simulated hours:")
    print(f"  blocks: BTC={result.blocks_found('BTC')}, BCH={result.blocks_found('BCH')}")
    print(f"\n  {'miner':6s} {'coin':4s} {'realized/h':>12s} {'expected/h':>12s} {'ratio':>7s}")
    spec_by_name = {s.name: s for s in specs}
    for miner in miners:
        coin = assignment[miner.name]
        on_coin = sum(m.power for m in miners if assignment[m.name] == coin)
        spec = spec_by_name[coin]
        expected = (
            miner.power / on_coin * spec.coins_per_block * flat_rate(0, coin)
            * spec.blocks_per_hour
        )
        realized = result.fiat_by_miner[miner.name] / horizon
        print(
            f"  {miner.name:6s} {coin:4s} {realized:12.1f} {expected:12.1f} "
            f"{realized / expected:7.3f}"
        )

    # Part 2: strategic switching with 2017 difficulty rules.
    print("\nstrategic switching (BCH price doubles at t=48h):")

    def spiking_rate(t: float, coin: str) -> float:
        if coin == "BCH":
            return 620.0 * (2.0 if t >= 48.0 else 1.0)
        return 6500.0

    sim2 = MiningSimulation(
        specs,
        miners,
        spiking_rate,
        difficulty_rules={"BTC": BitcoinRetarget(window=36), "BCH": bch_2017_rule()},
        reevaluation_rate_per_h=2.0,
        seed=2,
    )
    result2 = sim2.run(96.0, sample_resolution_h=8.0)
    shares = result2.hashrate_shares["BCH"]
    print(f"  BCH hashrate share every 8h: {[round(float(s), 2) for s in shares]}")
    print(f"  switches: {len(result2.switches)}")
    print(f"  final BCH difficulty: {result2.chains['BCH'].difficulty:.1f}")


if __name__ == "__main__":
    main()
