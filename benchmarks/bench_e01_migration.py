"""E1 — Figure 1: BTC→BCH hashrate migration (game + chain layers).

Paper artifact: Figure 1 ("Miners move from Bitcoin to Bitcoin Cash").
Expected shape: BCH's hashrate share rises by roughly the profitability
swing (≈3×) when the exchange rate spikes, then decays with the spike.
"""

from benchmarks.conftest import run_once
from repro.experiments import e01_migration


def test_e01_figure1_migration(benchmark, show):
    result = run_once(
        benchmark,
        e01_migration.run,
        horizon_h=240.0,
        resolution_h=4.0,
        tail_miners=20,
        chain_miners=25,
        chain_horizon_h=72.0,
        seed=2017,
    )
    show(result.table)
    # Shape checks, not absolute numbers (synthetic substrate):
    # the spike must pull hashrate to BCH by a clearly >1 factor ...
    assert result.metrics["migration_factor"] > 1.5
    # ... the share must decay from the peak as the rate spike decays ...
    assert result.metrics["bch_share_post"] < result.metrics["bch_share_peak"]
    # ... and the block-granular layer must show actual switching.
    assert result.metrics["chain_switches"] > 0
