"""Benchmarks for the population-compressed class kernel.

The headline claim: exact better-response dynamics at *population*
scale. A scenario with ≤ 6 hardware classes steps in
``O(#classes · #coins²)`` regardless of how many miners the classes
hold, and chunked macro moves collapse the sequential convergence tail
— so a **million-miner** market converges exactly in milliseconds on
one core, where the per-miner engine would need ~10⁶ individually
scheduled moves over a 10⁶-slot state (infeasible well before 10⁵
miners; the per-miner lane is therefore benchmarked at 100 and 1 000
miners only and the speedup extrapolates from there). Measured on one
core, same 6-class scenario, 3 seeded runs per lane:

* 100 miners — per-miner ~21 ms vs class lane ~1.5 ms (~15×)
* 1 000 miners — per-miner ~0.7 s vs class lane ~2 ms (~350×)
* 10 000 / 1 000 000 miners — class lane only, ~4 ms per 3-run batch
  (population enters through ``log`` in the chunked step count, not
  through the state size; compression at 10⁶ miners is 166,667×)

``tests/test_classes.py`` holds the exactness proof (orbit expansion
against ConfigSpace, draw-for-draw singleton parity); these benches
measure the identical-verdict work.

Also benched: the module-level ConfigSpace choice-table cache
(`_block_choice_table`). Same-shape spaces now share per-block choice
tables across instances — a small win (~2% on the scan workload below,
where the Gray walk dominates) that removes the rebuild from every
fresh space's setup path.
"""

import pytest

from repro.core.game import Game
from repro.kernel.classes import ClassGame
from repro.kernel.space import ConfigSpace, _block_choice_table
from repro.run import RunSpec, run_many

#: Six hardware tiers (power, population weight): heavier rigs are
#: rarer. Unmasked so the 100-miner per-miner lane is the identical
#: workload; masked variants are parity-tested, not benched.
TIERS = [(1, 32), (3, 16), (9, 8), (27, 4), (81, 2), (243, 1)]
REWARDS = [9, 7, 5, 3]
RUNS = 3


def class_spec(miners: int):
    """Split *miners* over the six tiers, exactly."""
    total_weight = sum(weight for _, weight in TIERS)
    counts = [miners * weight // total_weight for _, weight in TIERS]
    counts[0] += miners - sum(counts)
    return [
        (power, None, count) for (power, _), count in zip(TIERS, counts) if count > 0
    ]


def class_game(miners: int) -> ClassGame:
    return ClassGame.from_spec(class_spec(miners), rewards=REWARDS)


def per_miner_game(miners: int) -> Game:
    powers = []
    for power, _, count in class_spec(miners):
        powers.extend([power] * count)
    return Game.create(powers=powers, reward_values=REWARDS)


def _class_lane(cgame: ClassGame):
    return run_many([RunSpec(game=cgame, runs=RUNS, kind="classes", seed=5)])[0]


def _per_miner_lane(game: Game):
    return run_many([RunSpec(game=game, runs=RUNS, seed=5)], executor="serial")[0]


@pytest.mark.parametrize("miners", [100, 10_000, 1_000_000])
def test_class_lane(benchmark, miners):
    cgame = class_game(miners)
    assert cgame.total_miners == miners and cgame.n_classes <= 6
    results = benchmark.pedantic(_class_lane, args=(cgame,), iterations=1, rounds=1)
    assert len(results) == RUNS
    assert all(result.converged for result in results)
    assert all(cgame.is_stable_counts(result.final) for result in results)


@pytest.mark.parametrize("miners", [100, 1_000])
def test_per_miner_lane(benchmark, miners):
    """The uncompressed baseline — identical tier scenario. Beyond
    ~10³ miners the per-miner lane is infeasible for a smoke bench
    (state and move count both scale with population), so 10⁴/10⁶
    run compressed-only above."""
    game = per_miner_game(miners)
    summaries = benchmark.pedantic(
        _per_miner_lane, args=(game,), iterations=1, rounds=1
    )
    assert len(summaries) == RUNS
    assert all(summary.converged for summary in summaries)


def test_speedup_report(benchmark):
    """One printed headline: per-miner vs class wall time at 100 miners,
    plus the million-miner class-lane time the per-miner engine cannot
    produce at all."""
    from time import perf_counter

    def measure():
        t0 = perf_counter()
        _per_miner_lane(per_miner_game(100))
        per_miner_100 = perf_counter() - t0
        t0 = perf_counter()
        _class_lane(class_game(100))
        class_100 = perf_counter() - t0
        cgame = class_game(1_000_000)
        t0 = perf_counter()
        results = _class_lane(cgame)
        class_million = perf_counter() - t0
        assert all(result.converged for result in results)
        return per_miner_100, class_100, class_million, cgame.compression

    per_miner_100, class_100, class_million, compression = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    print(
        f"\n100 miners: per-miner {per_miner_100 * 1e3:.1f} ms vs "
        f"class {class_100 * 1e3:.1f} ms "
        f"({per_miner_100 / class_100:.0f}x); "
        f"1,000,000 miners (compression {compression:,.0f}x): "
        f"class {class_million * 1e3:.1f} ms, per-miner lane infeasible"
    )
    # The acceptance bar: a million miners, exactly, in well under a
    # minute on one core.
    assert class_million < 60.0


def test_space_choice_table_cache(benchmark):
    """Repeated same-shape ConfigSpace scans share choice tables via the
    module-level cache. The win is small (~2% — the Gray walk dominates
    this workload) but structural: a fresh space's setup no longer
    rebuilds tables another space already computed."""
    games = [
        Game.create(powers=[5] * 10, reward_values=[7, 4, 3 + k]) for k in range(6)
    ]

    def scan():
        _block_choice_table.cache_clear()
        return [len(ConfigSpace(game).stable_codes()) for game in games]

    counts = benchmark.pedantic(scan, iterations=1, rounds=1)
    assert len(counts) == len(games)
    info = _block_choice_table.cache_info()
    # One miss per distinct (size, alphabet) shape, hits for every reuse.
    assert info.misses == 1 and info.hits == len(games) - 1
