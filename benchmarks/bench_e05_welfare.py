"""E5 — Observation 3 / Claim 4: equilibria are globally optimal.

Paper artifact: Observation 3 + Claim 4 (Section 4). Expected: under
Assumption 1 every enumerated equilibrium attains welfare Σ F(c)
(PoA = PoS = 1), and with >1 equilibrium, Claim 4's improving miner
always exists.
"""

from benchmarks.conftest import run_once
from repro.experiments import e05_welfare


def test_e05_welfare_optimality(benchmark, show):
    result = run_once(benchmark, e05_welfare.run, games=12, miners=6, coins=2, seed=0)
    show(result.table)
    assert result.metrics["observation3_fraction"] == 1.0
    assert result.metrics["claim4_fraction"] == 1.0
    assert result.metrics["equilibria_audited"] > 10
