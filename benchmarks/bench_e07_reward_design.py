"""E7 — Algorithm 2 / Theorem 2: dynamic reward design works.

Paper artifact: Algorithm 2, Lemma 1, Theorem 2 (Section 5). Expected:
100% success moving between random equilibrium pairs, for both a benign
and an adversarial better-response learner, with small finite stage
iteration counts.
"""

from benchmarks.conftest import run_once
from repro.experiments import e07_reward_design


def test_e07_reward_design(benchmark, show):
    result = run_once(
        benchmark,
        e07_reward_design.run,
        miner_counts=(4, 6, 8),
        coins=3,
        pairs_per_size=4,
        seed=0,
    )
    show(result.table)
    assert result.metrics["success_rate"] == 1.0
    assert result.metrics["runs"] >= 10
    # Theorem 2 bounds stage-i iterations by 2^(n−i+1); empirically they
    # stay well below that (tens, not thousands, at these sizes).
    assert result.metrics["worst_stage_iterations"] <= 100
