"""E11 — extension: asymmetric (hardware-restricted) mining.

Paper artifact: Discussion ("the asymmetric case where some coins can
be mined only by a subset of the miners"). Expected: Theorem 1's
convergence and the Appendix A construction survive the restriction —
100% convergence, ordinal potential still strictly increasing,
restricted greedy equilibria stable.
"""

from benchmarks.conftest import run_once
from repro.experiments import e11_asymmetric


def test_e11_asymmetric_mining(benchmark, show):
    result = run_once(
        benchmark,
        e11_asymmetric.run,
        games=8,
        miners=10,
        coins=4,
        starts_per_game=4,
        seed=0,
    )
    show(result.table)
    assert result.metrics["convergence_rate"] == 1.0
    assert result.metrics["greedy_stable_rate"] == 1.0
    assert result.metrics["potential_monotone"]
