"""E14 — extension: exact worst-case learning time.

Paper artifact: Theorem 1, graph form — improvement graphs are DAGs
whose sinks are the pure equilibria. Expected: 100% acyclicity, sinks
agree with enumeration, and the exact longest path upper-bounds every
empirical trajectory (often attained by the adversarial learner).

The space engine raised the bench size from 5 to 10 miners (1024-node
DAGs per game, analyzed exactly) plus a symmetric 3^12-configuration
showcase reduced to 91 orbits — all within the old 5-miner budget.
"""

from benchmarks.conftest import run_once
from repro.experiments import e14_exact_paths


def test_e14_exact_worst_case(benchmark, show):
    result = run_once(
        benchmark,
        e14_exact_paths.run,
        games=6,
        miners=10,
        coins=2,
        empirical_runs=25,
        seed=0,
    )
    show(result.table)
    assert result.metrics["all_acyclic"]
    assert result.metrics["sinks_match_equilibria"]
    assert result.metrics["symmetric_acyclic"]
    assert result.metrics["symmetric_orbits_scanned"] < result.metrics[
        "symmetric_configurations"
    ]
