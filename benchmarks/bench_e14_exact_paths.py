"""E14 — extension: exact worst-case learning time.

Paper artifact: Theorem 1, graph form — improvement graphs are DAGs
whose sinks are the pure equilibria. Expected: 100% acyclicity, sinks
agree with enumeration, and the exact longest path upper-bounds every
empirical trajectory (often attained by the adversarial learner).
"""

from benchmarks.conftest import run_once
from repro.experiments import e14_exact_paths


def test_e14_exact_worst_case(benchmark, show):
    result = run_once(
        benchmark,
        e14_exact_paths.run,
        games=6,
        miners=5,
        coins=2,
        empirical_runs=25,
        seed=0,
    )
    show(result.table)
    assert result.metrics["all_acyclic"]
    assert result.metrics["sinks_match_equilibria"]
