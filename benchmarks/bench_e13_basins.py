"""E13 — extension: equilibrium basins and the manipulation planner.

Paper artifact: the economic motivation of Section 5 (you cannot rely
on learning to land in your favourite equilibrium). Expected: multiple
equilibria are reached from random starts (nonzero basin entropy), and
the planner finds profitable, finite-break-even manipulations.
"""

from benchmarks.conftest import run_once
from repro.experiments import e13_basins


def test_e13_basins_and_planner(benchmark, show):
    result = run_once(
        benchmark,
        e13_basins.run,
        games=5,
        miners=6,
        coins=2,
        samples=30,
        horizon_rounds=20_000,
        seed=0,
    )
    show(result.table)
    assert result.metrics["plans_evaluated"] >= 3
    assert result.metrics["worth_buying_fraction"] > 0.5
