"""Head-to-head: the unified view-driven trajectory loop, fast vs exact.

Three workload cells, each run on both backends so
``benchmarks/compare.py`` tracks the strategy-view refactor's speedups:

* ``standard`` — an E9-sized trajectory workload (20 miners × 4 coins,
  random-improving × uniform) with the built-in strategies;
* ``custom`` — the same workload under a *custom* view-based policy
  and scheduler subclass. Before the refactor custom subclasses were
  exiled to the exact Fraction loop; now they ride the integer kernel,
  which is the refactor's headline speedup;
* ``restricted`` — a hardware-restricted (asymmetric) game, which
  gained the integer kernel's mask-aware fast path.

Each fast cell asserts bit-identical final states against its exact
twin, so the bench doubles as a parity check at benchmark scale.
"""

from __future__ import annotations

import numpy as np

from repro.core.configuration import Configuration
from repro.core.factories import random_configuration, random_game
from repro.core.restricted import RestrictedGame
from repro.learning.engine import LearningEngine
from repro.learning.examples import PowerWeightedScheduler, SecondBestPolicy
from repro.learning.restricted_engine import RestrictedLearningEngine

MINERS = 20
COINS = 4
RUNS = 8


def _trajectories(backend, policy=None, scheduler=None):
    game = random_game(MINERS, COINS, power_distribution="pareto", seed=7)
    engine = LearningEngine(
        policy=policy,
        scheduler=scheduler,
        record_configurations=False,
        backend=backend,
    )
    finals = []
    for run in range(RUNS):
        start = random_configuration(game, seed=1000 + run)
        finals.append(engine.run(game, start, seed=run).final)
    return finals


def _restricted_trajectories(backend):
    game = random_game(12, 4, seed=11)
    rng = np.random.default_rng(11)
    allowed = {}
    for miner in game.miners:
        picks = [coin for coin in game.coins if rng.random() < 0.7]
        allowed[miner] = picks or [game.coins[int(rng.integers(0, len(game.coins)))]]
    restricted = RestrictedGame(game, allowed)
    engine = RestrictedLearningEngine(mode="random", backend=backend)
    finals = []
    for run in range(RUNS):
        start = Configuration(
            game.miners,
            [
                restricted.allowed_coins(miner)[
                    int(rng.integers(0, len(restricted.allowed_coins(miner))))
                ]
                for miner in game.miners
            ],
        )
        finals.append(engine.run(restricted, start, seed=run).final)
    return finals


def test_engine_standard_exact(benchmark):
    finals = benchmark(_trajectories, "exact")
    assert len(finals) == RUNS


def test_engine_standard_fast(benchmark):
    finals = benchmark(_trajectories, "fast")
    assert finals == _trajectories("exact")


def test_engine_custom_exact(benchmark):
    finals = benchmark(
        _trajectories, "exact", SecondBestPolicy(), PowerWeightedScheduler()
    )
    assert len(finals) == RUNS


def test_engine_custom_fast(benchmark):
    finals = benchmark(
        _trajectories, "fast", SecondBestPolicy(), PowerWeightedScheduler()
    )
    assert finals == _trajectories("exact", SecondBestPolicy(), PowerWeightedScheduler())


def test_engine_restricted_exact(benchmark):
    finals = benchmark(_restricted_trajectories, "exact")
    assert len(finals) == RUNS


def test_engine_restricted_fast(benchmark):
    finals = benchmark(_restricted_trajectories, "fast")
    assert finals == _restricted_trajectories("exact")
