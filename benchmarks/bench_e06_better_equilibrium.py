"""E6 — Proposition 2: there is often a better equilibrium.

Paper artifact: Proposition 2 (Section 4). Expected: in games
satisfying A1+A2 with multiple equilibria, (nearly) every equilibrium
admits a miner who is strictly better off in another equilibrium.
"""

from benchmarks.conftest import run_once
from repro.experiments import e06_better_equilibrium


def test_e06_better_equilibrium(benchmark, show):
    result = run_once(
        benchmark, e06_better_equilibrium.run, games=15, miners=6, coins=2, seed=0
    )
    show(result.table)
    # Proposition 2 says 100% under its assumptions; games violating A1
    # are excluded from the denominator inside the experiment.
    assert result.metrics["improvement_fraction"] == 1.0
    assert result.metrics["mean_best_gain_ratio"] > 1.0
