"""E10 — discussion: dominance attacks + staged-vs-naive ablation.

Paper artifact: Discussion (driving the system to a configuration where
one miner dominates a coin) + the implicit justification of the staged
mechanism. Expected: dominance attacks succeed whenever an equilibrium
target exists; the staged mechanism's success rate (100%) strictly
beats the naive single-shot designs.
"""

from benchmarks.conftest import run_once
from repro.experiments import e10_security_ablation


def test_e10_security_and_ablation(benchmark, show):
    result = run_once(
        benchmark,
        e10_security_ablation.run,
        games=8,
        miners=6,
        coins=2,
        naive_trials_per_pair=3,
        seed=0,
    )
    show(result.table)
    assert result.metrics["staged_success_rate"] == 1.0
    if result.metrics["dominance_targets_found"] > 0:
        assert result.metrics["attack_success_rate"] == 1.0
    # The ablation's point: naive designs are NOT reliable.
    assert (
        result.metrics["single_shot_success_rate"]
        <= result.metrics["staged_success_rate"]
    )
