#!/usr/bin/env python
"""Assert instrumented-code benchmarks stayed within a slowdown budget.

Usage::

    python benchmarks/overhead_guard.py baseline.json candidate.json \
        --prefix bench_engine --tolerance 0.03

The observability layer promises zero overhead when disabled: the
NullRecorder default must leave the hot loops' cost unchanged. This
guard compares a candidate ``bench.json`` against a baseline and fails
(exit 1) if any benchmark matching ``--prefix`` slowed down by more
than ``--tolerance`` (fractional — 0.03 allows 3%).

Missing baselines (first run on a branch, expired CI artifact) and
empty intersections skip with exit 0 so the guard never blocks a build
for reasons other than a real regression; stamp mismatches between the
two files are reported but also skip, since cross-version timings are
not evidence of overhead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Optional, Tuple

_STAMP_KEYS = ("repro_version", "python", "numpy")


def _load(path: str) -> Tuple[Dict[str, float], Optional[Dict[str, Any]]]:
    with open(path) as handle:
        data = json.load(handle)
    means = {
        bench["fullname"]: bench["stats"]["mean"] for bench in data.get("benchmarks", [])
    }
    return means, data.get("repro_stamp")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="pre-change bench.json")
    parser.add_argument("candidate", help="post-change bench.json")
    parser.add_argument(
        "--prefix",
        default="bench_engine",
        help="only guard benchmarks whose fullname contains this (default: bench_engine)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.03,
        help="allowed fractional slowdown (default: 0.03 = 3%%)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"overhead guard: no baseline at {args.baseline}; skipping")
        return 0
    baseline, base_stamp = _load(args.baseline)
    candidate, cand_stamp = _load(args.candidate)
    if base_stamp and cand_stamp:
        mismatched = [
            key for key in _STAMP_KEYS if base_stamp.get(key) != cand_stamp.get(key)
        ]
        if mismatched:
            print(
                "overhead guard: environment stamps differ "
                f"({', '.join(mismatched)}); cross-version timings are not "
                "overhead evidence; skipping"
            )
            return 0

    shared = sorted(
        name for name in set(baseline) & set(candidate) if args.prefix in name
    )
    if not shared:
        print(f"overhead guard: no shared benchmarks matching {args.prefix!r}; skipping")
        return 0

    failures = 0
    for name in shared:
        old = baseline[name]
        new = candidate[name]
        ratio = new / old if old else float("inf")
        verdict = "ok" if ratio <= 1.0 + args.tolerance else "REGRESSION"
        if verdict != "ok":
            failures += 1
        print(
            f"{verdict:>10}  {name}  {old * 1e3:.2f}ms → {new * 1e3:.2f}ms "
            f"({(ratio - 1.0) * 100.0:+.1f}%)"
        )
    if failures:
        print(
            f"overhead guard: {failures} benchmark(s) slowed beyond "
            f"{args.tolerance * 100.0:.0f}%",
            file=sys.stderr,
        )
        return 1
    print(f"overhead guard: {len(shared)} benchmark(s) within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
