"""E12 — extension: simultaneous moves vs sequential (Theorem 1's scope).

Paper artifact: the sequential-moves assumption in Section 2's learning
model. Expected: the synchronous best-response dynamic cycles on most
games/starts (so Theorem 1's sequentiality is load-bearing), while
per-miner inertia restores convergence.
"""

from benchmarks.conftest import run_once
from repro.experiments import e12_simultaneous


def test_e12_simultaneous_dynamics(benchmark, show):
    result = run_once(
        benchmark,
        e12_simultaneous.run,
        games=6,
        miners=8,
        coins=3,
        starts=8,
        inertias=(0.0, 0.3, 0.6),
        seed=0,
    )
    show(result.table)
    # Without inertia the synchronous dynamic must cycle often...
    assert result.metrics["sync_cycle_rate"] > 0.5
    # ...and inertia must strictly reduce cycling.
    assert result.metrics["inertia_helps"]
    assert result.metrics["inertial_cycle_rate"] < result.metrics["sync_cycle_rate"]
