"""Shared helpers for the benchmark harness.

Each ``bench_eXX_*.py`` module regenerates one paper table/figure: it
runs the corresponding ``repro.experiments`` runner inside
pytest-benchmark (one round — the experiments are deterministic given
their seeds), prints the reproduced table, and asserts the headline
metrics EXPERIMENTS.md records.

Run with::

    pytest benchmarks/ --benchmark-only

Saved ``bench.json`` artifacts carry a ``repro_stamp`` (library/python/
numpy versions, git SHA, hostname) so ``benchmarks/compare.py`` can
refuse to diff runs from different library or toolchain versions.
"""

from __future__ import annotations

import pytest


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp saved benchmark JSON with the environment it ran in."""
    from repro.obs.manifest import environment_stamp

    output_json["repro_stamp"] = environment_stamp()


@pytest.fixture
def show(capsys):
    """Print a table through pytest's captured stdout at once."""

    def _show(renderable) -> None:
        with capsys.disabled():
            print()
            print(renderable.render())

    return _show


def run_once(benchmark, fn, **kwargs):
    """Run *fn* exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, iterations=1, rounds=1)
