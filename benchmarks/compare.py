#!/usr/bin/env python
"""Diff two pytest-benchmark JSON artifacts and print per-bench speedups.

Usage::

    python benchmarks/compare.py old_bench.json new_bench.json

For every benchmark present in both files, prints old/new mean runtime
and the speedup ratio (old ÷ new — >1 means the new run is faster);
benches present in only one file are listed separately. The table is
meant to be pasted into PR descriptions, next to the CI ``bench.json``
artifacts it consumes.

Both files carry the ``repro_stamp`` the benchmark harness embeds
(library/python/numpy versions). When the stamps disagree the numbers
measure different code, not a speedup, so the comparison is refused
with exit code 2 — override with ``--force`` if you really mean it.
Files without a stamp (pre-stamp artifacts) compare with a warning.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Tuple

#: Stamp fields that must agree for a comparison to be meaningful.
_STAMP_KEYS = ("repro_version", "python", "numpy")


def _load(path: str) -> Tuple[Dict[str, float], Optional[Dict[str, Any]], str]:
    """benchmark fullname → mean value, the environment stamp, the units.

    Accepts both pytest-benchmark artifacts (mean seconds) and
    ``repro.sweep`` reports (mean steps; the report declares
    ``"units": "steps"``) — both carry ``benchmarks[].fullname``,
    ``benchmarks[].stats.mean`` and a ``repro_stamp``.
    """
    with open(path) as handle:
        data = json.load(handle)
    means = {
        bench["fullname"]: bench["stats"]["mean"] for bench in data.get("benchmarks", [])
    }
    return means, data.get("repro_stamp"), data.get("units", "seconds")


def _check_stamps(
    old_stamp: Optional[Dict[str, Any]],
    new_stamp: Optional[Dict[str, Any]],
    force: bool,
) -> bool:
    """Whether the two runs are comparable; prints warnings/refusals."""
    if old_stamp is None or new_stamp is None:
        for label, stamp in (("old", old_stamp), ("new", new_stamp)):
            if stamp is None:
                print(
                    f"warning: {label} bench.json carries no repro_stamp; "
                    "cannot verify it ran the same library version",
                    file=sys.stderr,
                )
        return True
    mismatched = [
        key
        for key in _STAMP_KEYS
        if old_stamp.get(key) != new_stamp.get(key)
    ]
    if not mismatched:
        return True
    for key in mismatched:
        print(
            f"{'refusing' if not force else 'warning'}: {key} differs between runs "
            f"({old_stamp.get(key)!r} vs {new_stamp.get(key)!r})",
            file=sys.stderr,
        )
    if force:
        return True
    print(
        "these artifacts measure different code/toolchains, not a speedup; "
        "rerun the baseline on this version or pass --force",
        file=sys.stderr,
    )
    return False


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _fmt_value(value: float, units: str) -> str:
    if units == "seconds":
        return _fmt_seconds(value)
    return f"{value:.3f}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline bench.json (e.g. from main)")
    parser.add_argument("new", help="candidate bench.json (e.g. from the PR)")
    parser.add_argument(
        "--force",
        action="store_true",
        help="compare even when the environment stamps disagree",
    )
    args = parser.parse_args(argv)

    old, old_stamp, old_units = _load(args.old)
    new, new_stamp, new_units = _load(args.new)
    if old_units != new_units:
        print(
            f"refusing: units differ between runs ({old_units!r} vs {new_units!r}); "
            "a timing artifact cannot be diffed against a sweep report",
            file=sys.stderr,
        )
        return 2
    if not _check_stamps(old_stamp, new_stamp, args.force):
        return 2
    shared = sorted(set(old) & set(new))
    if not shared:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 1

    name_width = max(len(name) for name in shared)
    ratio_head = "speedup" if old_units == "seconds" else "old/new"
    print(f"{'benchmark'.ljust(name_width)}  {'old':>10}  {'new':>10}  {ratio_head:>8}")
    print(f"{'-' * name_width}  {'-' * 10}  {'-' * 10}  {'-' * 8}")
    for name in shared:
        ratio = old[name] / new[name] if new[name] else float("inf")
        print(
            f"{name.ljust(name_width)}  {_fmt_value(old[name], old_units):>10}  "
            f"{_fmt_value(new[name], new_units):>10}  {ratio:>7.2f}×"
        )
    for label, names in (("only in old", set(old) - set(new)), ("only in new", set(new) - set(old))):
        for name in sorted(names):
            print(f"{label}: {name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
