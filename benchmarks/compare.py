#!/usr/bin/env python
"""Diff two pytest-benchmark JSON artifacts and print per-bench speedups.

Usage::

    python benchmarks/compare.py old_bench.json new_bench.json

For every benchmark present in both files, prints old/new mean runtime
and the speedup ratio (old ÷ new — >1 means the new run is faster);
benches present in only one file are listed separately. The table is
meant to be pasted into PR descriptions, next to the CI ``bench.json``
artifacts it consumes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def _load(path: str) -> Dict[str, float]:
    """benchmark fullname → mean seconds."""
    with open(path) as handle:
        data = json.load(handle)
    return {
        bench["fullname"]: bench["stats"]["mean"] for bench in data.get("benchmarks", [])
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline bench.json (e.g. from main)")
    parser.add_argument("new", help="candidate bench.json (e.g. from the PR)")
    args = parser.parse_args(argv)

    old = _load(args.old)
    new = _load(args.new)
    shared = sorted(set(old) & set(new))
    if not shared:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 1

    name_width = max(len(name) for name in shared)
    print(f"{'benchmark'.ljust(name_width)}  {'old':>10}  {'new':>10}  {'speedup':>8}")
    print(f"{'-' * name_width}  {'-' * 10}  {'-' * 10}  {'-' * 8}")
    for name in shared:
        ratio = old[name] / new[name] if new[name] else float("inf")
        print(
            f"{name.ljust(name_width)}  {_fmt_seconds(old[name]):>10}  "
            f"{_fmt_seconds(new[name]):>10}  {ratio:>7.2f}×"
        )
    for label, names in (("only in old", set(old) - set(new)), ("only in new", set(new) - set(old))):
        for name in sorted(names):
            print(f"{label}: {name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
