"""Head-to-head: Fraction brute force vs the index-level space engine.

Both free-game benches perform the identical Theorem 1 workload on the
identical six games at the seed problem size (5 miners × 2 coins): full
improvement-DAG analysis (acyclicity + exact longest path + sinks)
plus equilibrium enumeration. ``fraction`` is the pre-PR path
(Configuration objects, Fraction arithmetic); ``space`` is the
Gray-code integer-code engine. Run both and feed the JSON to
``benchmarks/compare.py`` to print the speedup ratio — the engine is
≥10× faster at this size and the gap widens with the space
(the full analysis of a 12×2 game drops from ~13 s to ~0.03 s).

The ``restricted`` pair runs the same workload on hardware-restricted
games at E11's size (10 miners × 4 coins, coins split between two PoW
algorithms): the mask-aware engine walks only the ~2^10 mask-valid
codes with per-miner digit alphabets, while the Fraction path
brute-forces ``RestrictedGame.all_configurations``.

Cross-checks assert both paths return identical answers, so the bench
doubles as an end-to-end parity test at benchmark scale.
"""

from repro.analysis.paths import analyze_improvement_dag
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.core.restricted import RestrictedGame
from repro.util.rng import spawn_rngs

GAMES = 6
MINERS = 5
COINS = 2

RESTRICTED_GAMES = 4
RESTRICTED_MINERS = 10
RESTRICTED_COINS = 4


def _games():
    rngs = spawn_rngs(0, GAMES)
    return [random_game(MINERS, COINS, seed=rngs[i]) for i in range(GAMES)]


def _restricted_games():
    """E11-sized hardware-restricted games (deterministic splits)."""
    rngs = spawn_rngs(7, RESTRICTED_GAMES)
    restricted = []
    for i in range(RESTRICTED_GAMES):
        rng = rngs[i]
        game = random_game(RESTRICTED_MINERS, RESTRICTED_COINS, seed=rng)
        coin_algorithms = {
            coin.name: "scrypt" if index % 2 else "sha256d"
            for index, coin in enumerate(game.coins)
        }
        miner_hardware = {
            miner.name: "scrypt" if rng.random() < 0.4 else "sha256d"
            for miner in game.miners
        }
        restricted.append(
            RestrictedGame.by_algorithm(game, coin_algorithms, miner_hardware)
        )
    return restricted


def _workload(backend):
    results = []
    for game in _games():
        analysis = analyze_improvement_dag(game, backend=backend)
        equilibria = enumerate_equilibria(game, backend=backend)
        results.append(
            (analysis.acyclic, analysis.longest_path, list(analysis.sinks), equilibria)
        )
    return results


def _restricted_workload(backend):
    results = []
    for restricted in _restricted_games():
        analysis = analyze_improvement_dag(restricted, backend=backend)
        equilibria = restricted.enumerate_equilibria(backend=backend)
        results.append(
            (analysis.acyclic, analysis.longest_path, list(analysis.sinks), equilibria)
        )
    return results


def test_enumeration_fraction(benchmark):
    results = benchmark(_workload, "exact")
    assert all(acyclic for acyclic, _, _, _ in results)


def test_enumeration_space(benchmark):
    results = benchmark(_workload, "space")
    assert all(acyclic for acyclic, _, _, _ in results)
    assert results == _workload("exact"), "space engine must match the Fraction path"


def test_restricted_enumeration_fraction(benchmark):
    results = benchmark(_restricted_workload, "exact")
    assert all(acyclic for acyclic, _, _, _ in results)


def test_restricted_enumeration_space(benchmark):
    results = benchmark(_restricted_workload, "space")
    assert all(acyclic for acyclic, _, _, _ in results)
    assert results == _restricted_workload("exact"), (
        "mask-aware space engine must match the restricted Fraction path"
    )
