"""Head-to-head: Fraction brute force vs the index-level space engine.

Both benches perform the identical Theorem 1 workload on the identical
six games at the seed problem size (5 miners × 2 coins): full
improvement-DAG analysis (acyclicity + exact longest path + sinks)
plus equilibrium enumeration. ``fraction`` is the pre-PR path
(Configuration objects, Fraction arithmetic); ``space`` is the
Gray-code integer-code engine. Run both and feed the JSON to
``benchmarks/compare.py`` to print the speedup ratio — the engine is
≥10× faster at this size and the gap widens with the space
(the full analysis of a 12×2 game drops from ~13 s to ~0.03 s).

A cross-check asserts both paths return identical answers, so the
bench doubles as an end-to-end parity test at benchmark scale.
"""

from repro.analysis.paths import analyze_improvement_dag
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.util.rng import spawn_rngs

GAMES = 6
MINERS = 5
COINS = 2


def _games():
    rngs = spawn_rngs(0, GAMES)
    return [random_game(MINERS, COINS, seed=rngs[i]) for i in range(GAMES)]


def _workload(backend):
    results = []
    for game in _games():
        analysis = analyze_improvement_dag(game, backend=backend)
        equilibria = enumerate_equilibria(game, backend=backend)
        results.append(
            (analysis.acyclic, analysis.longest_path, list(analysis.sinks), equilibria)
        )
    return results


def test_enumeration_fraction(benchmark):
    results = benchmark(_workload, "exact")
    assert all(acyclic for acyclic, _, _, _ in results)


def test_enumeration_space(benchmark):
    results = benchmark(_workload, "space")
    assert all(acyclic for acyclic, _, _, _ in results)
    assert results == _workload("exact"), "space engine must match the Fraction path"
