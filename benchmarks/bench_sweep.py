"""Sweep-fabric benchmarks: cold vs warm cache, shard merge cost.

Part of the CI smoke set. The cold/warm assertion is the fabric's
headline guarantee: re-opening a completed sweep with the same
arguments answers every cell from the content-addressed cache without
re-running any learning — and must therefore be at least an order of
magnitude faster than computing the grid.
"""

from benchmarks.conftest import run_once
from repro.experiments import e02_convergence
from repro.sweep import merge_sweep, run_sweep


def _grid():
    # Big enough that the cold run dwarfs cache-lookup overhead, small
    # enough for the smoke set (18 cells x 10 runs).
    return e02_convergence.sweep_grid(
        miner_counts=(10, 25, 50),
        coin_counts=(2, 4),
        runs_per_cell=10,
        seed=11,
    )


def test_sweep_warm_cache_10x_faster_than_cold(benchmark, tmp_path):
    out = str(tmp_path / "sweep")
    cold = run_sweep(_grid(), out=out, seed=11)
    assert cold.cache_hits == 0
    assert cold.cache_misses == len(cold.cells)

    warm = run_once(benchmark, run_sweep, grid=_grid(), out=out, seed=11)
    assert warm.cache_misses == 0
    assert warm.cache_hits == len(cold.cells)
    assert warm.report == cold.report
    assert cold.wall_seconds >= 10 * warm.wall_seconds, (
        f"warm cache not >=10x faster: cold {cold.wall_seconds:.4f}s vs "
        f"warm {warm.wall_seconds:.4f}s"
    )


def test_sweep_merge_matches_in_process_report(benchmark, tmp_path):
    out = str(tmp_path / "sweep")
    ran = run_sweep(_grid(), out=out, seed=11)
    merged = run_once(benchmark, merge_sweep, out=out)
    assert merged == ran.report
