"""E8 — manipulation economics: bounded cost, indefinite gain.

Paper artifact: Section 5's motivation ("a manipulator ... can do it
with a bounded cost"). Expected: every executed manipulation has a
finite whale-fee cost and a finite break-even horizon, after which the
manipulator's gain is pure profit.
"""

from benchmarks.conftest import run_once
from repro.experiments import e08_design_cost


def test_e08_manipulation_roi(benchmark, show):
    result = run_once(
        benchmark, e08_design_cost.run, games=6, miners=6, coins=2, seed=0
    )
    show(result.table)
    assert result.metrics["manipulations_executed"] >= 3
    assert result.metrics["all_costs_finite"]
    assert result.metrics["median_break_even_rounds"] > 0
