"""E2 — Theorem 1: better-response learning always converges.

Paper artifact: Theorem 1 (Section 3). Expected: 100% convergence for
every game size, power distribution and policy; steps grow mildly with
the number of miners.
"""

from benchmarks.conftest import run_once
from repro.experiments import e02_convergence


def test_e02_convergence_sweep(benchmark, show):
    result = run_once(
        benchmark,
        e02_convergence.run,
        miner_counts=(5, 10, 25, 50),
        coin_counts=(2, 5),
        runs_per_cell=5,
        seed=0,
    )
    show(result.table)
    assert result.metrics["convergence_rate"] == 1.0
    assert result.metrics["total_runs"] >= 100


def test_e02_convergence_pareto_powers(benchmark, show):
    result = run_once(
        benchmark,
        e02_convergence.run,
        miner_counts=(10, 25),
        coin_counts=(3,),
        runs_per_cell=5,
        power_distribution="pareto",
        seed=1,
    )
    show(result.table)
    assert result.metrics["convergence_rate"] == 1.0
