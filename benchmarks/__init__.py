"""Benchmark harness: one module per reproduced paper table/figure."""
