"""Benchmarks for the tensor population kernel behind ``run_many``.

The headline claim of the batch API redesign: an E2-style population
(a 100×10 game, many trajectories from random starts) runs an order of
magnitude faster through ``executor="vectorized"`` than through a
worker pool, because the tensor kernel advances *every* live
trajectory with one numpy step instead of re-entering the scalar
stepper per run. Measured on one core at population 1000:
vectorized ~1.3 s vs process ~16 s (~12×) vs serial ~13 s.

Three population sizes chart the crossover: at 10 runs the pool/array
overheads dominate, at 100 vectorization already wins, at 1000 it is
~10× and the gap keeps widening with population size. Every variant
asserts the same converged-run count, so the speedup is measured on
bit-identical work (``tests/test_tensor_parity.py`` holds the full
parity proof).
"""

import pytest

from repro.core.factories import random_game
from repro.run import RunSpec, run_many

#: The E2-style workload: the suite's largest standard game shape.
GAME = random_game(100, 10, seed=0)


def _population(executor: str, runs: int):
    cells = [RunSpec(game=GAME, runs=runs, seed=7)]
    return run_many(cells, executor=executor)[0]


@pytest.mark.parametrize("runs", [10, 100, 1000])
def test_vectorized_population(benchmark, runs):
    summaries = benchmark.pedantic(
        _population, args=("vectorized", runs), iterations=1, rounds=1
    )
    assert len(summaries) == runs
    assert all(summary.converged for summary in summaries)


@pytest.mark.parametrize("runs", [10, 100, 1000])
def test_serial_population(benchmark, runs):
    summaries = benchmark.pedantic(
        _population, args=("serial", runs), iterations=1, rounds=1
    )
    assert len(summaries) == runs
    assert all(summary.converged for summary in summaries)


def test_process_population_1000(benchmark):
    summaries = benchmark.pedantic(
        _population, args=("process", 1000), iterations=1, rounds=1
    )
    assert len(summaries) == 1000
    assert all(summary.converged for summary in summaries)


def test_all_executors_identical_at_100(benchmark):
    """The speedup is on identical work: every executor, same summaries."""

    def sweep():
        return {
            executor: _population(executor, 100)
            for executor in ("serial", "vectorized", "process")
        }

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    assert results["serial"] == results["vectorized"] == results["process"]
