"""Benchmarks for the stochastic realization layer (E15/E16 + sampler).

Part of the CI smoke set: the lottery-sampler micro-benchmark guards
the hot path every noisy decision runs through, and the two experiment
benches guard the end-to-end cost of the new workload.
"""

from benchmarks.conftest import run_once
from repro.core.factories import random_configuration, random_game
from repro.experiments import e15_noisy_convergence, e16_risk
from repro.stochastic.lottery import sample_block_wins


def test_lottery_sampler_throughput(benchmark):
    """200k sampled block races (20 rounds × 10k-round lotteries)."""
    game = random_game(10, 3, seed=0)
    config = random_configuration(game, seed=1)

    def sweep():
        total = 0
        for index in range(20):
            sample = sample_block_wins(game, config, rounds=10_000, seed=index)
            total += sum(sample.wins)
        return total

    total = benchmark.pedantic(sweep, iterations=1, rounds=3)
    # Every round races every occupied coin exactly once.
    occupied = len(config.occupied_coins())
    assert total == 20 * 10_000 * occupied


def test_e15_noisy_convergence(benchmark, show):
    result = run_once(
        benchmark,
        e15_noisy_convergence.run,
        games=1,
        miners=5,
        coins=2,
        budgets=(1, 16, 128),
        replications=12,
        max_activations=1_500,
        seed=0,
    )
    show(result.table)
    assert result.metrics["monotone_fraction"] == 1.0
    assert (
        result.metrics["misconvergence_at_max_budget"]
        <= result.metrics["misconvergence_at_min_budget"]
    )


def test_e16_risk(benchmark, show):
    result = run_once(
        benchmark,
        e16_risk.run,
        miners=5,
        coins=2,
        horizon_rounds=400,
        replications=12,
        reconcile_horizon_h=120.0,
        seed=0,
    )
    show(result.table)
    assert result.metrics["max_relative_bias_at_equilibrium"] < 0.2
    assert result.metrics["chain_reconciliation_deviation"] < 0.1
    assert result.metrics["lottery_reconciliation_deviation"] < 0.1
