"""E4 — Theorem 1 mechanics: ordinal potential strictly increases.

Paper artifact: Theorem 1 + Observations 1–2 (Section 3). Expected: on
every audited better-response step, rank(list(s)) strictly increases
and the observations hold — 100%, no exceptions.
"""

from benchmarks.conftest import run_once
from repro.experiments import e04_potential_monotonicity


def test_e04_potential_audit(benchmark, show):
    result = run_once(
        benchmark,
        e04_potential_monotonicity.run,
        games=8,
        miners=8,
        coins=4,
        starts_per_game=3,
        seed=0,
    )
    show(result.table)
    assert result.metrics["strict_increase_fraction"] == 1.0
    assert result.metrics["observation_violations"] == 0
    assert result.metrics["steps_audited"] > 100
