"""E9 — discussion: convergence speed by learning process.

Paper artifact: Discussion ("one may wonder about its speed of
convergence under specific markets"). Expected: best-response variants
converge fastest; adversarial minimal-gain × smallest-first is slowest
but still finite; MWU is reported for contrast.
"""

from benchmarks.conftest import run_once
from repro.experiments import e09_learning_speed


def test_e09_learning_speed(benchmark, show):
    result = run_once(
        benchmark,
        e09_learning_speed.run,
        miners=20,
        coins=4,
        runs=8,
        mwu_rounds=200,
        seed=0,
    )
    show(result.table)
    assert result.metrics["fastest_mean_steps"] <= result.metrics["slowest_mean_steps"]
    assert "best-response" in result.metrics["fastest_process"] or result.metrics[
        "fastest_mean_steps"
    ] < 100
