"""E3 — Proposition 1: the game admits no exact potential.

Paper artifact: Proposition 1 (Section 3). Expected: the paper's 2×2
cycle has defect exactly 2/3, and random games also yield witnesses.
"""

from benchmarks.conftest import run_once
from repro.experiments import e03_no_exact_potential


def test_e03_no_exact_potential(benchmark, show):
    result = run_once(benchmark, e03_no_exact_potential.run, random_games=15, seed=0)
    show(result.table)
    assert result.metrics["paper_defect_matches"], "cycle defect must be exactly 2/3"
    assert result.metrics["random_witness_fraction"] > 0.5
