"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = _run(["list"])
        assert code == 0
        for i in range(1, 17):
            assert f"E{i} " in text or f"E{i}\n" in text or f"E{i}  " in text


class TestRun:
    def test_run_fast_e03(self):
        code, text = _run(["run", "E3", "--fast", "--seed", "1"])
        assert code == 0
        assert "E3" in text
        assert "metrics" in text

    def test_run_fast_e05(self):
        code, text = _run(["run", "E5", "--fast"])
        assert code == 0
        assert "Observation 3" in text or "E5" in text

    def test_run_fast_e15_noisy(self):
        code, text = _run(["run", "E15", "--fast", "--seed", "1"])
        assert code == 0
        assert "misconvergence" in text
        assert "metrics" in text

    def test_run_fast_e16_risk(self):
        code, text = _run(["run", "E16", "--fast", "--seed", "1"])
        assert code == 0
        assert "equilibrium" in text
        assert "metrics" in text

    def test_unaccepted_knob_noted_not_crashed(self):
        code, text = _run(["run", "E5", "--fast", "--backend", "exact"])
        assert code == 0
        # E5 takes no backend parameter: the CLI says so instead of crashing.
        assert "does not take --backend" in text

    def test_backend_and_workers_on_e13(self):
        code, text = _run(
            ["run", "E13", "--fast", "--seed", "1", "--backend", "exact"]
        )
        assert code == 0
        assert "E13" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            _run(["run", "E99"])


class TestDemo:
    def test_demo_reports_equilibrium(self):
        code, text = _run(["demo", "--miners", "5", "--coins", "2", "--seed", "3"])
        assert code == 0
        assert "converged" in text
        assert "payoffs" in text
        assert "basins" in text

    def test_demo_backend_exact_matches_fast(self):
        _, fast_text = _run(["demo", "--miners", "5", "--coins", "2", "--seed", "3"])
        code, exact_text = _run(
            ["demo", "--miners", "5", "--coins", "2", "--seed", "3",
             "--backend", "exact"]
        )
        assert code == 0
        assert exact_text == fast_text  # identical trajectories, both backends

    def test_demo_noisy_reports_verdict(self):
        code, text = _run(
            ["demo", "--miners", "4", "--coins", "2", "--seed", "3", "--noisy",
             "--budget", "128"]
        )
        assert code == 0
        assert "noisy learner (budget 128)" in text


class TestMigrate:
    def test_migrate_prints_sparklines(self):
        code, text = _run(["migrate", "--seed", "2017"])
        assert code == 0
        assert "BCH hashrate share" in text
        assert "switches" in text


def test_no_command_exits():
    with pytest.raises(SystemExit):
        _run([])
