"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = _run(["list"])
        assert code == 0
        for i in range(1, 17):
            assert f"E{i} " in text or f"E{i}\n" in text or f"E{i}  " in text


class TestRun:
    def test_run_fast_e03(self):
        code, text = _run(["run", "E3", "--fast", "--seed", "1"])
        assert code == 0
        assert "E3" in text
        assert "metrics" in text

    def test_run_fast_e05(self):
        code, text = _run(["run", "E5", "--fast"])
        assert code == 0
        assert "Observation 3" in text or "E5" in text

    def test_run_fast_e15_noisy(self):
        code, text = _run(["run", "E15", "--fast", "--seed", "1"])
        assert code == 0
        assert "misconvergence" in text
        assert "metrics" in text

    def test_run_fast_e16_risk(self):
        code, text = _run(["run", "E16", "--fast", "--seed", "1"])
        assert code == 0
        assert "equilibrium" in text
        assert "metrics" in text

    def test_unaccepted_knob_noted_not_crashed(self):
        code, text = _run(["run", "E5", "--fast", "--backend", "exact"])
        assert code == 0
        # E5 takes no backend parameter: the CLI says so instead of crashing.
        assert "does not take --backend" in text

    def test_backend_and_workers_on_e13(self):
        code, text = _run(
            ["run", "E13", "--fast", "--seed", "1", "--backend", "exact"]
        )
        assert code == 0
        assert "E13" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            _run(["run", "E99"])


class TestDemo:
    def test_demo_reports_equilibrium(self):
        code, text = _run(["demo", "--miners", "5", "--coins", "2", "--seed", "3"])
        assert code == 0
        assert "converged" in text
        assert "payoffs" in text
        assert "basins" in text

    def test_demo_backend_exact_matches_fast(self):
        _, fast_text = _run(["demo", "--miners", "5", "--coins", "2", "--seed", "3"])
        code, exact_text = _run(
            ["demo", "--miners", "5", "--coins", "2", "--seed", "3",
             "--backend", "exact"]
        )
        assert code == 0
        assert exact_text == fast_text  # identical trajectories, both backends

    def test_demo_noisy_reports_verdict(self):
        code, text = _run(
            ["demo", "--miners", "4", "--coins", "2", "--seed", "3", "--noisy",
             "--budget", "128"]
        )
        assert code == 0
        assert "noisy learner (budget 128)" in text


class TestMigrate:
    def test_migrate_prints_sparklines(self):
        code, text = _run(["migrate", "--seed", "2017"])
        assert code == 0
        assert "BCH hashrate share" in text
        assert "switches" in text


def test_no_command_exits():
    with pytest.raises(SystemExit):
        _run([])


class TestSweep:
    def test_ephemeral_sweep(self):
        code, text = _run(["sweep", "E9", "--fast", "--seed", "5"])
        assert code == 0
        assert "20 cell(s)" in text
        assert "0 cached, 20 computed" in text

    def test_cold_then_warm_with_out(self, tmp_path):
        out = str(tmp_path / "sweep")
        code, text = _run(["sweep", "E9", "--fast", "--seed", "5", "--out", out])
        assert code == 0
        assert "0 cached, 20 computed" in text
        assert "report:" in text
        code, text = _run(["sweep", "E9", "--fast", "--seed", "5", "--out", out])
        assert code == 0
        assert "20 cached, 0 computed" in text

    def test_sharded_then_merge(self, tmp_path):
        out = str(tmp_path / "sweep")
        for k in (1, 2):
            code, text = _run([
                "sweep", "E15", "--fast", "--seed", "7",
                "--out", out, "--shard", f"{k}/2",
            ])
            assert code == 0
        code, text = _run(["sweep", "E15", "--fast", "--seed", "7", "--out", out, "--merge"])
        assert code == 0
        assert "merged 3 cell(s)" in text

    def test_merge_requires_out(self):
        code, text = _run(["sweep", "E9", "--merge"])
        assert code == 2
        assert "--merge requires --out" in text

    def test_experiment_without_grid_rejected(self):
        code, text = _run(["sweep", "E1"])
        assert code == 2
        assert "no sweep grid" in text
        assert "E2" in text

    def test_root_seed_mismatch_is_an_error(self, tmp_path):
        out = str(tmp_path / "sweep")
        assert _run(["sweep", "E9", "--fast", "--seed", "5", "--out", out])[0] == 0
        code, text = _run(["sweep", "E9", "--fast", "--seed", "6", "--out", out])
        assert code == 1
        assert "root seed" in text

    def test_metrics_prints_cache_counters(self, tmp_path):
        out = str(tmp_path / "sweep")
        assert _run(["sweep", "E9", "--fast", "--seed", "5", "--out", out])[0] == 0
        code, text = _run([
            "sweep", "E9", "--fast", "--seed", "5", "--out", out, "--metrics"
        ])
        assert code == 0
        assert "sweep.cache.hits" in text


class TestTraceForce:
    def test_trace_refuses_clobber_without_force(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        assert _run(["run", "E3", "--fast", "--trace", trace])[0] == 0
        code, text = _run(["run", "E3", "--fast", "--trace", trace])
        assert code == 2
        assert "already exists" in text
        code, _ = _run(["run", "E3", "--fast", "--trace", trace, "--force"])
        assert code == 0
