"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = _run(["list"])
        assert code == 0
        for i in range(1, 15):
            assert f"E{i} " in text or f"E{i}\n" in text or f"E{i}  " in text


class TestRun:
    def test_run_fast_e03(self):
        code, text = _run(["run", "E3", "--fast", "--seed", "1"])
        assert code == 0
        assert "E3" in text
        assert "metrics" in text

    def test_run_fast_e05(self):
        code, text = _run(["run", "E5", "--fast"])
        assert code == 0
        assert "Observation 3" in text or "E5" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            _run(["run", "E99"])


class TestDemo:
    def test_demo_reports_equilibrium(self):
        code, text = _run(["demo", "--miners", "5", "--coins", "2", "--seed", "3"])
        assert code == 0
        assert "converged" in text
        assert "payoffs" in text
        assert "basins" in text


class TestMigrate:
    def test_migrate_prints_sparklines(self):
        code, text = _run(["migrate", "--seed", "2017"])
        assert code == 0
        assert "BCH hashrate share" in text
        assert "switches" in text


def test_no_command_exits():
    with pytest.raises(SystemExit):
        _run([])
