"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; a broken example is a
broken library. Each runs in-process via runpy with a trimmed workload
where the script supports it (they all finish in seconds as shipped).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    path
    for path in (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_all_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "btc_bch_migration.py",
        "reward_design_attack.py",
        "learning_dynamics_comparison.py",
        "pow_substrate.py",
        "asymmetric_mining.py",
        "manipulation_planner.py",
        "population_dynamics.py",
    } <= names
