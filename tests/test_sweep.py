"""The sweep fabric: grids, fingerprints, shards, cache, crash-resume.

Four families of guarantees:

* **Grids** — deterministic expansion, stable labels, validation.
* **Fingerprints** — pure content (seed/label excluded), append-stable
  derived seeding, coordination-free shard partition.
* **Cache** — exact round trips for every result kind, hit/miss/write
  counters, overlapping grids sharing entries.
* **Crash safety** — a shard SIGKILLed mid-sweep resumes from its cache
  commits and the merged report is byte-identical to an uninterrupted
  run (the acceptance criterion of the fabric).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.core.factories import random_game
from repro.experiments import EXPERIMENTS, e02_convergence, e09_learning_speed
from repro.kernel.batch import CellStats
from repro.learning.policies import BestResponsePolicy, MinimalGainPolicy
from repro.obs import MetricsRecorder, observe
from repro.run import RunSpec, run_many
from repro.stochastic.noisy_engine import NoisyLearningEngine
from repro.sweep import (
    REPORT_FORMAT,
    ResultCache,
    SweepError,
    SweepGrid,
    cell_fingerprint,
    labeled,
    merge_sweep,
    parse_shard,
    result_from_dict,
    result_to_dict,
    run_sweep,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _small_grid(seed=None, runs=3):
    game_a = random_game(5, 2, seed=1)
    game_b = random_game(6, 3, seed=2)
    return SweepGrid(
        {
            "game": [labeled("a", game_a), labeled("b", game_b)],
            "policy": [BestResponsePolicy(), MinimalGainPolicy()],
        },
        base={"runs": runs, "stream": True, "seed": seed},
    )


class TestGrid:
    def test_expansion_is_deterministic(self):
        first = _small_grid().cells()
        second = _small_grid().cells()
        assert [c.cell_id for c in first] == [c.cell_id for c in second]
        assert [c.fingerprint for c in first] == [c.fingerprint for c in second]

    def test_first_axis_is_outermost(self):
        ids = [c.cell_id for c in _small_grid().cells()]
        assert ids == [
            "game=a/policy=best-response",
            "game=a/policy=minimal-gain",
            "game=b/policy=best-response",
            "game=b/policy=minimal-gain",
        ]

    def test_non_runspec_field_rejected(self):
        with pytest.raises(ValueError, match="not a RunSpec field"):
            SweepGrid({"wheels": [1, 2]})

    def test_axes_base_overlap_rejected(self):
        game = random_game(4, 2, seed=0)
        with pytest.raises(ValueError, match="both set"):
            SweepGrid({"game": [game]}, base={"game": game})

    def test_duplicate_cell_ids_rejected(self):
        game = random_game(4, 2, seed=0)
        with pytest.raises(ValueError, match="duplicate cell id"):
            SweepGrid(
                {"game": [labeled("same", game), labeled("same", game)]},
                base={"runs": 2},
            ).cells()

    def test_exclude_filters_and_empty_grid_rejected(self):
        grid = _small_grid()
        filtered = SweepGrid(
            grid.axes, base=grid.base,
            exclude=lambda v: v["policy"].name == "minimal-gain",
        )
        assert len(filtered) == 2
        with pytest.raises(ValueError, match="zero cells"):
            SweepGrid(grid.axes, base=grid.base, exclude=lambda v: True).cells()

    def test_override_sets_runspec_fields_only(self):
        game = random_game(4, 2, seed=0)
        grid = SweepGrid(
            {"game": [game]}, base={"runs": 2}, override=lambda v: {"seed": 7}
        )
        assert grid.cells()[0].spec.seed == 7
        bad = SweepGrid(
            {"game": [game]}, base={"runs": 2}, override=lambda v: {"bogus": 1}
        )
        with pytest.raises(ValueError, match="non-RunSpec field"):
            bad.cells()


class TestFingerprints:
    def test_seed_and_label_excluded(self):
        game = random_game(5, 2, seed=1)
        base = RunSpec(game=game, runs=4, seed=1, label="x")
        other = RunSpec(game=game, runs=4, seed=2, label="y")
        assert cell_fingerprint(base) == cell_fingerprint(other)

    def test_content_changes_the_fingerprint(self):
        game = random_game(5, 2, seed=1)
        base = RunSpec(game=game, runs=4)
        assert cell_fingerprint(base) != cell_fingerprint(RunSpec(game=game, runs=5))
        assert cell_fingerprint(base) != cell_fingerprint(
            RunSpec(game=game, runs=4, policy=BestResponsePolicy())
        )
        assert cell_fingerprint(base) != cell_fingerprint(
            RunSpec(game=random_game(5, 2, seed=2), runs=4)
        )

    def test_derived_seeds_are_append_stable(self):
        """A cell's randomness depends on root + content, not position."""
        import numpy as np

        root = np.random.SeedSequence(42)
        small = _small_grid().cells()
        grid = _small_grid()
        bigger = SweepGrid(
            {
                "game": grid.axes["game"] + [labeled("c", random_game(7, 2, seed=9))],
                "policy": grid.axes["policy"],
            },
            base=grid.base,
        ).cells()
        by_id = {c.cell_id: c for c in bigger}
        for cell in small:
            mine = cell.resolve_seed(root)
            theirs = by_id[cell.cell_id].resolve_seed(root)
            assert mine.entropy == theirs.entropy

    def test_explicit_seed_passes_through(self):
        import numpy as np

        cell = _small_grid(seed=123).cells()[0]
        assert cell.resolve_seed(np.random.SeedSequence(42)) == 123

    def test_cache_key_binds_seed_and_version(self):
        import numpy as np

        cell = _small_grid().cells()[0]
        root_a, root_b = np.random.SeedSequence(1), np.random.SeedSequence(2)
        assert cell.cache_key(root_a) != cell.cache_key(root_b)
        assert cell.cache_key(root_a) != cell.cache_key(root_a, version="0.0.0")


class TestShards:
    def test_parse_shard(self):
        assert parse_shard(None) is None
        assert parse_shard("2/8") == (2, 8)
        assert parse_shard((1, 3)) == (1, 3)
        for bad in ("0/3", "4/3", "1/0", "x/y"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_partition_covers_cells_exactly_once(self, n_shards):
        cells = e02_convergence.sweep_grid(
            miner_counts=(5, 8), coin_counts=(2, 3), runs_per_cell=2, seed=0
        ).cells()
        assigned = [cell.shard(n_shards) for cell in cells]
        assert all(0 <= index < n_shards for index in assigned)
        # Partition is a pure function of content: stable across calls.
        assert assigned == [cell.shard(n_shards) for cell in cells]

    def test_shard_requires_out(self):
        with pytest.raises(SweepError, match="requires out"):
            run_sweep(_small_grid(seed=3), shard="1/2")

    def test_sharded_runs_meet_in_cache_and_merge(self, tmp_path):
        out = str(tmp_path / "sweep")
        grid = lambda: _small_grid(seed=3)  # noqa: E731
        parts = [run_sweep(grid(), out=out, seed=0, shard=f"{k}/3") for k in (1, 2, 3)]
        assert sum(len(part.cells) for part in parts) == 4
        merged = merge_sweep(out)
        solo = run_sweep(grid(), seed=0)
        assert merged["benchmarks"] == solo.report["benchmarks"]


class TestCache:
    def test_round_trips_every_result_kind(self):
        from repro.sweep.cache import cell_result_from_records, cell_result_to_records

        game = random_game(5, 2, seed=4)
        specs = [
            RunSpec(game=game, runs=3, seed=5),
            RunSpec(game=game, runs=3, seed=5, stream=True),
            RunSpec(game=game, runs=3, kind="noisy", seed=5,
                    engine=NoisyLearningEngine(budget=4, max_activations=200)),
        ]
        for spec, result in zip(specs, run_many(specs)):
            stream, records = cell_result_to_records(result)
            rebuilt = cell_result_from_records(
                stream, json.loads(json.dumps(records))
            )
            assert rebuilt == result
        stats = run_many([specs[1]])[0]
        assert result_from_dict(result_to_dict(stats)) == stats

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        stats = CellStats(runs=1, policy_name="p", scheduler_name="s",
                          steps=(3,), converged=1, finals=())
        key = "ab" + "0" * 62
        cache.store(key, stats, cell_id="cell")
        assert cache.load(key) == stats
        with open(cache.path_for(key), "w") as handle:
            handle.write("{not json")
        assert cache.load(key) is None

    def test_counters_fire(self, tmp_path):
        out = str(tmp_path / "sweep")
        recorder = MetricsRecorder()
        with observe(recorder):
            run_sweep(_small_grid(seed=3), out=out, seed=0)
            run_sweep(_small_grid(seed=3), out=out, seed=0)
        assert recorder.counters["sweep.cache.misses"] == 4
        assert recorder.counters["sweep.cache.writes"] == 4
        assert recorder.counters["sweep.cache.hits"] == 4
        assert recorder.counters["sweep.cells"] == 8

    def test_overlapping_grid_reuses_entries(self, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(_small_grid(seed=3), out=out, seed=0)
        grid = _small_grid(seed=3)
        wider = SweepGrid(
            {
                "game": grid.axes["game"] + [labeled("c", random_game(7, 2, seed=9))],
                "policy": grid.axes["policy"],
            },
            base=grid.base,
        )
        second = run_sweep(wider, out=out, seed=0)
        assert second.cache_hits == 4
        assert second.cache_misses == 2


class TestRunSweep:
    def test_ephemeral_equals_cached(self, tmp_path):
        cached = run_sweep(_small_grid(seed=3), out=str(tmp_path / "s"), seed=0)
        ephemeral = run_sweep(_small_grid(seed=3), seed=0)
        assert cached.in_order() == ephemeral.in_order()
        assert cached.report == ephemeral.report

    @pytest.mark.parametrize("executor", ["serial", "thread", "vectorized"])
    def test_executors_agree(self, executor):
        reference = run_sweep(_small_grid(seed=3), executor="auto")
        assert run_sweep(_small_grid(seed=3), executor=executor).report == reference.report

    def test_wave_size_does_not_change_results(self, tmp_path):
        one = run_sweep(_small_grid(seed=3), out=str(tmp_path / "a"), seed=0, wave=1)
        all_at_once = run_sweep(_small_grid(seed=3), out=str(tmp_path / "b"), seed=0)
        assert one.report == all_at_once.report

    def test_root_seed_mismatch_refused(self, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(_small_grid(), out=out, seed=0)
        with pytest.raises(SweepError, match="root seed"):
            run_sweep(_small_grid(), out=out, seed=1)

    def test_no_resume_refuses_existing_shard_unless_forced(self, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(_small_grid(seed=3), out=out, seed=0)
        with pytest.raises(SweepError, match="resume=False"):
            run_sweep(_small_grid(seed=3), out=out, seed=0, resume=False)
        forced = run_sweep(_small_grid(seed=3), out=out, seed=0, resume=False, force=True)
        assert forced.cache_hits == 0  # recomputed from scratch, deterministically
        assert forced.cache_misses == 4

    def test_merge_names_missing_cells_and_shards(self, tmp_path):
        out = str(tmp_path / "sweep")
        result = run_sweep(_small_grid(seed=3), out=out, seed=0)
        victim = result.cells[0]
        os.unlink(ResultCache(os.path.join(out, "cache")).path_for(
            result.keys[victim.cell_id]
        ))
        with pytest.raises(SweepError, match=victim.cell_id):
            merge_sweep(out)

    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        out = str(tmp_path / "sweep")
        first = run_sweep(_small_grid(seed=3), out=out, seed=0)
        victim = first.cells[2]
        os.unlink(ResultCache(os.path.join(out, "cache")).path_for(
            first.keys[victim.cell_id]
        ))
        second = run_sweep(_small_grid(seed=3), out=out, seed=0)
        assert second.cache_hits == 3
        assert second.cache_misses == 1
        assert second.report == first.report


class TestReport:
    def test_report_shape_and_determinism(self, tmp_path):
        result = run_sweep(_small_grid(seed=3), out=str(tmp_path / "s"), seed=0)
        report = result.report
        assert report["format"] == REPORT_FORMAT
        assert report["units"] == "steps"
        assert {"repro_version", "python", "numpy"} <= set(report["repro_stamp"])
        assert len(report["benchmarks"]) == 4
        for bench in report["benchmarks"]:
            assert bench["fullname"].startswith("sweep::")
            assert set(bench["stats"]) >= {"mean", "min", "max", "stddev", "rounds"}
        with open(result.report_path) as handle:
            assert json.load(handle) == report

    def test_no_wall_clock_in_report(self, tmp_path):
        """Reports must be bit-identical across reruns: no timestamps."""
        result = run_sweep(_small_grid(seed=3), out=str(tmp_path / "s"), seed=0)
        blob = json.dumps(result.report)
        for banned in ("wall", "time", "host", "date"):
            assert banned not in blob

    def test_compare_py_accepts_sweep_reports(self, tmp_path, capsys):
        sys.path.insert(0, os.path.join(REPO, "benchmarks"))
        try:
            import compare
        finally:
            sys.path.pop(0)
        result = run_sweep(_small_grid(seed=3), out=str(tmp_path / "s"), seed=0)
        assert compare.main([result.report_path, result.report_path]) == 0
        out = capsys.readouterr().out
        assert "sweep::game=a/policy=best-response" in out
        # A timing artifact cannot be diffed against a steps report.
        bench_style = dict(result.report)
        bench_style.pop("units")
        fake = tmp_path / "bench.json"
        fake.write_text(json.dumps(bench_style))
        assert compare.main([str(fake), result.report_path]) == 2


class TestExperimentGrids:
    def test_registry_exposes_sweepable_experiments(self):
        sweepable = {n for n, s in EXPERIMENTS.items() if s.sweep_grid is not None}
        assert {"E2", "E9", "E15"} <= sweepable

    def test_e9_grid_matches_run_many_numbers(self):
        grid = e09_learning_speed.sweep_grid(miners=6, coins=2, runs=3, seed=5)
        swept = run_sweep(grid).in_order()
        for cell, stats in zip(grid.cells(), swept):
            direct = run_many([cell.spec])[0]
            assert stats == direct


KILL_SCRIPT = textwrap.dedent(
    """
    import os, signal
    from repro.experiments.e02_convergence import sweep_grid
    from repro.sweep import run_sweep
    from repro.sweep.cache import ResultCache

    original = ResultCache.store
    committed = dict(n=0)

    def killing_store(self, key, result, *, cell_id):
        original(self, key, result, cell_id=cell_id)
        committed["n"] += 1
        if committed["n"] == 2:
            os.kill(os.getpid(), signal.SIGKILL)

    ResultCache.store = killing_store
    grid = sweep_grid(miner_counts=(5, 8), coin_counts=(2, 3), runs_per_cell=3, seed=21)
    run_sweep(grid, out={out!r}, seed=21, wave=1)
    """
)


class TestCrashResume:
    def test_sigkill_mid_shard_then_resume_is_bit_identical(self, tmp_path):
        """The fabric's acceptance criterion, end to end.

        A subprocess commits two cells to cache and SIGKILLs itself
        mid-sweep. The resumed sweep re-runs only the remaining cells,
        and the merged report is byte-for-byte identical to a sweep
        that was never interrupted.
        """
        out = str(tmp_path / "killed")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.run(
            [sys.executable, "-c", KILL_SCRIPT.format(out=out)],
            env=env, cwd=REPO, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        def grid():
            return e02_convergence.sweep_grid(
                miner_counts=(5, 8), coin_counts=(2, 3), runs_per_cell=3, seed=21
            )

        total = len(grid().cells())
        resumed = run_sweep(grid(), out=out, seed=21, wave=1)
        assert resumed.cache_hits == 2
        assert resumed.cache_misses == total - 2

        pristine = str(tmp_path / "pristine")
        uninterrupted = run_sweep(grid(), out=pristine, seed=21, wave=1)
        with open(resumed.report_path, "rb") as handle:
            resumed_bytes = handle.read()
        with open(uninterrupted.report_path, "rb") as handle:
            pristine_bytes = handle.read()
        assert resumed_bytes == pristine_bytes

        # The shard manifest is an append-only receipt: it shows both
        # the killed attempt and the resume.
        manifest = os.path.join(out, "shards", "shard-1-of-1.jsonl")
        events = [json.loads(line) for line in open(manifest)]
        assert sum(1 for e in events if e["event"] == "shard.open") == 2
        assert sum(1 for e in events if e["event"] == "shard.done") == 1
        cached_flags = [e["cached"] for e in events if e["event"] == "cell.done"]
        assert cached_flags.count(True) == 2
