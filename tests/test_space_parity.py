"""Parity: the index-level enumeration engine vs the Fraction brute force.

On ~100 random small games (plus symmetric hand-built ones), every
answer the :mod:`repro.kernel.space` engine gives — equilibria, sink
sets, acyclicity verdicts, longest-path lengths, 4-cycle witnesses,
reachable equilibria — must be *identical* (content and order) to the
seed's Fraction-arithmetic brute force over Configuration objects,
including after orbit expansion under equal-power symmetry reduction.
"""

import pytest

from repro.analysis.paths import (
    analyze_improvement_dag,
    improvement_graph,
    is_acyclic,
    longest_improvement_path,
    reachable_equilibria,
    sink_configurations,
)
from repro.core.equilibrium import enumerate_equilibria, iter_equilibria
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.core.potential import find_nonzero_four_cycle
from repro.exceptions import InvalidModelError
from repro.kernel.space import ConfigSpace

# 100 random games: ids 0-59 are 4-miner, 60-99 are 5-miner; coins
# alternate between 2 and 3 so both radices are exercised.
RANDOM_CASES = [
    (4 if case < 60 else 5, 2 if case % 2 == 0 else 3, case)
    for case in range(100)
]

# Equal-power games where symmetry reduction actually kicks in.
SYMMETRIC_GAMES = [
    ([3, 3, 3, 3], [7, 4]),
    ([2, 2, 2, 1, 1], [5, 3, 2]),
    ([1, 1, 1, 1, 1], [9, 2]),
    ([5, 5, 2, 2, 2, 1], [4, 8]),
    ([4, 4, 4, 4], [1, 1, 1]),
]


def _game(miners, coins, seed):
    return random_game(miners, coins, seed=seed)


class TestCodes:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[:10])
    def test_code_order_is_product_order(self, miners, coins, seed):
        game = _game(miners, coins, seed)
        space = ConfigSpace(game)
        ordered = [space.config_of(code) for code in range(space.size)]
        assert ordered == list(game.all_configurations())

    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[:10])
    def test_gray_walk_covers_space_one_move_at_a_time(self, miners, coins, seed):
        game = _game(miners, coins, seed)
        space = ConfigSpace(game)
        codes = []
        previous = None
        for code, assign, mass in space.iter_gray():
            codes.append(code)
            assert mass == space.mass_of(assign)
            current = list(assign)
            if previous is not None:
                changed = sum(1 for a, b in zip(previous, current) if a != b)
                assert changed == 1
            previous = current
        assert sorted(codes) == list(range(space.size))


class TestEquilibriumParity:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES)
    def test_enumerate_matches_fraction_scan(self, miners, coins, seed):
        game = _game(miners, coins, seed)
        assert enumerate_equilibria(game, backend="space") == enumerate_equilibria(
            game, backend="exact"
        )

    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[::10])
    def test_iter_matches_fraction_scan(self, miners, coins, seed):
        game = _game(miners, coins, seed)
        assert list(iter_equilibria(game, backend="space")) == list(
            iter_equilibria(game, backend="exact")
        )

    @pytest.mark.parametrize("powers,rewards", SYMMETRIC_GAMES)
    def test_symmetric_orbit_expansion_matches(self, powers, rewards):
        game = Game.create(powers, rewards)
        space = ConfigSpace(game)
        assert space.symmetry, "these games must trigger symmetry reduction"
        assert enumerate_equilibria(game, backend="space") == enumerate_equilibria(
            game, backend="exact"
        )

    @pytest.mark.parametrize("powers,rewards", SYMMETRIC_GAMES)
    def test_orbit_multiplicities_cover_the_space(self, powers, rewards):
        space = ConfigSpace(Game.create(powers, rewards))
        scanned = 0
        weighted = 0
        for assign, mass, multiplicity in space.iter_canonical():
            assert mass == space.mass_of(assign)
            assert len(space.orbit_codes(assign)) == multiplicity
            scanned += 1
            weighted += multiplicity
        assert scanned == space.orbit_count()
        assert weighted == space.size


class TestDagParity:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[::5])
    def test_acyclicity_longest_path_and_sinks(self, miners, coins, seed):
        game = _game(miners, coins, seed)
        graph = improvement_graph(game)
        analysis = analyze_improvement_dag(game, backend="space")
        assert analysis.acyclic == is_acyclic(graph)
        assert analysis.longest_path == longest_improvement_path(graph)
        assert list(analysis.sinks) == sink_configurations(graph)
        assert analysis.total_configurations == game.configuration_count()

    @pytest.mark.parametrize("powers,rewards", SYMMETRIC_GAMES)
    def test_symmetric_dag_matches_full_graph(self, powers, rewards):
        game = Game.create(powers, rewards)
        graph = improvement_graph(game)
        analysis = analyze_improvement_dag(game, backend="space", symmetry=True)
        assert analysis.symmetry_reduced
        assert analysis.nodes_scanned < analysis.total_configurations
        assert analysis.acyclic == is_acyclic(graph)
        assert analysis.longest_path == longest_improvement_path(graph)
        assert set(analysis.sinks) == set(sink_configurations(graph))
        # Expanded sinks come back in enumeration order, like the seed.
        assert list(analysis.sinks) == sink_configurations(graph)

    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[2::20])
    def test_exact_backend_agrees_with_space(self, miners, coins, seed):
        game = _game(miners, coins, seed)
        exact = analyze_improvement_dag(game, backend="exact")
        space = analyze_improvement_dag(game, backend="space")
        assert (exact.acyclic, exact.longest_path, list(exact.sinks)) == (
            space.acyclic,
            space.longest_path,
            list(space.sinks),
        )

    def test_limit_guard(self):
        game = random_game(20, 3, seed=0)
        with pytest.raises(InvalidModelError, match="limit"):
            analyze_improvement_dag(game, limit=100)

    def test_limit_guards_orbit_expansion_too(self):
        # Few orbits, combinatorially many equilibria: the guard must
        # fire on the *expanded* sink count, not just the orbit count.
        game = Game.create([1] * 30, [5, 7, 9])
        assert ConfigSpace(game).orbit_count() < 1000
        with pytest.raises(InvalidModelError, match="limit"):
            analyze_improvement_dag(game)
        with pytest.raises(InvalidModelError, match="limit"):
            enumerate_equilibria(game, limit=10_000)


class TestReachabilityParity:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[1::10])
    def test_reachable_sinks_match_including_order(self, miners, coins, seed):
        game = _game(miners, coins, seed)
        start = random_configuration(game, seed=seed + 1000)
        assert reachable_equilibria(game, start, backend="space") == reachable_equilibria(
            game, start, backend="exact"
        )


class TestFourCycleParity:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[::4])
    def test_witness_identical_to_fraction_scan(self, miners, coins, seed):
        game = _game(miners, coins, seed)
        fast = find_nonzero_four_cycle(game, backend="space")
        slow = find_nonzero_four_cycle(game, backend="exact")
        assert fast == slow

    def test_single_miner_has_no_witness(self):
        game = Game.create([4], [3, 2])
        assert find_nonzero_four_cycle(game, backend="space") is None

    def test_single_coin_has_no_witness(self):
        game = Game.create([4, 2], [3])
        assert find_nonzero_four_cycle(game, backend="space") is None

    def test_paper_counterexample_witness(self):
        game = Game.create([2, 1], [1, 1])
        witness = find_nonzero_four_cycle(game, backend="space")
        assert witness is not None
        assert witness == find_nonzero_four_cycle(game, backend="exact")
        assert witness[5] != 0


class TestSymmetryInternals:
    def test_canonical_code_is_orbit_minimum_member(self):
        space = ConfigSpace(Game.create([2, 2, 1, 1], [5, 3]))
        for code in range(space.size):
            assign = space.decode(code)
            orbit = space.orbit_codes(assign)
            assert code in orbit
            assert space.canonical_code(assign) in orbit
            # Every orbit member canonicalizes to the same representative.
            reps = {space.canonical_code(space.decode(member)) for member in orbit}
            assert len(reps) == 1

    def test_no_symmetry_for_distinct_powers(self):
        space = ConfigSpace(random_game(5, 2, seed=0))
        assert not space.has_symmetry
        assert space.orbit_count() == space.size

    def test_stability_is_orbit_invariant(self):
        game = Game.create([2, 2, 2, 1], [5, 3])
        space = ConfigSpace(game)
        for assign, mass, _ in space.iter_canonical():
            stable = space.is_stable_state(assign, mass)
            for member in space.orbit_codes(assign):
                config = space.config_of(member)
                assert game.is_stable(config) == stable
