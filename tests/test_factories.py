"""Tests for random game/configuration generation."""

import pytest

from repro.core.factories import random_configuration, random_game
from repro.core.miner import has_strictly_decreasing_powers
from repro.exceptions import InvalidModelError


class TestRandomGame:
    def test_shape(self):
        game = random_game(7, 3, seed=0)
        assert len(game.miners) == 7
        assert len(game.coins) == 3

    def test_reproducible(self):
        a = random_game(5, 2, seed=42)
        b = random_game(5, 2, seed=42)
        assert [m.power for m in a.miners] == [m.power for m in b.miners]
        assert [a.rewards[c] for c in a.coins] == [b.rewards[c] for c in b.coins]

    def test_different_seeds_differ(self):
        a = random_game(5, 2, seed=1)
        b = random_game(5, 2, seed=2)
        assert [m.power for m in a.miners] != [m.power for m in b.miners]

    def test_strict_powers(self):
        for seed in range(5):
            game = random_game(20, 3, seed=seed)
            assert has_strictly_decreasing_powers(game.miners)

    def test_powers_within_range(self):
        game = random_game(10, 2, power_range=(5.0, 6.0), seed=0)
        for miner in game.miners:
            assert 4.9 < float(miner.power) < 6.1

    @pytest.mark.parametrize("distribution", ["uniform", "pareto", "lognormal"])
    def test_distributions(self, distribution):
        game = random_game(10, 2, power_distribution=distribution, seed=0)
        assert len(game.miners) == 10

    def test_unknown_distribution_rejected(self):
        with pytest.raises(InvalidModelError, match="unknown distribution"):
            random_game(5, 2, power_distribution="cauchy", seed=0)

    def test_ensure_generic(self):
        from repro.core.assumptions import check_generic

        game = random_game(6, 3, seed=0, ensure_generic=True)
        assert check_generic(game)

    def test_zero_miners_rejected(self):
        with pytest.raises(InvalidModelError):
            random_game(0, 2, seed=0)

    def test_bad_range_rejected(self):
        with pytest.raises(InvalidModelError, match="low"):
            random_game(3, 2, power_range=(5.0, 2.0), seed=0)


class TestRandomConfiguration:
    def test_valid_for_game(self):
        game = random_game(6, 3, seed=1)
        config = random_configuration(game, seed=2)
        game.validate_configuration(config)

    def test_reproducible(self):
        game = random_game(6, 3, seed=1)
        assert random_configuration(game, seed=5) == random_configuration(game, seed=5)
