"""Tests for the dynamic reward design mechanism (Algorithm 2)."""

import itertools

import pytest

from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.design.mechanism import DynamicRewardDesign
from repro.exceptions import NotAnEquilibriumError, RewardDesignError
from repro.learning.policies import MinimalGainPolicy, RandomImprovingPolicy
from repro.learning.schedulers import SmallestFirstScheduler


def _game_with_equilibria(min_count=2, seed_range=range(20), n=6, k=2):
    for seed in seed_range:
        game = random_game(n, k, seed=seed)
        equilibria = enumerate_equilibria(game)
        if len(equilibria) >= min_count:
            return game, equilibria
    raise AssertionError("no game with enough equilibria found")


class TestEndToEnd:
    def test_moves_between_all_pairs(self):
        game, equilibria = _game_with_equilibria()
        for s0, sf in itertools.permutations(equilibria[:3], 2):
            result = DynamicRewardDesign().run(game, s0, sf, seed=1)
            assert result.success
            assert result.final == sf

    def test_adversarial_learner(self):
        game, equilibria = _game_with_equilibria()
        mechanism = DynamicRewardDesign(
            policy=MinimalGainPolicy(), scheduler=SmallestFirstScheduler()
        )
        result = mechanism.run(game, equilibria[0], equilibria[-1], seed=2)
        assert result.success

    def test_identity_run_costs_nothing_after_stage_milestones(self):
        game, equilibria = _game_with_equilibria()
        s0 = equilibria[0]
        result = DynamicRewardDesign().run(game, s0, s0, seed=3)
        assert result.success
        assert result.final == s0

    def test_stage_reports_cover_all_stages(self):
        game, equilibria = _game_with_equilibria()
        result = DynamicRewardDesign().run(game, equilibria[0], equilibria[1], seed=4)
        assert [r.stage for r in result.stage_reports] == list(
            range(1, len(game.miners) + 1)
        )

    def test_ledger_tracks_positive_cost(self):
        game, equilibria = _game_with_equilibria()
        result = DynamicRewardDesign().run(game, equilibria[0], equilibria[1], seed=5)
        assert result.ledger.total() > 0
        assert result.ledger.peak_excess_per_round() > 0
        assert result.ledger.total_rounds() >= result.total_steps

    def test_feasible_mode_reaches_target(self):
        game, equilibria = _game_with_equilibria()
        mechanism = DynamicRewardDesign(mode="feasible")
        result = mechanism.run(game, equilibria[0], equilibria[1], seed=6)
        assert result.success
        assert result.final == equilibria[1]

    def test_audit_mode_passes_silently(self):
        game, equilibria = _game_with_equilibria()
        mechanism = DynamicRewardDesign(audit=True)
        result = mechanism.run(game, equilibria[0], equilibria[-1], seed=7)
        assert result.success


class TestContract:
    def test_unstable_initial_rejected(self):
        game, equilibria = _game_with_equilibria()
        for seed in range(30):
            unstable = random_configuration(game, seed=seed)
            if not game.is_stable(unstable):
                with pytest.raises(NotAnEquilibriumError, match="initial"):
                    DynamicRewardDesign().run(game, unstable, equilibria[0])
                return
        pytest.skip("no unstable configuration found")

    def test_unstable_target_rejected(self):
        game, equilibria = _game_with_equilibria()
        for seed in range(30):
            unstable = random_configuration(game, seed=seed)
            if not game.is_stable(unstable):
                with pytest.raises(NotAnEquilibriumError, match="target"):
                    DynamicRewardDesign().run(game, equilibria[0], unstable)
                return
        pytest.skip("no unstable configuration found")

    def test_duplicate_powers_rejected(self):
        game = Game.create([2, 2, 1, 1], [3, 1])
        equilibria = enumerate_equilibria(game)
        if len(equilibria) < 2:
            pytest.skip("degenerate game has too few equilibria")
        with pytest.raises(RewardDesignError, match="strictly decreasing"):
            DynamicRewardDesign().run(game, equilibria[0], equilibria[1])

    def test_unknown_mode_rejected(self):
        with pytest.raises(RewardDesignError, match="mode"):
            DynamicRewardDesign(mode="yolo")


class TestScaling:
    def test_larger_game(self):
        game = random_game(10, 3, seed=9)
        from repro.core.equilibrium import greedy_equilibrium
        from repro.learning.engine import LearningEngine

        first = greedy_equilibrium(game)
        engine = LearningEngine(record_configurations=False)
        second = None
        for seed in range(20):
            candidate = engine.run(
                game, random_configuration(game, seed=seed), seed=seed
            ).final
            if candidate != first:
                second = candidate
                break
        if second is None:
            pytest.skip("game appears to have a unique learned equilibrium")
        result = DynamicRewardDesign().run(game, first, second, seed=10)
        assert result.success
        assert result.total_iterations >= len(game.miners) - 1
