"""Property-based tests for the paper's supporting claims (App. D).

Claim 5/6 (insertion preserves stability), Claim 7 (stability is
monotone in power on a shared coin), and the Theorem-1-as-graph
statement (improvement graphs are DAGs whose sinks are the equilibria).
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.coin import RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.equilibrium import best_insertion_coin, greedy_equilibrium
from repro.core.game import Game
from repro.core.miner import Miner, make_miners


@st.composite
def small_games(draw, min_miners=2, max_miners=5, max_coins=3):
    n = draw(st.integers(min_value=min_miners, max_value=max_miners))
    k = draw(st.integers(min_value=1, max_value=max_coins))
    powers = draw(
        st.lists(
            st.integers(min_value=1, max_value=300), min_size=n, max_size=n, unique=True
        )
    )
    rewards = draw(
        st.lists(st.integers(min_value=1, max_value=300), min_size=k, max_size=k)
    )
    miners = make_miners(sorted((Fraction(p, 4) for p in powers), reverse=True))
    coins = make_coins(f"c{i}" for i in range(1, k + 1))
    return Game(miners, coins, RewardFunction.from_values(coins, rewards))


@settings(max_examples=40, deadline=None)
@given(small_games(), st.integers(min_value=1, max_value=50))
def test_claim6_insertion_preserves_stability(game, new_power_numerator):
    """Claim 5/6: inserting a smallest miner at its best coin keeps
    every previously stable miner stable."""
    equilibrium = greedy_equilibrium(game)
    smallest = min(m.power for m in game.miners)
    # Strictly smaller than everyone, distinct from all existing powers.
    new_power = smallest * Fraction(new_power_numerator, new_power_numerator + 50)
    newcomer = Miner("newcomer", new_power)

    extended_miners = game.miners + (newcomer,)
    extended = Game(extended_miners, game.coins, game.rewards)
    coin = best_insertion_coin(extended, equilibrium, newcomer)
    assignment = {miner: equilibrium.coin_of(miner) for miner in game.miners}
    assignment[newcomer] = coin
    extended_config = Configuration.from_mapping(extended_miners, assignment)

    assert extended.is_miner_stable(newcomer, extended_config)
    for miner in game.miners:
        assert extended.is_miner_stable(miner, extended_config)


@settings(max_examples=40, deadline=None)
@given(small_games())
def test_claim7_stability_is_monotone_in_power(game):
    """Claim 7: on a shared coin, if a smaller miner is stable then
    every bigger co-located miner is stable too."""
    for config in game.all_configurations():
        for coin in game.coins:
            occupants = config.miners_on(coin)
            if len(occupants) < 2:
                continue
            by_power = sorted(occupants, key=lambda m: m.power)
            for index in range(len(by_power) - 1):
                small, big = by_power[index], by_power[index + 1]
                if game.is_miner_stable(small, config):
                    assert game.is_miner_stable(big, config)


@settings(max_examples=20, deadline=None)
@given(small_games(max_miners=4, max_coins=3))
def test_improvement_graph_is_dag_with_equilibrium_sinks(game):
    """Theorem 1, graph form, exactly — on hypothesis-generated games."""
    from repro.analysis.paths import improvement_graph, is_acyclic, sink_configurations
    from repro.core.equilibrium import enumerate_equilibria

    graph = improvement_graph(game)
    assert is_acyclic(graph)
    assert set(sink_configurations(graph)) == set(enumerate_equilibria(game))
