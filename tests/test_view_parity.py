"""Parity suite for the strategy-view API: custom strategies, fast path.

The unified trajectory loop drives *any* policy/scheduler — standard,
view-based custom subclass, or legacy ``choose(game, config, …)``
subclass — over either view backend. These tests assert the refactor's
central promise: custom strategies run on ``backend="fast"`` with
trajectories, step payoffs, materialized configurations *and RNG draw
sequences* bit-identical to ``backend="exact"`` — including restricted
(asymmetric) games, which now run on the integer kernel too.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.core.restricted import RestrictedGame
from repro.kernel.engine import KernelView
from repro.learning.engine import LearningEngine
from repro.learning.examples import PowerWeightedScheduler, SecondBestPolicy
from repro.learning.policies import BetterResponsePolicy, RandomImprovingPolicy
from repro.learning.restricted_engine import RestrictedLearningEngine
from repro.learning.schedulers import ActivationScheduler
from repro.learning.view import ExactView, GameView, make_view


def assert_trajectories_identical(exact, fast):
    """Step-for-step, payoff-for-payoff, configuration-for-configuration."""
    assert exact.converged == fast.converged
    assert len(exact.steps) == len(fast.steps)
    for a, b in zip(exact.steps, fast.steps):
        assert a.index == b.index
        assert a.miner == b.miner
        assert a.source == b.source
        assert a.target == b.target
        assert a.payoff_before == b.payoff_before
        assert a.payoff_after == b.payoff_after
    assert exact.configurations == fast.configurations


# ----------------------------------------------------------------------
# Custom strategies under test
# ----------------------------------------------------------------------


class RandomizedGreedyPolicy(BetterResponsePolicy):
    """View-based custom policy that also consumes RNG draws."""

    name = "randomized-greedy"

    def choose_view(self, view, miner, rng):
        moves = view.improving_moves(miner)
        if not moves:
            return None
        if rng.random() < 0.5:
            return view.max_rpu_move(miner, moves)
        return moves[int(rng.integers(0, len(moves)))]


class LegacyLexicographicPolicy(BetterResponsePolicy):
    """Pre-view custom policy (overrides the 4-argument ``choose``)."""

    name = "legacy-lex"

    def choose(self, game, config, miner, rng):
        moves = game.better_response_moves(miner, config)
        if not moves:
            return None
        return max(moves, key=lambda coin: coin.name)


class LegacyOverrideOfStandard(RandomImprovingPolicy):
    """Subclass of a standard policy overriding only legacy ``choose``.

    The engine must honor the legacy override even though the parent
    provides a (faster) ``choose_view`` — most-derived override wins.
    """

    name = "stubborn-first"

    def choose(self, game, config, miner, rng):
        moves = game.better_response_moves(miner, config)
        return moves[0] if moves else None


class LegacyColdestScheduler(ActivationScheduler):
    """Pre-view custom scheduler (overrides the 4-argument ``pick``)."""

    name = "legacy-coldest"

    def __init__(self):
        self._last_seen = {}

    def reset(self):
        self._last_seen = {}

    def pick(self, game, config, unstable, rng):
        picked = min(
            unstable, key=lambda m: (self._last_seen.get(m.name, -1), m.name)
        )
        self._last_seen[picked.name] = len(self._last_seen)
        return picked


CUSTOM_POLICIES = (
    SecondBestPolicy(),
    RandomizedGreedyPolicy(),
    LegacyLexicographicPolicy(),
    LegacyOverrideOfStandard(),
)

CUSTOM_SCHEDULERS = (PowerWeightedScheduler(), LegacyColdestScheduler())

SIZES = ((4, 2), (6, 3), (8, 3), (10, 4))


# ----------------------------------------------------------------------
# Trajectory + RNG-draw parity
# ----------------------------------------------------------------------


def test_custom_strategies_fast_path_parity():
    """Custom policies × schedulers: fast ≡ exact, draw-for-draw.

    Both backends are handed live generators seeded identically; after
    the runs, the next raw draw must agree — which can only happen if
    the two backends consumed *exactly* the same RNG sequence.
    """
    for game_seed in range(40):
        n, k = SIZES[game_seed % len(SIZES)]
        game = random_game(n, k, seed=game_seed)
        start = random_configuration(game, seed=game_seed + 40_000)
        policy = CUSTOM_POLICIES[game_seed % len(CUSTOM_POLICIES)]
        scheduler = CUSTOM_SCHEDULERS[game_seed % len(CUSTOM_SCHEDULERS)]
        rng_exact = np.random.default_rng(game_seed)
        rng_fast = np.random.default_rng(game_seed)
        exact = LearningEngine(
            policy=policy, scheduler=scheduler, backend="exact"
        ).run(game, start, seed=rng_exact)
        fast = LearningEngine(
            policy=policy, scheduler=scheduler, backend="fast"
        ).run(game, start, seed=rng_fast)
        assert_trajectories_identical(exact, fast)
        assert game.is_stable(fast.final)
        assert int(rng_exact.integers(0, 2**62)) == int(rng_fast.integers(0, 2**62))


def test_legacy_override_of_standard_policy_is_honored_on_fast():
    """A legacy ``choose`` override on a standard-policy subclass wins."""
    game = random_game(6, 3, seed=11)
    start = random_configuration(game, seed=12)
    custom = LearningEngine(policy=LegacyOverrideOfStandard(), backend="fast").run(
        game, start, seed=13
    )
    # It must behave like first-improving (its override), not like the
    # parent's random-improving choose_view.
    from repro.learning.policies import FirstImprovingPolicy

    reference = LearningEngine(policy=FirstImprovingPolicy(), backend="exact").run(
        game, start, seed=13
    )
    assert_trajectories_identical(reference, custom)


def test_strategy_without_any_override_fails_loudly():
    class EmptyPolicy(BetterResponsePolicy):
        name = "empty"

    class EmptyScheduler(ActivationScheduler):
        name = "empty"

    game = random_game(4, 2, seed=0)
    config = random_configuration(game, seed=1)
    rng = np.random.default_rng(2)
    with pytest.raises(TypeError, match="choose_view"):
        EmptyPolicy().choose(game, config, game.miners[0], rng)
    with pytest.raises(TypeError, match="choose_view"):
        EmptyPolicy().view_chooser()
    with pytest.raises(TypeError, match="pick_view"):
        EmptyScheduler().pick(game, config, list(game.miners), rng)
    with pytest.raises(TypeError, match="pick_view"):
        EmptyScheduler().view_picker()


def test_legacy_entry_points_still_work_directly():
    """policy.choose(game, config, …) / scheduler.pick(…) stay callable."""
    game = random_game(6, 3, seed=21)
    config = random_configuration(game, seed=22)
    rng = np.random.default_rng(23)
    miner = game.unstable_miners(config)[0]
    choice = SecondBestPolicy().choose(game, config, miner, rng)
    assert choice in game.better_response_moves(miner, config)
    picked = PowerWeightedScheduler().pick(
        game, config, game.unstable_miners(config), rng
    )
    assert picked in game.unstable_miners(config)


# ----------------------------------------------------------------------
# Restricted games on the integer kernel
# ----------------------------------------------------------------------


def _random_restriction(game, rng):
    allowed = {}
    for miner in game.miners:
        picks = [coin for coin in game.coins if rng.random() < 0.7]
        allowed[miner] = picks or [game.coins[int(rng.integers(0, len(game.coins)))]]
    restricted = RestrictedGame(game, allowed)
    start = Configuration(
        game.miners,
        [
            restricted.allowed_coins(miner)[
                int(rng.integers(0, len(restricted.allowed_coins(miner))))
            ]
            for miner in game.miners
        ],
    )
    return restricted, start


class BiasedRestrictedEngine(RestrictedLearningEngine):
    """Custom restricted engine overriding the ``_select`` hook."""

    def _select(self, game, miner, config, moves, rng):
        if rng.random() < 0.5:
            return moves[0]
        return max(moves, key=lambda coin: coin.name)


def test_restricted_custom_select_runs_identically_on_both_backends():
    for game_seed in range(15):
        game = random_game(7, 3, seed=game_seed + 900)
        rng = np.random.default_rng(game_seed)
        restricted, start = _random_restriction(game, rng)
        rng_exact = np.random.default_rng(game_seed + 1)
        rng_fast = np.random.default_rng(game_seed + 1)
        exact = BiasedRestrictedEngine(backend="exact").run(
            restricted, start, seed=rng_exact
        )
        fast = BiasedRestrictedEngine(backend="fast").run(
            restricted, start, seed=rng_fast
        )
        assert_trajectories_identical(exact, fast)
        assert restricted.is_stable(fast.final)
        assert int(rng_exact.integers(0, 2**62)) == int(rng_fast.integers(0, 2**62))


def test_masked_views_agree_with_restricted_game_queries():
    """Both views under a mask reproduce RestrictedGame's structure."""
    for game_seed in range(20):
        game = random_game(6, 4, seed=game_seed + 1200)
        rng = np.random.default_rng(game_seed)
        restricted, start = _random_restriction(game, rng)
        allowed = {miner: restricted.allowed_coins(miner) for miner in game.miners}
        views = (
            ExactView(game, start, allowed=allowed),
            KernelView(game, start, allowed=allowed),
        )
        for view in views:
            for miner in game.miners:
                assert view.improving_moves(miner) == (
                    restricted.better_response_moves(miner, start)
                )
                assert set(view.allowed_coins(miner)) == set(
                    restricted.allowed_coins(miner)
                )
            assert view.unstable_miners() == restricted.unstable_miners(start)
            assert view.is_stable() == restricted.is_stable(start)


# ----------------------------------------------------------------------
# View protocol invariants
# ----------------------------------------------------------------------


def test_make_view_backends_and_validation():
    game = random_game(5, 2, seed=3)
    start = random_configuration(game, seed=4)
    assert isinstance(make_view(game, start, backend="exact"), ExactView)
    fast = make_view(game, start, backend="fast")
    assert isinstance(fast, KernelView)
    assert isinstance(fast, GameView)
    with pytest.raises(ValueError, match="backend"):
        make_view(game, start, backend="float")


def test_selection_helpers_accept_the_current_coin():
    """minimal_gain/max_rpu rank the current coin as 'staying', both views.

    A custom strategy may pass candidate lists that include the
    miner's own coin; both views must treat it as a no-op move (mass
    unchanged) and therefore agree with payoff_after_move's ordering.
    """
    for game_seed in range(10):
        game = random_game(6, 4, seed=game_seed + 50)
        start = random_configuration(game, seed=game_seed + 60)
        exact = ExactView(game, start)
        fast = KernelView(game, start)
        for miner in game.miners:
            moves = list(game.coins)  # includes the current coin
            for view in (exact, fast):
                minimal = view.minimal_gain_move(miner, moves)
                maximal = view.max_rpu_move(miner, moves)
                assert minimal == min(
                    moves,
                    key=lambda c: (exact.payoff_after_move(miner, c), c.name),
                )
                # Post-move RPU ordering equals post-move payoff
                # ordering for a fixed miner; ties break to the larger
                # name.
                assert maximal == max(
                    moves,
                    key=lambda c: (exact.payoff_after_move(miner, c), c.name),
                )


def test_mask_validation_rejects_foreign_miners_and_coins():
    from repro.core.coin import Coin
    from repro.core.miner import Miner
    from repro.exceptions import InvalidModelError

    game = random_game(4, 2, seed=70)
    start = random_configuration(game, seed=71)
    stranger = Miner.of("stranger", 5)
    with pytest.raises(InvalidModelError, match="not"):
        make_view(game, start, allowed={stranger: list(game.coins)})
    with pytest.raises(InvalidModelError, match="unknown coin"):
        make_view(game, start, allowed={game.miners[0]: [Coin("nope")]})
    with pytest.raises(InvalidModelError, match="at least one"):
        make_view(game, start, allowed={game.miners[0]: []})


def test_views_answer_identically_along_a_trajectory():
    """Every protocol query agrees between the views at every step."""
    game = random_game(6, 3, seed=31)
    start = random_configuration(game, seed=32)
    exact = ExactView(game, start)
    fast = KernelView(game, start)
    rng = np.random.default_rng(33)
    for _ in range(50):
        assert exact.configuration() == fast.configuration()
        assert exact.unstable_miners() == fast.unstable_miners()
        assert exact.is_stable() == fast.is_stable()
        for miner in game.miners:
            assert exact.coin_of(miner) == fast.coin_of(miner)
            assert exact.payoff(miner) == fast.payoff(miner)
            assert exact.improving_moves(miner) == fast.improving_moves(miner)
            assert exact.best_response(miner) == fast.best_response(miner)
            for coin in game.coins:
                assert exact.payoff_after_move(miner, coin) == (
                    fast.payoff_after_move(miner, coin)
                )
            moves = exact.improving_moves(miner)
            if moves:
                assert exact.minimal_gain_move(miner, moves) == (
                    fast.minimal_gain_move(miner, moves)
                )
                assert exact.max_rpu_move(miner, moves) == (
                    fast.max_rpu_move(miner, moves)
                )
        unstable = exact.unstable_miners()
        if not unstable:
            break
        miner = unstable[int(rng.integers(0, len(unstable)))]
        moves = exact.improving_moves(miner)
        target = moves[int(rng.integers(0, len(moves)))]
        exact.apply(miner, target)
        fast.apply(miner, target)
    else:  # pragma: no cover - trajectory budget is generous
        pytest.fail("trajectory did not converge within the probe budget")


# ----------------------------------------------------------------------
# Hypothesis: tie-heavy games, custom strategies, masks
# ----------------------------------------------------------------------


@st.composite
def masked_games(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    k = draw(st.integers(min_value=2, max_value=4))
    powers = draw(
        st.lists(
            st.fractions(min_value=Fraction(1, 20), max_value=Fraction(20)),
            min_size=n,
            max_size=n,
        )
    )
    rewards = draw(
        st.lists(
            st.fractions(min_value=Fraction(1, 20), max_value=Fraction(20)),
            min_size=k,
            max_size=k,
        )
    )
    choices = draw(
        st.lists(st.integers(min_value=0, max_value=k - 1), min_size=n, max_size=n)
    )
    # Per-miner allowed sets; each must include the miner's start coin.
    masks = draw(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=k - 1), max_size=k),
            min_size=n,
            max_size=n,
        )
    )
    masks = [sorted(mask | {choice}) for mask, choice in zip(masks, choices)]
    return powers, rewards, choices, masks


@settings(max_examples=40, deadline=None)
@given(masked_games(), st.integers(min_value=0, max_value=2**31 - 1))
def test_custom_strategy_parity_property(data, run_seed):
    """Hypothesis: custom strategies agree across backends on tie-heavy
    games, both unrestricted and under random hardware masks."""
    powers, rewards, choices, masks = data
    game = Game.create(powers=powers, reward_values=rewards)
    start = Configuration(game.miners, [game.coins[i] for i in choices])

    policy = RandomizedGreedyPolicy()
    scheduler = PowerWeightedScheduler()
    rng_exact = np.random.default_rng(run_seed)
    rng_fast = np.random.default_rng(run_seed)
    exact = LearningEngine(policy=policy, scheduler=scheduler, backend="exact").run(
        game, start, seed=rng_exact
    )
    fast = LearningEngine(policy=policy, scheduler=scheduler, backend="fast").run(
        game, start, seed=rng_fast
    )
    assert_trajectories_identical(exact, fast)
    assert int(rng_exact.integers(0, 2**62)) == int(rng_fast.integers(0, 2**62))

    restricted = RestrictedGame(
        game,
        {
            miner: [game.coins[j] for j in mask]
            for miner, mask in zip(game.miners, masks)
        },
    )
    for mode in ("random", "best", "minimal"):
        r_exact = RestrictedLearningEngine(mode=mode, backend="exact").run(
            restricted, start, seed=run_seed
        )
        r_fast = RestrictedLearningEngine(mode=mode, backend="fast").run(
            restricted, start, seed=run_seed
        )
        assert_trajectories_identical(r_exact, r_fast)
        assert restricted.is_stable(r_fast.final)
