"""The :func:`repro.run_many` front door: equivalence, seeding, shims.

Three families of guarantees:

* **Executor equivalence** — the same cell list returns bit-identical
  results under every executor mode (the whole point of the redesign).
* **Seeding** — explicit ``RunSpec.seed`` reproduces the old per-layer
  runners exactly, and derived seeds are append-stable.
* **Deprecation shims** — ``runner=`` / ``workers=`` keep working but
  warn, and a broken worker pool degrades quietly to serial with the
  original error surfaced in the warning.
"""

from __future__ import annotations

import pytest

from repro import EXECUTORS, RunSpec, run_many
from repro.analysis.basins import basin_profile
from repro.analysis.convergence import measure_convergence
from repro.core.factories import random_game
from repro.experiments.common import resolve_batch_runner, resolve_execution
from repro.kernel.batch import BatchRunner, PooledRunner
from repro.learning.policies import BestResponsePolicy, MinimalGainPolicy
from repro.learning.schedulers import RoundRobinScheduler
from repro.stochastic.noisy_engine import NoisyBatchRunner, NoisyLearningEngine


def _cells():
    game_a = random_game(6, 3, seed=1)
    game_b = random_game(6, 3, seed=2)  # same shape: shares tensor buckets
    game_c = random_game(9, 2, seed=3)
    return [
        RunSpec(game=game_a, runs=5, seed=11),
        RunSpec(game=game_b, runs=5, policy=BestResponsePolicy(), seed=12),
        RunSpec(game=game_c, runs=4, policy=MinimalGainPolicy(),
                scheduler=RoundRobinScheduler(), seed=13),
        RunSpec(game=game_a, runs=6, kind="noisy",
                engine=NoisyLearningEngine(budget=8, max_activations=400), seed=14),
    ]


def test_every_executor_returns_identical_results():
    reference = run_many(_cells(), executor="serial")
    for mode in ("auto", "thread", "vectorized"):
        assert run_many(_cells(), executor=mode) == reference


def test_matches_direct_runner_calls():
    """run_many is a router: cell results equal the underlying runners'."""
    cells = _cells()
    results = run_many(cells, executor="serial")
    with BatchRunner() as runner:
        for cell, cell_results in zip(cells[:3], results[:3]):
            assert cell_results == runner.run(
                cell.game, runs=cell.runs, policy=cell.policy,
                scheduler=cell.scheduler, seed=cell.seed,
            )
    with NoisyBatchRunner() as runner:
        assert results[3] == runner.run(
            cells[3].game, replications=cells[3].runs,
            engine=cells[3].engine, seed=cells[3].seed,
        )


def test_derived_seeds_are_append_stable():
    """Appending a cell never changes earlier cells' derived randomness."""
    game = random_game(5, 2, seed=4)
    short = [RunSpec(game=game, runs=3)]
    longer = short + [RunSpec(game=game, runs=3)]
    assert run_many(short, seed=99)[0] == run_many(longer, seed=99)[0]


def test_runspec_validation():
    game = random_game(4, 2, seed=0)
    with pytest.raises(ValueError, match="runs"):
        RunSpec(game=game, runs=0)
    with pytest.raises(ValueError, match="kind"):
        RunSpec(game=game, runs=1, kind="bogus")
    with pytest.raises(ValueError, match="backend"):
        RunSpec(game=game, runs=1, backend="bogus")
    with pytest.raises(ValueError, match="engine"):
        RunSpec(game=game, runs=1, kind="noisy", policy=BestResponsePolicy())
    with pytest.raises(ValueError, match="policy"):
        RunSpec(game=game, runs=1, engine=NoisyLearningEngine())


def test_executor_validation():
    with pytest.raises(ValueError, match="executor"):
        run_many([], executor="bogus")
    assert run_many([], executor="auto") == []
    assert set(EXECUTORS) == {"auto", "serial", "thread", "process", "vectorized"}


def test_measure_convergence_runner_deprecated():
    game = random_game(5, 2, seed=7)
    fresh = measure_convergence(game, runs=6, seed=3)
    with BatchRunner() as runner:
        with pytest.warns(DeprecationWarning, match="runner= is deprecated"):
            legacy = measure_convergence(game, runs=6, seed=3, runner=runner)
    assert legacy == fresh


def test_basin_profile_runner_deprecated():
    game = random_game(5, 2, seed=8)
    fresh = basin_profile(game, samples=10, seed=5)
    with BatchRunner() as runner:
        with pytest.warns(DeprecationWarning, match="runner= is deprecated"):
            legacy = basin_profile(game, samples=10, seed=5, runner=runner)
    assert legacy.counts == fresh.counts


def test_workers_knob_deprecated():
    with pytest.warns(DeprecationWarning, match="workers= is deprecated"):
        assert resolve_execution(executor="auto", workers=2) == ("process", 2)
    with pytest.warns(DeprecationWarning, match="workers= is deprecated"):
        assert resolve_execution(executor="vectorized", workers=2) == ("vectorized", 2)
    assert resolve_execution(executor="auto", workers=0) == ("auto", None)
    with pytest.raises(ValueError):
        resolve_execution(workers=-1)
    with pytest.warns(DeprecationWarning, match="resolve_batch_runner is deprecated"):
        runner = resolve_batch_runner(workers=1)
    runner.close()
    assert resolve_batch_runner(workers=0) is None


def test_broken_pool_degrades_quietly_and_names_the_error(monkeypatch):
    """Pool creation failure → serial results + the original exception."""
    game = random_game(6, 2, seed=9)
    reference = run_many([RunSpec(game=game, runs=8, seed=21)], executor="serial")[0]

    def explode(self, mode, workers):
        raise OSError("semaphores exhausted (simulated)")

    monkeypatch.setattr(PooledRunner, "_get_pool", explode)
    with pytest.warns(RuntimeWarning, match="OSError: semaphores exhausted"):
        degraded = run_many(
            [RunSpec(game=game, runs=8, seed=21)],
            executor="process",
            max_workers=2,
        )[0]
    assert degraded == reference
