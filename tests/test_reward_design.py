"""Tests for the reward design functions H_1 and H_i (Eqs. 4–5)."""

import pytest

from repro.core.equilibrium import greedy_equilibrium
from repro.core.factories import random_configuration, random_game
from repro.design.reward_design import stage1_rewards, stage_rewards
from repro.design.stages import intermediate_configuration, ordered_miners
from repro.exceptions import RewardDesignError
from repro.learning.engine import LearningEngine


@pytest.fixture
def game():
    return random_game(5, 3, seed=2)


@pytest.fixture
def target(game):
    return greedy_equilibrium(game)


class TestStage1:
    def test_unique_equilibrium_is_everyone_on_destination(self, game, target):
        designed = game.with_rewards(stage1_rewards(game, target))
        milestone = intermediate_configuration(game, target, 1)
        assert designed.is_stable(milestone)
        # From several random starts, learning must land exactly there.
        engine = LearningEngine(record_configurations=False)
        for seed in range(5):
            start = random_configuration(game, seed=seed)
            final = engine.run(designed, start, seed=seed).final
            assert final == milestone

    def test_only_destination_boosted(self, game, target):
        designed = stage1_rewards(game, target)
        destination = target.coin_of(ordered_miners(game)[0])
        for coin in game.coins:
            if coin == destination:
                assert designed[coin] > game.rewards[coin]
            else:
                assert designed[coin] == game.rewards[coin]

    def test_dominates_base_rewards(self, game, target):
        assert stage1_rewards(game, target).dominates(game.rewards)


class TestStageI:
    def test_equalizes_non_destination_rpus(self, game, target):
        stage = 2
        config = intermediate_configuration(game, target, stage - 1)
        if config == intermediate_configuration(game, target, stage):
            pytest.skip("trivial stage for this target")
        designed = stage_rewards(game, target, stage, config)
        designed_game = game.with_rewards(designed)
        ceiling = game.max_rpu(config)
        destination = target.coin_of(ordered_miners(game)[stage - 1])
        for coin in game.coins:
            rpu = designed_game.rpu(coin, config)
            if coin == destination:
                if rpu is not None:
                    assert rpu > ceiling
            elif rpu is not None:
                assert rpu == ceiling

    def test_mover_has_unique_better_response(self, game, target):
        from repro.design.stages import mover_index

        stage = 2
        config = intermediate_configuration(game, target, stage - 1)
        if config == intermediate_configuration(game, target, stage):
            pytest.skip("trivial stage for this target")
        designed_game = game.with_rewards(stage_rewards(game, target, stage, config))
        miners = ordered_miners(game)
        mover = miners[mover_index(game, target, stage, config) - 1]
        destination = target.coin_of(miners[stage - 1])
        # Lemma 1's first claim: the only better-response step in the
        # designed game is the mover going to the destination.
        unstable = designed_game.unstable_miners(config)
        assert unstable == (mover,)
        assert designed_game.better_response_moves(mover, config) == (destination,)

    def test_paper_mode_zeroes_empty_coins(self, game, target):
        stage = 2
        config = intermediate_configuration(game, target, stage - 1)
        if config == intermediate_configuration(game, target, stage):
            pytest.skip("trivial stage for this target")
        designed = stage_rewards(game, target, stage, config, mode="paper")
        for coin in game.coins:
            if game.coin_power(coin, config) == 0:
                assert designed[coin] == 0

    def test_feasible_mode_floors_at_base(self, game, target):
        stage = 2
        config = intermediate_configuration(game, target, stage - 1)
        if config == intermediate_configuration(game, target, stage):
            pytest.skip("trivial stage for this target")
        designed = stage_rewards(game, target, stage, config, mode="feasible")
        assert designed.dominates(game.rewards)

    def test_stage_one_rejected(self, game, target):
        config = intermediate_configuration(game, target, 1)
        with pytest.raises(RewardDesignError, match="i ≥ 2"):
            stage_rewards(game, target, 1, config)
