"""Property-based tests for Theorem 1's potential argument."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coin import RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import make_miners
from repro.core.potential import compare_potential, rpu_list
from repro.learning.engine import LearningEngine
from repro.learning.policies import RandomImprovingPolicy


@st.composite
def game_config_and_step(draw):
    """A game, a configuration, and one applicable better-response step."""
    n = draw(st.integers(min_value=2, max_value=6))
    k = draw(st.integers(min_value=2, max_value=4))
    powers = draw(
        st.lists(
            st.integers(min_value=1, max_value=500), min_size=n, max_size=n, unique=True
        )
    )
    rewards = draw(
        st.lists(st.integers(min_value=1, max_value=500), min_size=k, max_size=k)
    )
    miners = make_miners([Fraction(p, 3) for p in powers])
    coins = make_coins(f"c{i}" for i in range(1, k + 1))
    game = Game(miners, coins, RewardFunction.from_values(coins, rewards))
    indices = draw(
        st.lists(st.integers(min_value=0, max_value=k - 1), min_size=n, max_size=n)
    )
    config = Configuration(miners, [coins[i] for i in indices])
    steps = [
        (miner, coin)
        for miner in miners
        for coin in game.better_response_moves(miner, config)
    ]
    if not steps:
        return game, config, None
    return game, config, steps[draw(st.integers(min_value=0, max_value=len(steps) - 1))]


@settings(max_examples=80, deadline=None)
@given(game_config_and_step())
def test_every_better_response_step_increases_the_potential(triple):
    """Theorem 1's heart: rank(list(s)) strictly increases per step."""
    game, config, step = triple
    if step is None:
        return
    miner, coin = step
    assert compare_potential(game, config, config.move(miner, coin)) < 0


@settings(max_examples=80, deadline=None)
@given(game_config_and_step())
def test_observation2_rpu_inequalities(triple):
    """RPU_c(s) < min(RPU_c(s'), RPU_c'(s')) on every step."""
    game, config, step = triple
    if step is None:
        return
    miner, coin = step
    source = config.coin_of(miner)
    after = config.move(miner, coin)
    rpu_source_before = game.rpu(source, config)
    rpu_source_after = game.rpu(source, after)
    rpu_target_after = game.rpu(coin, after)
    assert rpu_target_after > rpu_source_before
    if rpu_source_after is not None:
        assert rpu_source_after > rpu_source_before


@settings(max_examples=80, deadline=None)
@given(game_config_and_step())
def test_observation1_moves_up_the_list(triple):
    """A better response targets a strictly later position in list(s)."""
    game, config, step = triple
    if step is None:
        return
    miner, coin = step
    entries = rpu_list(game, config)
    order = [game.coins[entry[1]] for entry in entries]
    assert order.index(coin) > order.index(config.coin_of(miner))


@settings(max_examples=25, deadline=None)
@given(game_config_and_step(), st.integers(min_value=0, max_value=2**31 - 1))
def test_learning_always_converges(triple, seed):
    """Theorem 1 itself, executed: every improving path is finite."""
    game, config, _ = triple
    engine = LearningEngine(policy=RandomImprovingPolicy(), max_steps=100_000)
    trajectory = engine.run(game, config, seed=seed)
    assert trajectory.converged
    assert game.is_stable(trajectory.final)
