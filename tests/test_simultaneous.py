"""Tests for simultaneous-move dynamics."""

import pytest

from repro.core.configuration import Configuration
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.learning.simultaneous import cycling_fraction, run_simultaneous


class TestRunSimultaneous:
    def test_stable_start_converges_immediately(self):
        from repro.core.equilibrium import greedy_equilibrium

        game = random_game(6, 2, seed=0)
        equilibrium = greedy_equilibrium(game)
        result = run_simultaneous(game, equilibrium, seed=1)
        assert result.converged
        assert result.rounds == 0

    def test_two_symmetric_miners_cycle(self):
        # The classic: two identical miners on identical coins swap
        # forever under synchronous best response.
        game = Game.create([1, 1.0000001], [1, 1])
        c1 = game.coins[0]
        start = Configuration(game.miners, [c1, c1])
        result = run_simultaneous(game, start, max_rounds=50, seed=2)
        assert result.cycled
        assert not result.converged

    def test_inertia_restores_convergence(self):
        game = Game.create([1, 1.0000001], [1, 1])
        c1 = game.coins[0]
        start = Configuration(game.miners, [c1, c1])
        result = run_simultaneous(game, start, inertia=0.5, max_rounds=500, seed=3)
        assert result.converged

    def test_cycle_start_points_at_repeat(self):
        game = Game.create([1, 1.0000001], [1, 1])
        c1 = game.coins[0]
        start = Configuration(game.miners, [c1, c1])
        result = run_simultaneous(game, start, max_rounds=50, seed=4)
        repeated = result.configurations[-1]
        assert result.configurations[result.cycle_start] == repeated

    def test_parameter_validation(self):
        game = random_game(4, 2, seed=5)
        start = random_configuration(game, seed=6)
        with pytest.raises(ValueError, match="inertia"):
            run_simultaneous(game, start, inertia=1.0)
        with pytest.raises(ValueError, match="max_rounds"):
            run_simultaneous(game, start, max_rounds=0)

    def test_converged_final_is_stable(self):
        game = random_game(5, 3, seed=7)
        start = random_configuration(game, seed=8)
        result = run_simultaneous(game, start, inertia=0.5, max_rounds=2000, seed=9)
        if result.converged:
            assert game.is_stable(result.final)


class TestCyclingFraction:
    def test_inertia_reduces_cycling(self):
        game = random_game(8, 3, seed=10)
        sync = cycling_fraction(game, starts=10, inertia=0.0, seed=11)
        inertial = cycling_fraction(game, starts=10, inertia=0.6, seed=11)
        assert inertial <= sync

    def test_fraction_in_unit_interval(self):
        game = random_game(6, 2, seed=12)
        fraction = cycling_fraction(game, starts=5, seed=13)
        assert 0.0 <= fraction <= 1.0
