"""Property-based tests for the core game invariants (hypothesis).

Strategies build small games with exact rational powers/rewards drawn
from integer grids, so every property is checked in exact arithmetic.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coin import RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import make_miners


@st.composite
def games(draw, max_miners=6, max_coins=4):
    """A small game with distinct rational powers and positive rewards."""
    n = draw(st.integers(min_value=1, max_value=max_miners))
    k = draw(st.integers(min_value=1, max_value=max_coins))
    raw_powers = draw(
        st.lists(
            st.integers(min_value=1, max_value=1000),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    rewards = draw(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=k, max_size=k)
    )
    miners = make_miners([Fraction(p, 7) for p in raw_powers])
    coins = make_coins(f"c{i}" for i in range(1, k + 1))
    return Game(miners, coins, RewardFunction.from_values(coins, rewards))


@st.composite
def games_with_configuration(draw, **kwargs):
    game = draw(games(**kwargs))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(game.coins) - 1),
            min_size=len(game.miners),
            max_size=len(game.miners),
        )
    )
    config = Configuration(game.miners, [game.coins[i] for i in indices])
    return game, config


@settings(max_examples=60, deadline=None)
@given(games_with_configuration())
def test_welfare_equals_occupied_rewards(pair):
    """Σ u_p(s) = Σ_{occupied c} F(c): coins divide their whole reward."""
    game, config = pair
    occupied_total = sum(
        (game.rewards[coin] for coin in config.occupied_coins()), Fraction(0)
    )
    assert game.social_welfare(config) == occupied_total


@settings(max_examples=60, deadline=None)
@given(games_with_configuration())
def test_payoffs_on_a_coin_split_proportionally(pair):
    """u_p(s)/u_q(s) = m_p/m_q for miners sharing a coin."""
    game, config = pair
    for coin in config.occupied_coins():
        occupants = config.miners_on(coin)
        if len(occupants) < 2:
            continue
        p, q = occupants[0], occupants[1]
        assert game.payoff(p, config) * q.power == game.payoff(q, config) * p.power


@settings(max_examples=60, deadline=None)
@given(games_with_configuration())
def test_better_response_definition(pair):
    """better_response_moves is exactly {c : u_p((s_-p, c)) > u_p(s)}."""
    game, config = pair
    for miner in game.miners:
        current = game.payoff(miner, config)
        listed = set(game.better_response_moves(miner, config))
        for coin in game.coins:
            improves = (
                coin != config.coin_of(miner)
                and game.payoff(miner, config.move(miner, coin)) > current
            )
            assert (coin in listed) == improves


@settings(max_examples=60, deadline=None)
@given(games_with_configuration())
def test_stability_iff_no_unstable_miners(pair):
    game, config = pair
    assert game.is_stable(config) == (len(game.unstable_miners(config)) == 0)


@settings(max_examples=40, deadline=None)
@given(games_with_configuration())
def test_fast_path_agrees_with_reference(pair):
    game, config = pair
    powers = game.coin_power_map(config)
    assert game.unstable_miners_given(config, powers) == game.unstable_miners(config)
    for miner in game.miners:
        assert game.better_response_moves_given(
            miner, config, powers
        ) == game.better_response_moves(miner, config)


@settings(max_examples=40, deadline=None)
@given(games_with_configuration())
def test_move_is_involution_when_reversed(pair):
    game, config = pair
    miner = game.miners[0]
    original = config.coin_of(miner)
    for coin in game.coins:
        assert config.move(miner, coin).move(miner, original) == config


@settings(max_examples=40, deadline=None)
@given(games())
def test_greedy_equilibrium_is_always_stable(game):
    """Proposition 3 (existence), via the Appendix A construction."""
    from repro.core.equilibrium import greedy_equilibrium

    assert game.is_stable(greedy_equilibrium(game))
