"""The observability layer: recorders, traces, manifests, hook points.

Four families of guarantees:

* **Zero overhead / zero interference** — with the default NullRecorder
  nothing is recorded, and switching a MetricsRecorder on changes no
  result and consumes no extra RNG draw.
* **Counter accounting** — engine step/scan totals match the returned
  trajectories exactly on every executor; tensor lane counters match
  :func:`~repro.kernel.tensor.kernel_lane` predictions per game.
* **Export** — JSONL traces round-trip and manifests carry the
  environment stamp, counters and wall time.
* **Satellites** — deprecation warnings point at the caller, and the
  bench compare tooling refuses cross-version artifacts.
"""

from __future__ import annotations

import io
import json
import logging
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import Game, LearningEngine, RunSpec, run_many
from repro.cli import main as cli_main
from repro.core.factories import random_configuration, random_game
from repro.experiments import e02_convergence
from repro.experiments.common import resolve_batch_runner, resolve_execution
from repro.kernel.core import KernelGame
from repro.kernel.space import ConfigSpace
from repro.kernel.tensor import kernel_lane
from repro.obs import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    RunManifest,
    TraceWriter,
    configure_logging,
    environment_stamp,
    get_logger,
    get_recorder,
    observe,
    report,
    set_recorder,
)
from repro.stochastic.estimator import estimate_payoffs
from repro.stochastic.lottery import sample_block_wins

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Recorder protocol
# ----------------------------------------------------------------------


class TestRecorder:
    def test_null_recorder_is_default_and_inert(self):
        recorder = get_recorder()
        assert recorder is NULL_RECORDER
        assert not recorder.enabled
        recorder.count("x")
        recorder.gauge("g", 1)
        recorder.add_time("t", 0.5)
        recorder.event("e", detail=1)
        with recorder.timer("span"):
            pass  # no state anywhere to assert on — that's the point

    def test_observe_installs_and_restores(self):
        metrics = MetricsRecorder()
        with observe(metrics) as rec:
            assert rec is metrics
            assert get_recorder() is metrics
        assert get_recorder() is NULL_RECORDER

    def test_observe_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with observe(MetricsRecorder()):
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_returns_previous_and_none_resets(self):
        metrics = MetricsRecorder()
        previous = set_recorder(metrics)
        try:
            assert previous is NULL_RECORDER
            assert set_recorder(None) is metrics
        finally:
            set_recorder(None)
        assert isinstance(get_recorder(), NullRecorder)

    def test_metrics_recorder_collects(self):
        rec = MetricsRecorder()
        rec.count("a")
        rec.count("a", 4)
        rec.gauge("g", "value")
        with rec.timer("span"):
            pass
        rec.add_time("span", 0.25)
        rec.event("hello", x=1)
        assert rec.counter("a") == 5
        assert rec.counter("missing") == 0
        assert rec.gauges["g"] == "value"
        assert rec.timers["span"][1] == 2
        assert rec.timers["span"][0] >= 0.25
        snapshot = rec.snapshot()
        assert snapshot["counters"]["a"] == 5
        assert snapshot["timers"]["span"]["count"] == 2
        assert snapshot["events"] == 1

    def test_report_renders_counters_and_timers(self):
        rec = MetricsRecorder()
        rec.count("engine.runs", 7)
        rec.add_time("run_many", 0.5)
        text = report(rec).render()
        assert "engine.runs" in text
        assert "7" in text
        assert "run_many" in text
        # A NullRecorder reports an empty (but renderable) table.
        assert "metric" in report(NULL_RECORDER).render()


# ----------------------------------------------------------------------
# Zero interference: identical results, identical RNG consumption
# ----------------------------------------------------------------------


class TestZeroInterference:
    def test_observing_consumes_no_extra_rng(self):
        game = random_game(6, 3, seed=5)
        start = random_configuration(game, seed=6)
        rng_null = np.random.default_rng(7)
        plain = LearningEngine().run(game, start, seed=rng_null)
        rng_obs = np.random.default_rng(7)
        with observe(MetricsRecorder()):
            observed = LearningEngine().run(game, start, seed=rng_obs)
        assert rng_null.bit_generator.state == rng_obs.bit_generator.state
        assert observed.final == plain.final
        assert observed.length == plain.length

    def test_observing_changes_no_run_many_result(self):
        cells = [RunSpec(game=random_game(6, 3, seed=1), runs=4, seed=11)]
        plain = run_many(cells, executor="auto")
        with observe(MetricsRecorder()):
            observed = run_many(cells, executor="auto")
        assert observed == plain


# ----------------------------------------------------------------------
# Counter accounting across executors
# ----------------------------------------------------------------------


def _trajectory_cells():
    return [
        RunSpec(game=random_game(6, 3, seed=1), runs=5, seed=11),
        RunSpec(game=random_game(9, 2, seed=3), runs=4, seed=13),
    ]


class TestCounterAccounting:
    @pytest.mark.parametrize("mode", ["serial", "vectorized"])
    def test_engine_totals_match_trajectories(self, mode):
        cells = _trajectory_cells()
        with observe(MetricsRecorder()) as rec:
            results = run_many(cells, executor=mode, seed=3)
        runs = sum(cell.runs for cell in cells)
        steps = sum(summary.steps for cell in results for summary in cell)
        assert rec.counter("engine.runs") == runs
        assert rec.counter("engine.steps") == steps
        # Every run's loop scans once per step plus the final stable scan.
        assert rec.counter("engine.scans") == steps + runs

    @pytest.mark.parametrize("mode", ["serial", "vectorized"])
    def test_noisy_totals_match_results(self, mode):
        from repro.stochastic.noisy_engine import NoisyLearningEngine

        cells = [
            RunSpec(
                game=random_game(6, 3, seed=2),
                runs=5,
                kind="noisy",
                engine=NoisyLearningEngine(budget=8, max_activations=200),
                seed=17,
            )
        ]
        with observe(MetricsRecorder()) as rec:
            results = run_many(cells, executor=mode, seed=4)
        flat = [r for cell in results for r in cell]
        assert rec.counter("noisy.runs") == len(flat)
        assert rec.counter("noisy.activations") == sum(r.activations for r in flat)
        assert rec.counter("noisy.moves") == sum(r.moves for r in flat)
        assert rec.counter("noisy.rounds_sampled") == sum(r.rounds_sampled for r in flat)

    def test_lane_counters_match_kernel_lane_per_game(self):
        game_int = Game.create(powers=[3, 2, 1], reward_values=[5, 3])
        # Coprime rewards so kernel gcd-normalization keeps the magnitude.
        game_float = Game.create(powers=[3, 2, 1], reward_values=[2**61, 3])
        game_exact = Game.create(powers=[2**62, 2, 1], reward_values=[5, 3])
        expected = {
            "int": kernel_lane(KernelGame(game_int)),
            "float": kernel_lane(KernelGame(game_float)),
            "exact": kernel_lane(KernelGame(game_exact)),
        }
        assert expected == {"int": "int", "float": "float", "exact": "exact"}

        cells = [
            RunSpec(game=game_int, runs=3, seed=21),
            RunSpec(game=game_float, runs=2, seed=22),
            RunSpec(game=game_exact, runs=2, seed=23),
        ]
        with observe(MetricsRecorder()) as rec:
            results = run_many(cells, executor="vectorized", seed=5)
        assert rec.counter("tensor.lane.int") == 3
        assert rec.counter("tensor.lane.float") == 2
        assert rec.counter("tensor.lane.exact") == 2
        assert rec.counter("tensor.buckets") >= 2  # exact lane bypasses buckets
        # The mixed population still converged everywhere, all executors equal.
        assert all(summary.converged for cell in results for summary in cell)
        # And the engine totals cover all lanes, scalar fallback included.
        assert rec.counter("engine.runs") == 7

    def test_run_many_route_counters(self):
        cells = _trajectory_cells()
        with observe(MetricsRecorder()) as rec:
            run_many(cells, executor="vectorized", seed=6)
        assert rec.counter("run_many.cells.vectorized") == len(cells)
        assert rec.counter("run_many.vectorized_jobs") == sum(c.runs for c in cells)
        events = [e for e in rec.events if e["event"] == "run_many.cell"]
        assert len(events) == len(cells)
        assert all(e["route"] == "vectorized" for e in events)

    def test_space_counters(self):
        space = ConfigSpace(random_game(4, 2, seed=8))
        with observe(MetricsRecorder()) as rec:
            codes = space.stable_codes()
        visited = space.orbit_count() if space.symmetry else space.size
        assert rec.counter("space.scans") == 1
        assert rec.counter("space.codes_visited") == visited
        assert rec.counter("space.equilibria") == len(codes)

        with observe(MetricsRecorder()) as rec:
            dag = space.dag_report()
        assert rec.counter("space.codes_visited") == dag.nodes_scanned

        with observe(MetricsRecorder()) as rec:
            space.four_cycle_witness()
        event = next(e for e in rec.events if e["event"] == "space.four_cycle")
        assert rec.counter("space.codes_visited") == event["visited"] <= space.size

    def test_stochastic_counters(self):
        game = random_game(5, 2, seed=9)
        config = random_configuration(game, seed=10)
        occupied = len({config.coin_of(m) for m in game.miners})
        with observe(MetricsRecorder()) as rec:
            sample_block_wins(game, config, rounds=10, seed=11)
        assert rec.counter("stochastic.races") == 10 * occupied
        assert rec.counter("stochastic.lottery_rounds") == 10
        with observe(MetricsRecorder()) as rec:
            estimate_payoffs(game, config, rounds=8, seed=12)
        assert rec.counter("stochastic.estimates") == 1

    def test_classes_counters_match_results(self):
        from repro.kernel.classes import ClassGame

        with observe(MetricsRecorder()) as rec:
            cgame = ClassGame.from_spec(
                [(1, None, 6_000), (4, (0, 1), 2_000)], rewards=[5, 3, 2]
            )
            results = run_many(
                [RunSpec(game=cgame, runs=5, kind="classes", seed=31)]
            )[0]
        compress = next(e for e in rec.events if e["event"] == "classes.compress")
        assert compress["miners"] == 8_000
        assert compress["classes"] == 2
        assert compress["ratio"] == 8_000 / 2
        assert rec.counter("classes.compressions") == 1
        assert rec.counter("classes.runs") == 5
        assert rec.counter("classes.steps") == sum(r.steps for r in results)
        assert rec.counter("classes.moves") == sum(r.moved for r in results)
        # Each run scanned once per step plus the final stable scan.
        assert rec.counter("classes.scans") == sum(r.steps for r in results) + 5
        assert rec.counter("classes.converged") == sum(r.converged for r in results) == 5
        assert rec.counter("run_many.cells.classes") == 1
        events = [e for e in rec.events if e["event"] == "run_many.cell"]
        assert [e["route"] for e in events] == ["classes"]

    def test_classes_observability_consumes_no_rng_and_changes_nothing(self):
        from repro.kernel.classes import ClassGame, run_class_better_response

        cgame = ClassGame.from_spec(
            [(1, None, 500), (3, None, 250)], rewards=[4, 3, 2]
        )
        start = cgame.random_counts(seed=41)

        rng_plain = np.random.default_rng(42)
        plain = run_class_better_response(cgame, start, seed=rng_plain, chunk=True)
        rng_observed = np.random.default_rng(42)
        with observe(MetricsRecorder()):
            observed = run_class_better_response(
                cgame, start, seed=rng_observed, chunk=True
            )
        assert observed.final == plain.final
        assert observed.steps == plain.steps
        assert observed.moved == plain.moved
        # Instrumentation consumed no draw: the generators end in the
        # exact same state, bit for bit.
        assert rng_observed.bit_generator.state == rng_plain.bit_generator.state

    def test_pool_degradation_counter(self, monkeypatch):
        from repro.kernel.batch import PooledRunner

        def explode(self, mode, workers):
            raise OSError("semaphores exhausted (simulated)")

        monkeypatch.setattr(PooledRunner, "_get_pool", explode)
        game = random_game(6, 2, seed=9)
        with observe(MetricsRecorder()) as rec:
            with pytest.warns(RuntimeWarning, match="running serially"):
                run_many(
                    [RunSpec(game=game, runs=8, seed=21)],
                    executor="process",
                    max_workers=2,
                )
        assert rec.counter("pool.degradations") == 1
        assert any(e["event"] == "pool.degraded" for e in rec.events)


# ----------------------------------------------------------------------
# Trace + manifest export
# ----------------------------------------------------------------------


class TestExport:
    def test_trace_writer_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(str(path)) as writer:
            writer.write("custom", value=np.int64(3), label="x")
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["event"] == "trace.open"
        assert records[1] == {"t": records[1]["t"], "event": "custom", "value": 3, "label": "x"}
        assert records[-1]["event"] == "trace.close"
        assert records[-1]["records"] == len(records) - 1
        writer.write("dropped")  # post-close writes are silently ignored
        assert len(path.read_text().strip().splitlines()) == len(lines)

    def test_metrics_recorder_forwards_events_to_trace(self):
        stream = io.StringIO()
        writer = TraceWriter(stream)
        rec = MetricsRecorder(trace=writer)
        rec.event("tick", n=1)
        events = [json.loads(line)["event"] for line in stream.getvalue().splitlines()]
        assert events == ["trace.open", "tick"]

    def test_environment_stamp_contents(self):
        stamp = environment_stamp()
        assert stamp["repro_version"] == repro.__version__
        assert stamp["numpy"] == np.__version__
        for key in ("python", "platform", "hostname", "git_sha"):
            assert key in stamp

    def test_manifest_roundtrip(self, tmp_path):
        rec = MetricsRecorder()
        rec.count("engine.runs", 3)
        rec.add_time("run_many", 0.5)
        manifest = RunManifest.from_recorder(
            rec, command="run E2", args={"fast": True}, seed=7,
            executor="serial", wall_seconds=1.25,
        )
        path = tmp_path / "manifest.json"
        manifest.write(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["command"] == "run E2"
        assert loaded["seed"] == 7
        assert loaded["counters"]["engine.runs"] == 3
        assert loaded["phases"]["run_many"]["count"] == 1
        assert loaded["environment"]["repro_version"] == repro.__version__


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCli:
    def test_run_with_metrics_and_trace(self, tmp_path):
        trace_path = tmp_path / "e02.jsonl"
        out = io.StringIO()
        code = cli_main(
            ["run", "E2", "--fast", "--metrics", "--trace", str(trace_path)],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "observability summary" in text
        assert str(trace_path) in text

        records = [
            json.loads(line) for line in trace_path.read_text().strip().splitlines()
        ]
        assert records[0]["event"] == "trace.open"
        assert records[-1]["event"] == "trace.close"
        assert any(r["event"] == "run_many.cell" for r in records)

        manifest = json.loads((tmp_path / "e02.jsonl.manifest.json").read_text())
        counters = manifest["counters"]
        # FAST_PARAMS: 2 sizes × 1 coin count × 3 policies × 3 runs.
        assert counters["engine.runs"] == 18
        assert counters["engine.scans"] == counters["engine.steps"] + counters["engine.runs"]
        assert manifest["environment"]["repro_version"] == repro.__version__
        assert manifest["wall_seconds"] > 0
        assert get_recorder() is NULL_RECORDER  # CLI restored the default

    def test_metrics_without_trace_prints_summary_only(self, tmp_path):
        out = io.StringIO()
        code = cli_main(["run", "E2", "--fast", "--metrics"], out=out)
        assert code == 0
        assert "observability summary" in out.getvalue()
        assert "manifest" not in out.getvalue()

    def test_verbosity_flags_parse(self):
        out = io.StringIO()
        assert cli_main(["-v", "list"], out=out) == 0
        root = logging.getLogger("repro")
        try:
            assert root.level == logging.INFO
        finally:
            for handler in list(root.handlers):
                if getattr(handler, "_repro_obs_handler", False):
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------


class TestLogging:
    def test_get_logger_names(self):
        assert get_logger().name == "repro"
        assert get_logger("kernel.batch").name == "repro.kernel.batch"

    def test_configure_logging_maps_verbosity_and_dedups(self):
        root = logging.getLogger("repro")
        try:
            stream = io.StringIO()
            assert configure_logging(-1, stream=stream).level == logging.ERROR
            assert configure_logging(0, stream=stream).level == logging.WARNING
            assert configure_logging(1, stream=stream).level == logging.INFO
            assert configure_logging(2, stream=stream).level == logging.DEBUG
            tagged = [
                h for h in root.handlers if getattr(h, "_repro_obs_handler", False)
            ]
            assert len(tagged) == 1  # repeated calls replace, never stack
            get_logger("test").debug("visible now")
            assert "visible now" in stream.getvalue()
        finally:
            for handler in list(root.handlers):
                if getattr(handler, "_repro_obs_handler", False):
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)


# ----------------------------------------------------------------------
# Satellites: deprecation stacklevels + bench tooling
# ----------------------------------------------------------------------


class TestDeprecationStacklevel:
    def test_resolve_execution_warning_points_at_direct_caller(self):
        with pytest.warns(DeprecationWarning, match="workers= is deprecated") as record:
            resolve_execution(workers=2)
        assert record[0].filename == __file__

    def test_resolve_batch_runner_warning_points_at_direct_caller(self):
        with pytest.warns(DeprecationWarning, match="resolve_batch_runner") as record:
            runner = resolve_batch_runner(workers=1)
        runner.close()
        assert record[0].filename == __file__

    def test_experiment_workers_warning_points_at_experiment_caller(self):
        with pytest.warns(DeprecationWarning, match="workers= is deprecated") as record:
            e02_convergence.run(
                miner_counts=(5,), coin_counts=(2,), runs_per_cell=1, workers=1
            )
        deprecations = [
            w for w in record if issubclass(w.category, DeprecationWarning)
        ]
        assert any(w.filename == __file__ for w in deprecations)


class TestBenchTooling:
    @staticmethod
    def _bench_json(tmp_path, name, mean, stamp):
        payload = {
            "benchmarks": [{"fullname": "bench_engine.py::test_x", "stats": {"mean": mean}}],
        }
        if stamp is not None:
            payload["repro_stamp"] = stamp
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    @staticmethod
    def _run(script, *args):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "benchmarks" / script), *args],
            capture_output=True,
            text=True,
        )

    def test_compare_refuses_cross_version_unless_forced(self, tmp_path):
        old = self._bench_json(
            tmp_path, "old.json", 0.010,
            {"repro_version": "1.2.0", "python": "3.12.0", "numpy": "2.0.0"},
        )
        new = self._bench_json(
            tmp_path, "new.json", 0.009,
            {"repro_version": "1.3.0", "python": "3.12.0", "numpy": "2.0.0"},
        )
        refused = self._run("compare.py", old, new)
        assert refused.returncode == 2
        assert "repro_version differs" in refused.stderr
        forced = self._run("compare.py", old, new, "--force")
        assert forced.returncode == 0
        assert "bench_engine" in forced.stdout

    def test_compare_warns_on_missing_stamp_but_proceeds(self, tmp_path):
        old = self._bench_json(tmp_path, "old.json", 0.010, None)
        new = self._bench_json(
            tmp_path, "new.json", 0.009,
            {"repro_version": "1.3.0", "python": "3.12.0", "numpy": "2.0.0"},
        )
        result = self._run("compare.py", old, new)
        assert result.returncode == 0
        assert "no repro_stamp" in result.stderr

    def test_overhead_guard_flags_regressions_and_skips_missing(self, tmp_path):
        stamp = {"repro_version": "1.3.0", "python": "3.12.0", "numpy": "2.0.0"}
        base = self._bench_json(tmp_path, "base.json", 0.010, stamp)
        slow = self._bench_json(tmp_path, "slow.json", 0.011, stamp)
        ok = self._bench_json(tmp_path, "ok.json", 0.0102, stamp)

        failed = self._run("overhead_guard.py", base, slow, "--tolerance", "0.03")
        assert failed.returncode == 1
        assert "REGRESSION" in failed.stdout

        passed = self._run("overhead_guard.py", base, ok, "--tolerance", "0.03")
        assert passed.returncode == 0
        assert "within budget" in passed.stdout

        skipped = self._run(
            "overhead_guard.py", str(tmp_path / "missing.json"), ok
        )
        assert skipped.returncode == 0
        assert "skipping" in skipped.stdout


class TestClobberGuards:
    def test_trace_writer_refuses_existing_path(self, tmp_path):
        from repro.obs import TraceWriter

        path = str(tmp_path / "trace.jsonl")
        TraceWriter(path).close()
        with pytest.raises(FileExistsError, match="already exists"):
            TraceWriter(path)
        writer = TraceWriter(path, force=True)
        writer.close()
        assert writer.records >= 1

    def test_manifest_refuses_existing_path_with_force_false(self, tmp_path):
        from repro.obs import MetricsRecorder, RunManifest

        manifest = RunManifest.from_recorder(
            MetricsRecorder(), command="test", args={}, seed=0,
            executor="serial", wall_seconds=0.0,
        )
        path = str(tmp_path / "run.manifest.json")
        manifest.write(path, force=False)
        with pytest.raises(FileExistsError, match="already exists"):
            manifest.write(path, force=False)
        # Library default stays permissive (force=True).
        manifest.write(path)
