"""Tests for the multiplicative-weights baseline."""

import numpy as np
import pytest

from repro.core.factories import random_configuration, random_game
from repro.learning.regret import MultiplicativeWeightsLearner


class TestMwu:
    def test_runs_and_records(self):
        game = random_game(5, 2, seed=0)
        result = MultiplicativeWeightsLearner().run(game, 50, seed=1)
        assert result.rounds == 50
        assert len(result.configurations) == 50

    def test_strategies_are_distributions(self):
        game = random_game(6, 3, seed=2)
        result = MultiplicativeWeightsLearner().run(game, 30, seed=3)
        sums = result.final_strategies.sum(axis=1)
        assert np.allclose(sums, 1.0)
        assert (result.final_strategies >= 0).all()

    def test_reproducible(self):
        game = random_game(4, 2, seed=4)
        a = MultiplicativeWeightsLearner().run(game, 20, seed=7)
        b = MultiplicativeWeightsLearner().run(game, 20, seed=7)
        assert a.configurations == b.configurations

    def test_initial_bias(self):
        game = random_game(4, 2, seed=5)
        start = random_configuration(game, seed=6)
        result = MultiplicativeWeightsLearner().run(game, 5, seed=8, initial=start)
        assert result.rounds == 5

    def test_dominant_coin_attracts_weight(self):
        # One coin pays 1000× the other: every miner's strategy must
        # tilt toward it after enough rounds.
        from repro.core.coin import RewardFunction
        from repro.core.game import Game

        game = Game.create([5, 4, 3, 2], [1000, 1])
        learner = MultiplicativeWeightsLearner(step_size=1.0)
        result = learner.run(game, 200, seed=9)
        # Column 0 is the heavy coin.
        assert (result.final_strategies[:, 0] > 0.5).mean() >= 0.75

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="step_size"):
            MultiplicativeWeightsLearner(step_size=0)
        with pytest.raises(ValueError, match="stability_window"):
            MultiplicativeWeightsLearner(stability_window=0)
        game = random_game(3, 2, seed=0)
        with pytest.raises(ValueError, match="rounds"):
            MultiplicativeWeightsLearner().run(game, 0)
