"""Tests for the equilibrium toolkit (Appendix A, Lemma 2)."""

import pytest

from repro.core.assumptions import check_never_alone
from repro.core.configuration import Configuration
from repro.core.equilibrium import (
    best_insertion_coin,
    enumerate_equilibria,
    equilibrium_payoff_spread,
    greedy_equilibrium,
    iter_equilibria,
    two_distinct_equilibria,
)
from repro.core.factories import random_game
from repro.core.game import Game
from repro.exceptions import InvalidModelError


class TestGreedyEquilibrium:
    @pytest.mark.parametrize("seed", range(10))
    def test_always_stable(self, seed):
        game = random_game(7, 3, seed=seed)
        assert game.is_stable(greedy_equilibrium(game))

    def test_single_miner_takes_best_coin(self):
        game = Game.create([5], [2, 9, 4])
        equilibrium = greedy_equilibrium(game)
        assert equilibrium.coin_of(game.miners[0]) == game.coin_named("c2")

    def test_deterministic(self):
        game = random_game(6, 3, seed=3)
        assert greedy_equilibrium(game) == greedy_equilibrium(game)

    def test_heavy_coin_attracts_heavy_miner(self):
        # One dominant coin: the largest miner must sit on it.
        game = Game.create([10, 1, 1], [1000, 1])
        equilibrium = greedy_equilibrium(game)
        assert equilibrium.coin_of(game.miners[0]) == game.coin_named("c1")


class TestBestInsertionCoin:
    def test_empty_state_picks_max_reward(self):
        game = Game.create([3], [1, 7, 2])
        assert best_insertion_coin(game, None, game.miners[0]) == game.coin_named("c2")

    def test_crowding_pushes_to_other_coin(self):
        game = Game.create([10, 1], [10, 9])
        p1, p2 = game.miners
        partial = Configuration([p1], [game.coin_named("c1")])
        # Joining c1 yields 10·1/11 < 9·1/1 on c2.
        assert best_insertion_coin(game, partial, p2) == game.coin_named("c2")


class TestEnumeration:
    def test_matches_stability_predicate(self):
        game = random_game(5, 2, seed=1)
        listed = set(enumerate_equilibria(game))
        for config in game.all_configurations():
            assert (config in listed) == game.is_stable(config)

    def test_iter_matches_list(self):
        game = random_game(4, 2, seed=2)
        assert list(iter_equilibria(game)) == enumerate_equilibria(game)

    def test_limit_guard(self):
        game = random_game(30, 3, seed=0)
        with pytest.raises(InvalidModelError, match="limit"):
            enumerate_equilibria(game, limit=1000)

    def test_at_least_one_equilibrium_exists(self):
        # Proposition 3: every game has a pure equilibrium.
        for seed in range(5):
            game = random_game(5, 2, seed=seed)
            assert enumerate_equilibria(game), f"no equilibrium for seed {seed}"


class TestTwoDistinctEquilibria:
    def test_produces_two_stable_distinct(self):
        for seed in range(30):
            game = random_game(8, 2, seed=seed, ensure_generic=True)
            if not check_never_alone(game, exhaustive_limit=300):
                continue
            first, second = two_distinct_equilibria(game)
            assert first != second
            assert game.is_stable(first)
            assert game.is_stable(second)
            return
        pytest.skip("no A1-satisfying game found in 30 seeds")

    def test_needs_two_miners(self):
        game = Game.create([1], [1, 1])
        with pytest.raises(InvalidModelError, match="two miners"):
            two_distinct_equilibria(game)

    def test_needs_two_coins(self):
        game = Game.create([2, 1], [1])
        with pytest.raises(InvalidModelError, match="two coins"):
            two_distinct_equilibria(game)


class TestPayoffSpread:
    def test_spread_bounds(self):
        game = random_game(5, 2, seed=4)
        equilibria = enumerate_equilibria(game)
        low, high = equilibrium_payoff_spread(game, equilibria)
        assert low <= high

    def test_empty_rejected(self):
        game = random_game(3, 2, seed=0)
        with pytest.raises(InvalidModelError):
            equilibrium_payoff_spread(game, [])
