"""Tests for the public reward-design auditors."""

import pytest

from repro.core.equilibrium import greedy_equilibrium
from repro.core.factories import random_game
from repro.design.reward_design import stage_rewards
from repro.design.stages import intermediate_configuration
from repro.design.verification import (
    audit_stage_design,
    check_feasible,
    check_unique_mover,
)


def _stage_setup(seed=2):
    game = random_game(5, 3, seed=seed)
    target = greedy_equilibrium(game)
    for stage in range(2, len(game.miners) + 1):
        config = intermediate_configuration(game, target, stage - 1)
        if config != intermediate_configuration(game, target, stage):
            return game, target, stage, config
    pytest.skip("all stages trivial for this target")


class TestFeasibility:
    def test_paper_mode_flags_empty_coins(self):
        game, target, stage, config = _stage_setup()
        designed = stage_rewards(game, target, stage, config, mode="paper")
        problems = check_feasible(game, designed)
        empty_coins = [c for c in game.coins if game.coin_power(c, config) == 0]
        assert len(problems) >= len(empty_coins)

    def test_feasible_mode_passes(self):
        game, target, stage, config = _stage_setup()
        designed = stage_rewards(game, target, stage, config, mode="feasible")
        assert check_feasible(game, designed) == []


class TestFeasibleModeRepairsEq4:
    def test_feasible_designs_pass_the_full_audit(self):
        # The library's repair of the paper's Eq. 4 / Algorithm 1
        # inconsistency: feasible-mode designs satisfy H ≥ F AND keep
        # the mover unique and the anchor stable, at every stage.
        import itertools

        from repro.core.equilibrium import enumerate_equilibria
        from repro.design.mechanism import DynamicRewardDesign

        checked = 0
        for seed in range(4):
            game = random_game(6, 3, seed=seed)
            equilibria = enumerate_equilibria(game)
            target = equilibria[0]
            for stage in range(2, len(game.miners) + 1):
                config = intermediate_configuration(game, target, stage - 1)
                if config == intermediate_configuration(game, target, stage):
                    continue
                designed = stage_rewards(game, target, stage, config, mode="feasible")
                audit = audit_stage_design(game, target, stage, config, designed)
                assert audit.ok, (seed, stage, audit.problems)
                checked += 1
            # And the full mechanism needs no restarts.
            for s0, sf in itertools.permutations(equilibria[:2], 2):
                result = DynamicRewardDesign(mode="feasible").run(game, s0, sf, seed=5)
                assert result.success
                assert result.restarts == 0
        assert checked >= 5


class TestStageAudit:
    def test_paper_design_satisfies_lemma1_entry(self):
        game, target, stage, config = _stage_setup()
        designed = stage_rewards(game, target, stage, config, mode="paper")
        audit = audit_stage_design(game, target, stage, config, designed)
        assert audit.unique_mover, audit.problems
        assert audit.anchor_holds, audit.problems
        # Paper mode is intentionally infeasible on empty coins.
        if any(game.coin_power(c, config) == 0 for c in game.coins):
            assert not audit.feasible

    def test_broken_design_is_caught(self):
        game, target, stage, config = _stage_setup()
        # Sabotage: boost the destination far beyond the anchor bound so
        # every miner wants in — the unique-mover condition must fail.
        from repro.design.stages import ordered_miners

        destination = target.coin_of(ordered_miners(game)[stage - 1])
        broken = game.rewards.replacing(
            {destination: game.rewards.total() * game.total_power()}
        )
        audit = audit_stage_design(game, target, stage, config, broken)
        assert not audit.ok
        assert audit.problems

    def test_unique_mover_reports_wrong_name(self):
        game, target, stage, config = _stage_setup()
        designed = stage_rewards(game, target, stage, config, mode="paper")
        from repro.design.stages import ordered_miners

        destination = target.coin_of(ordered_miners(game)[stage - 1])
        problems = check_unique_mover(
            game, designed, config, "nonexistent-miner", destination
        )
        assert problems
