"""Tests for the better-response learning engine."""

import pytest

from repro.core.equilibrium import greedy_equilibrium
from repro.core.factories import random_configuration, random_game
from repro.exceptions import ConvergenceError
from repro.learning.engine import LearningEngine, converge
from repro.learning.policies import BetterResponsePolicy, MinimalGainPolicy
from repro.learning.schedulers import SmallestFirstScheduler


class TestConvergence:
    @pytest.mark.parametrize("seed", range(5))
    def test_converges_to_stable(self, seed):
        game = random_game(8, 3, seed=seed)
        engine = LearningEngine()
        trajectory = engine.run(game, random_configuration(game, seed=seed), seed=seed)
        assert trajectory.converged
        assert game.is_stable(trajectory.final)

    def test_starting_at_equilibrium_takes_zero_steps(self):
        game = random_game(6, 2, seed=1)
        equilibrium = greedy_equilibrium(game)
        trajectory = LearningEngine().run(game, equilibrium, seed=0)
        assert trajectory.length == 0
        assert trajectory.final == equilibrium

    def test_every_step_improves_the_mover(self):
        game = random_game(7, 3, seed=2)
        trajectory = LearningEngine().run(
            game, random_configuration(game, seed=3), seed=4
        )
        for step in trajectory.steps:
            assert step.gain > 0

    def test_trajectory_configurations_are_consistent(self):
        game = random_game(5, 2, seed=5)
        trajectory = LearningEngine(record_configurations=True).run(
            game, random_configuration(game, seed=6), seed=7
        )
        for index, step in enumerate(trajectory.steps):
            before = trajectory.configurations[index]
            after = trajectory.configurations[index + 1]
            assert before.move(step.miner, step.target) == after

    def test_record_configurations_off_keeps_endpoints(self):
        game = random_game(6, 3, seed=8)
        start = random_configuration(game, seed=9)
        trajectory = LearningEngine(record_configurations=False).run(game, start, seed=10)
        assert trajectory.initial == start
        assert game.is_stable(trajectory.final)
        assert len(trajectory.configurations) <= 2

    def test_adversarial_learner_still_converges(self):
        game = random_game(10, 3, seed=11)
        engine = LearningEngine(
            policy=MinimalGainPolicy(), scheduler=SmallestFirstScheduler()
        )
        trajectory = engine.run(game, random_configuration(game, seed=12), seed=13)
        assert trajectory.converged


class TestBudget:
    def test_budget_exhaustion_raises(self):
        game = random_game(10, 3, seed=0)
        # Find a start that needs more than 1 step.
        start = random_configuration(game, seed=1)
        if len(game.unstable_miners(start)) == 0:
            pytest.skip("start happened to be stable")
        engine = LearningEngine(max_steps=0)
        with pytest.raises(ConvergenceError, match="did not converge"):
            engine.run(game, start, seed=2)

    def test_budget_exhaustion_can_be_soft(self):
        game = random_game(10, 3, seed=0)
        start = random_configuration(game, seed=1)
        if len(game.unstable_miners(start)) == 0:
            pytest.skip("start happened to be stable")
        engine = LearningEngine(max_steps=1, raise_on_budget=False)
        trajectory = engine.run(game, start, seed=2)
        assert not trajectory.converged or game.is_stable(trajectory.final)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_steps"):
            LearningEngine(max_steps=-1)


class TestContractEnforcement:
    def test_non_improving_policy_detected(self):
        class SabotagePolicy(BetterResponsePolicy):
            name = "sabotage"

            def choose(self, game, config, miner, rng):
                # Return the miner's own coin's worst alternative:
                # deliberately pick a non-improving move when possible.
                current = config.coin_of(miner)
                for coin in game.coins:
                    if coin != current and not game.is_better_response(
                        miner, coin, config
                    ):
                        return coin
                return game.best_response(miner, config)

        game = random_game(8, 3, seed=3)
        start = random_configuration(game, seed=4)
        engine = LearningEngine(policy=SabotagePolicy())
        with pytest.raises(ConvergenceError, match="non-improving"):
            engine.run(game, start, seed=5)


def test_converge_helper_returns_equilibrium():
    game = random_game(6, 2, seed=14)
    final = converge(game, random_configuration(game, seed=15), seed=16)
    assert game.is_stable(final)
