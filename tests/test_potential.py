"""Tests for potential functions: ordinal, symmetric, exact refutation."""

from fractions import Fraction

import pytest

from repro.core.configuration import Configuration
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.core.potential import (
    compare_potential,
    exact_potential_cycle_defect,
    find_nonzero_four_cycle,
    is_strictly_increasing_along,
    potential_rank,
    proposition1_counterexample,
    rpu_list,
    symmetric_potential,
)
from repro.exceptions import InvalidModelError
from repro.learning.engine import LearningEngine


class TestProposition1:
    def test_paper_defect_is_two_thirds(self):
        _, defect = proposition1_counterexample()
        assert defect == Fraction(2, 3)

    def test_witness_search_finds_cycle(self):
        game, _ = proposition1_counterexample()
        witness = find_nonzero_four_cycle(game)
        assert witness is not None
        assert witness[5] != 0

    def test_single_miner_game_has_exact_potential(self):
        # With one miner there are no two-player 4-cycles at all, so the
        # search must return None (the game trivially has an exact
        # potential: the miner's own payoff).
        game = Game.create([3], [5, 2])
        assert find_nonzero_four_cycle(game) is None

    def test_cycle_requires_distinct_miners(self):
        game, _ = proposition1_counterexample()
        p1 = game.miners[0]
        c1, c2 = game.coins
        start = Configuration(game.miners, [c1, c1])
        with pytest.raises(InvalidModelError, match="distinct"):
            exact_potential_cycle_defect(game, start, p1, c2, p1, c2)


class TestRpuList:
    def test_sorted_ascending(self):
        game = Game.create([2, 1], [1, 1])
        c1 = game.coins[0]
        config = Configuration(game.miners, [c1, c1])
        entries = rpu_list(game, config)
        # c1 occupied with RPU 1/3; c2 empty (sorted last).
        assert entries[0][0] == Fraction(1, 3)
        assert entries[1][0] is None

    def test_ties_broken_by_coin_index(self):
        game = Game.create([1, 1], [1, 1])
        c1, c2 = game.coins
        config = Configuration(game.miners, [c1, c2])
        entries = rpu_list(game, config)
        assert entries[0][1] == 0 and entries[1][1] == 1


class TestComparePotential:
    def test_better_response_step_increases(self):
        game = Game.create([2, 1], [1, 1])
        c1, c2 = game.coins
        s1 = Configuration(game.miners, [c1, c1])
        s2 = s1.move(game.miners[1], c2)
        assert compare_potential(game, s1, s2) == -1
        assert compare_potential(game, s2, s1) == 1

    def test_equal_configurations(self):
        game = random_game(4, 2, seed=0)
        config = random_configuration(game, seed=1)
        assert compare_potential(game, config, config) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_monotone_along_random_trajectories(self, seed):
        game = random_game(6, 3, seed=seed)
        engine = LearningEngine(record_configurations=True)
        trajectory = engine.run(
            game, random_configuration(game, seed=seed + 50), seed=seed
        )
        assert is_strictly_increasing_along(game, trajectory.configurations)


class TestPotentialRank:
    def test_rank_orders_match_compare(self):
        game = Game.create([2, 1], [3, 1])
        configs = list(game.all_configurations())
        for a in configs:
            for b in configs:
                ranks = potential_rank(game, a) - potential_rank(game, b)
                cmp = compare_potential(game, a, b)
                if cmp == 0:
                    assert ranks == 0
                else:
                    assert (ranks < 0) == (cmp < 0)

    def test_rank_is_positive_int(self):
        game = Game.create([2, 1], [1, 2])
        config = next(game.all_configurations())
        assert potential_rank(game, config) >= 1


class TestSymmetricPotential:
    def test_requires_constant_rewards(self):
        game = Game.create([1, 2], [1, 2])
        config = random_configuration(game, seed=0)
        with pytest.raises(InvalidModelError, match="equal"):
            symmetric_potential(game, config)

    def test_decreases_for_moves_between_occupied_coins(self):
        # Proposition 4: H(s) = Σ 1/M_c strictly decreases — valid for
        # moves whose target is occupied (see the docstring caveat).
        game = Game.create([3, 2, 1], [1, 1])
        c1, c2 = game.coins
        p3 = game.miners[2]
        s = Configuration(game.miners, [c1, c2, c1])  # both coins occupied
        assert game.is_better_response(p3, c2, s)
        moved = s.move(p3, c2)
        assert symmetric_potential(game, moved) < symmetric_potential(game, s)

    def test_can_increase_for_moves_into_empty_coins(self):
        # The documented caveat, pinned as behaviour: a move into an
        # empty coin adds a fresh 1/m_p term.
        game = Game.create([2, 1], [1, 1])
        c1, c2 = game.coins
        s1 = Configuration(game.miners, [c1, c1])
        s2 = s1.move(game.miners[1], c2)
        assert symmetric_potential(game, s2) > symmetric_potential(game, s1)

    @pytest.mark.parametrize("seed", range(5))
    def test_decreases_on_random_symmetric_games(self, seed):
        from repro.core.coin import RewardFunction

        base = random_game(6, 3, seed=seed)
        game = base.with_rewards(RewardFunction.constant(base.coins, 10))
        engine = LearningEngine(record_configurations=True)
        trajectory = engine.run(
            game, random_configuration(game, seed=seed + 9), seed=seed
        )
        for i, step in enumerate(trajectory.steps):
            before = trajectory.configurations[i]
            after = trajectory.configurations[i + 1]
            if game.coin_power(step.target, before) > 0:
                assert symmetric_potential(game, after) < symmetric_potential(
                    game, before
                )
