"""Tests for the exact-arithmetic conversion layer."""

from fractions import Fraction

import pytest

from repro._numeric import as_float, to_fraction, to_positive_fraction


class TestToFraction:
    def test_int_converts_exactly(self):
        assert to_fraction(7) == Fraction(7)

    def test_fraction_passes_through(self):
        value = Fraction(3, 7)
        assert to_fraction(value) is value

    def test_float_converts_exactly(self):
        # 0.1 is not 1/10 in binary; the conversion must preserve the
        # float's true value, not the decimal literal.
        assert to_fraction(0.5) == Fraction(1, 2)
        assert to_fraction(0.1) == Fraction(0.1)
        assert to_fraction(0.1) != Fraction(1, 10)

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            to_fraction(True)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            to_fraction(float("nan"))

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf")])
    def test_infinite_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            to_fraction(bad)

    def test_string_rejected_with_name(self):
        with pytest.raises(TypeError, match="power"):
            to_fraction("10", name="power")


class TestToPositiveFraction:
    def test_positive_ok(self):
        assert to_positive_fraction(3) == Fraction(3)

    @pytest.mark.parametrize("bad", [0, -1, -0.5, Fraction(0)])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="strictly positive"):
            to_positive_fraction(bad)

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="reward"):
            to_positive_fraction(-1, name="reward")


def test_as_float():
    assert as_float(Fraction(1, 2)) == 0.5
    assert as_float(3) == 3.0
