"""Parity: the mask-aware enumeration engine vs the restricted brute force.

The differential test wall behind the masked :class:`ConfigSpace`: on
dozens of random games × random per-miner allowed-coin masks (plus
hand-built symmetric and hardware-partition cases), every answer the
mask-aware space engine gives — restricted equilibria, sink sets,
acyclicity verdicts, longest legal paths, 4-cycle witnesses, reachable
equilibria — must be *identical* (content and order) to the Fraction
brute force over :class:`~repro.core.restricted.RestrictedGame`,
including after orbit expansion under power-*and*-mask symmetry
reduction. A hypothesis sweep mirrors ``test_space_parity.py``'s, with
masks drawn alongside the games.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.paths import (
    analyze_improvement_dag,
    improvement_graph,
    is_acyclic,
    longest_improvement_path,
    reachable_equilibria,
    sink_configurations,
)
from repro.core.configuration import Configuration
from repro.core.equilibrium import enumerate_equilibria, iter_equilibria
from repro.core.factories import random_game
from repro.core.game import Game
from repro.core.potential import find_nonzero_four_cycle
from repro.core.restricted import RestrictedGame, greedy_restricted_equilibrium
from repro.exceptions import InvalidConfigurationError, InvalidModelError
from repro.kernel.space import ConfigSpace

# Random game × random mask cases: 4-miner then 5-miner games, coins
# alternating between 2 and 3 so both radices meet nontrivial masks.
RANDOM_CASES = [
    (4 if case < 36 else 5, 2 if case % 2 == 0 else 3, case)
    for case in range(60)
]

# Equal powers *and* equal masks on a block — symmetry must kick in —
# given as (powers, rewards, per-miner allowed coin-index sets).
SYMMETRIC_MASKED_GAMES = [
    ([3, 3, 3, 3], [7, 4], [(0, 1), (0, 1), (0,), (0,)]),
    ([2, 2, 2, 1, 1], [5, 3, 2], [(0, 2), (0, 2), (0, 2), (0, 1, 2), (0, 1, 2)]),
    ([1, 1, 1, 1, 1], [9, 2], [(0, 1), (0, 1), (0, 1), (0, 1), (1,)]),
    ([5, 5, 2, 2, 2, 1], [4, 8], [(0, 1), (0, 1), (1,), (1,), (1,), (0, 1)]),
    ([4, 4, 4, 4], [1, 1, 1], [(0, 2), (0, 2), (0, 2), (0, 2)]),
]


def _game(miners, coins, seed):
    return random_game(miners, coins, seed=seed)


def _restrict(game, seed):
    """A deterministic pseudo-random nonempty mask per miner."""
    rng = np.random.default_rng(seed)
    k = len(game.coins)
    allowed = {}
    for miner in game.miners:
        size = int(rng.integers(1, k + 1))
        indices = sorted(rng.choice(k, size=size, replace=False).tolist())
        allowed[miner] = [game.coins[j] for j in indices]
    return RestrictedGame(game, allowed)


def _masked_case(miners, coins, seed):
    game = _game(miners, coins, seed)
    return game, _restrict(game, seed + 10_000)


def _symmetric_masked(powers, rewards, masks):
    game = Game.create(powers, rewards)
    allowed = {
        miner: [game.coins[j] for j in mask]
        for miner, mask in zip(game.miners, masks)
    }
    return game, RestrictedGame(game, allowed)


class TestMaskedWalks:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[:10])
    def test_gray_walk_covers_valid_space_one_move_at_a_time(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        space = ConfigSpace(restricted)
        expected = sorted(
            space.code_of(config) for config in restricted.all_configurations()
        )
        codes = []
        previous = None
        for code, assign, mass in space.iter_gray():
            codes.append(code)
            assert mass == space.mass_of(assign)
            assert space.is_valid_assign(assign)
            current = list(assign)
            if previous is not None:
                changed = sum(1 for a, b in zip(previous, current) if a != b)
                assert changed == 1
            previous = current
        assert sorted(codes) == expected
        assert len(codes) == space.size == restricted.configuration_count()

    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[:10])
    def test_product_walk_is_the_restricted_scan_order(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        space = ConfigSpace(restricted)
        walked = [space.config_of(code) for code, _, _ in space.iter_product()]
        assert walked == list(restricted.all_configurations())
        codes = [code for code, _, _ in space.iter_product()]
        assert codes == sorted(codes)

    def test_masked_successors_stay_valid_and_invalid_code_raises(self):
        game, restricted = _masked_case(4, 3, 7)
        space = ConfigSpace(restricted)
        for code, assign, mass in space.iter_product():
            for child in space.successor_codes(code, assign, mass):
                assert space.is_valid_assign(space.decode(child))
        invalid = next(
            code
            for code in range(game.configuration_count())
            if not space.is_valid_assign(space.decode(code))
        )
        with pytest.raises(InvalidConfigurationError, match="mask"):
            space.successors(invalid)


class TestEquilibriumParity:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES)
    def test_enumerate_matches_restricted_fraction_scan(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        assert restricted.enumerate_equilibria(
            backend="space"
        ) == restricted.enumerate_equilibria(backend="exact")

    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[::6])
    def test_iter_matches_restricted_fraction_scan(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        assert list(restricted.iter_equilibria(backend="space")) == list(
            restricted.iter_equilibria(backend="exact")
        )

    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[::6])
    def test_allowed_mapping_equals_restricted_game(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        mask = restricted.allowed_map()
        assert enumerate_equilibria(game, allowed=mask) == restricted.enumerate_equilibria()
        assert list(iter_equilibria(game, allowed=mask)) == list(
            restricted.iter_equilibria()
        )

    @pytest.mark.parametrize("powers,rewards,masks", SYMMETRIC_MASKED_GAMES)
    def test_symmetric_masked_orbit_expansion_matches(self, powers, rewards, masks):
        game, restricted = _symmetric_masked(powers, rewards, masks)
        space = ConfigSpace(restricted)
        assert space.symmetry, "these games must trigger masked symmetry reduction"
        assert restricted.enumerate_equilibria(
            backend="space"
        ) == restricted.enumerate_equilibria(backend="exact")

    @pytest.mark.parametrize("powers,rewards,masks", SYMMETRIC_MASKED_GAMES)
    def test_masked_orbit_multiplicities_cover_the_valid_space(
        self, powers, rewards, masks
    ):
        _, restricted = _symmetric_masked(powers, rewards, masks)
        space = ConfigSpace(restricted)
        scanned = 0
        weighted = 0
        for assign, mass, multiplicity in space.iter_canonical():
            assert mass == space.mass_of(assign)
            assert space.is_valid_assign(assign)
            orbit = space.orbit_codes(assign)
            assert len(orbit) == multiplicity
            for member in orbit:
                assert space.is_valid_assign(space.decode(member))
            scanned += 1
            weighted += multiplicity
        assert scanned == space.orbit_count()
        assert weighted == space.size == restricted.configuration_count()

    def test_equal_power_different_mask_miners_are_not_merged(self):
        game = Game.create([2, 2, 2], [5, 3, 4])
        c = game.coins
        restricted = RestrictedGame(
            game,
            {
                game.miners[0]: [c[0], c[1]],
                game.miners[1]: [c[1], c[2]],
                game.miners[2]: [c[0], c[1]],
            },
        )
        space = ConfigSpace(restricted)
        # Miners 0 and 2 share power and mask; miner 1 must sit alone.
        assert space.has_symmetry
        assert space.orbit_count() < space.size
        assert restricted.enumerate_equilibria(
            backend="space"
        ) == restricted.enumerate_equilibria(backend="exact")


class TestDagParity:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[::4])
    def test_acyclicity_longest_path_and_sinks(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        graph = improvement_graph(restricted)
        analysis = analyze_improvement_dag(restricted, backend="space")
        assert analysis.acyclic == is_acyclic(graph)
        assert analysis.longest_path == longest_improvement_path(graph)
        assert list(analysis.sinks) == sink_configurations(graph)
        assert analysis.total_configurations == restricted.configuration_count()

    @pytest.mark.parametrize("powers,rewards,masks", SYMMETRIC_MASKED_GAMES)
    def test_symmetric_masked_dag_matches_full_graph(self, powers, rewards, masks):
        game, restricted = _symmetric_masked(powers, rewards, masks)
        graph = improvement_graph(restricted)
        analysis = analyze_improvement_dag(restricted, backend="space", symmetry=True)
        assert analysis.symmetry_reduced
        assert analysis.nodes_scanned < analysis.total_configurations
        assert analysis.acyclic == is_acyclic(graph)
        assert analysis.longest_path == longest_improvement_path(graph)
        # Expanded sinks come back in enumeration order, like the seed.
        assert list(analysis.sinks) == sink_configurations(graph)

    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[2::12])
    def test_exact_backend_agrees_with_space(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        exact = analyze_improvement_dag(restricted, backend="exact")
        space = analyze_improvement_dag(restricted, backend="space")
        assert (exact.acyclic, exact.longest_path, list(exact.sinks)) == (
            space.acyclic,
            space.longest_path,
            list(space.sinks),
        )

    def test_restriction_only_removes_edges(self):
        # The restricted longest path never exceeds the free one, and
        # every restricted equilibrium set contains the free equilibria
        # that happen to be mask-valid... the converse containment need
        # not hold, so only the path bound is asserted here.
        game, restricted = _masked_case(4, 3, 11)
        free = analyze_improvement_dag(game, backend="space", symmetry=False)
        masked = analyze_improvement_dag(restricted, backend="space")
        assert masked.longest_path <= free.longest_path


class TestReachabilityParity:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[1::6])
    def test_reachable_sinks_match_including_order(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        starts = list(restricted.all_configurations())
        start = starts[seed % len(starts)]
        assert reachable_equilibria(
            restricted, start, backend="space"
        ) == reachable_equilibria(restricted, start, backend="exact")

    def test_invalid_start_raises_on_both_backends(self):
        game = Game.create([4, 2, 1], [3, 5])
        restricted = RestrictedGame(
            game,
            {
                game.miners[0]: [game.coins[0]],
                game.miners[1]: list(game.coins),
                game.miners[2]: list(game.coins),
            },
        )
        invalid = Configuration(game.miners, [game.coins[1]] * 3)
        # Backend-identical failure: same exception type either way.
        with pytest.raises(InvalidConfigurationError):
            reachable_equilibria(restricted, invalid, backend="space")
        with pytest.raises(InvalidConfigurationError):
            reachable_equilibria(restricted, invalid, backend="exact")


class TestFourCycleParity:
    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[::3])
    def test_witness_identical_to_restricted_fraction_scan(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        fast = find_nonzero_four_cycle(restricted, backend="space")
        slow = find_nonzero_four_cycle(restricted, backend="exact")
        assert fast == slow

    def test_witness_deviations_are_legal(self):
        for seed in range(8):
            game, restricted = _masked_case(4, 3, seed + 90)
            witness = find_nonzero_four_cycle(restricted, backend="space")
            if witness is None:
                continue
            start, miner_a, coin_a, miner_b, coin_b, defect = witness
            restricted.validate_configuration(start)
            assert restricted.is_allowed(miner_a, coin_a)
            assert restricted.is_allowed(miner_b, coin_b)
            assert defect != 0

    def test_single_allowed_coin_each_has_no_witness(self):
        game = Game.create([4, 2], [3, 2])
        restricted = RestrictedGame(
            game,
            {game.miners[0]: [game.coins[0]], game.miners[1]: [game.coins[1]]},
        )
        assert find_nonzero_four_cycle(restricted, backend="space") is None
        assert find_nonzero_four_cycle(restricted, backend="exact") is None


class TestGreedyProperty:
    """The Appendix A construction meets the enumerated equilibrium set."""

    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[::4])
    def test_greedy_in_enumerated_set_iff_stable(self, miners, coins, seed):
        game, restricted = _masked_case(miners, coins, seed)
        greedy = greedy_restricted_equilibrium(restricted)
        equilibria = set(restricted.enumerate_equilibria(backend="space"))
        assert (greedy in equilibria) == restricted.is_stable(greedy)

    @pytest.mark.parametrize("seed", range(12))
    def test_greedy_always_lands_in_set_for_hardware_partitions(self, seed):
        # With disjoint hardware classes the game decomposes per class,
        # so Claim 6 applies within each class and greedy is stable —
        # and therefore always a member of the enumerated set.
        game = _game(5, 3, seed)
        rng = np.random.default_rng(seed + 77)
        coin_algorithms = {
            coin.name: "scrypt" if index % 2 else "sha256d"
            for index, coin in enumerate(game.coins)
        }
        miner_hardware = {
            miner.name: "scrypt" if rng.random() < 0.5 else "sha256d"
            for miner in game.miners
        }
        restricted = RestrictedGame.by_algorithm(
            game, coin_algorithms, miner_hardware
        )
        greedy = greedy_restricted_equilibrium(restricted)
        assert restricted.is_stable(greedy)
        assert greedy in set(restricted.enumerate_equilibria(backend="space"))


class TestTrivialMaskIdentity:
    """All-coins-allowed masks must collapse to the unmasked engine."""

    @pytest.mark.parametrize("miners,coins,seed", RANDOM_CASES[::10])
    def test_trivial_mask_normalizes_to_unmasked(self, miners, coins, seed):
        game = _game(miners, coins, seed)
        full = {miner: list(game.coins) for miner in game.miners}
        space = ConfigSpace(game, allowed=full)
        # Identical *code path*, not merely identical answers: the
        # normalized mask is None, so every unrestricted branch runs.
        assert not space.masked
        assert space._allowed_idx is None
        plain = ConfigSpace(game)
        assert space.size == plain.size
        assert space.stable_codes() == plain.stable_codes()
        report = space.dag_report()
        plain_report = plain.dag_report()
        assert report == plain_report

    def test_trivial_restricted_game_matches_free_enumeration(self):
        game = _game(4, 3, 17)
        restricted = RestrictedGame(
            game, {miner: list(game.coins) for miner in game.miners}
        )
        assert restricted.enumerate_equilibria(backend="space") == enumerate_equilibria(
            game, backend="space"
        )
        assert analyze_improvement_dag(restricted).sinks == analyze_improvement_dag(
            game
        ).sinks


class TestEdgeCases:
    def test_single_miner_game(self):
        game = Game.create([4], [3, 2, 5])
        restricted = RestrictedGame(game, {game.miners[0]: [game.coins[0], game.coins[2]]})
        assert restricted.enumerate_equilibria(
            backend="space"
        ) == restricted.enumerate_equilibria(backend="exact")
        analysis = analyze_improvement_dag(restricted)
        exact = analyze_improvement_dag(restricted, backend="exact")
        assert (analysis.acyclic, analysis.longest_path, list(analysis.sinks)) == (
            exact.acyclic,
            exact.longest_path,
            list(exact.sinks),
        )

    def test_single_coin_game(self):
        game = Game.create([4, 2, 1], [3])
        assert enumerate_equilibria(game, backend="space") == enumerate_equilibria(
            game, backend="exact"
        )
        analysis = analyze_improvement_dag(game, backend="space", symmetry=False)
        assert analysis.acyclic and analysis.longest_path == 0
        assert len(analysis.sinks) == 1

    def test_fully_pinned_mask_is_one_configuration(self):
        game = Game.create([4, 2, 1], [3, 5])
        restricted = RestrictedGame(
            game, {miner: [game.coins[0]] for miner in game.miners}
        )
        space = ConfigSpace(restricted)
        assert space.size == 1
        walked = [code for code, _, _ in space.iter_gray()]
        assert len(walked) == 1
        equilibria = restricted.enumerate_equilibria(backend="space")
        assert equilibria == restricted.enumerate_equilibria(backend="exact")
        assert len(equilibria) == 1  # nobody can move, so it is stable

    @pytest.mark.parametrize("powers,rewards,masks", SYMMETRIC_MASKED_GAMES[:3])
    def test_symmetry_on_off_agree_under_masks(self, powers, rewards, masks):
        _, restricted = _symmetric_masked(powers, rewards, masks)
        on = analyze_improvement_dag(restricted, backend="space", symmetry=True)
        off = analyze_improvement_dag(restricted, backend="space", symmetry=False)
        assert on.symmetry_reduced and not off.symmetry_reduced
        assert (on.acyclic, on.longest_path, list(on.sinks)) == (
            off.acyclic,
            off.longest_path,
            list(off.sinks),
        )
        space_on = ConfigSpace(restricted, symmetry=True)
        space_off = ConfigSpace(restricted, symmetry=False)
        assert space_on.stable_codes() == space_off.stable_codes()

    def test_max_codes_caps_the_expanded_result(self):
        # Equal powers and equal masks: few orbits, combinatorially
        # many equilibria — the cap must fire on the *expanded* count.
        game = Game.create([1] * 12, [5, 7])
        space = ConfigSpace(game)
        stable = space.stable_codes()
        assert len(stable) > 10
        with pytest.raises(InvalidModelError, match="scan limit"):
            space.stable_codes(max_codes=10)
        # A cap at the exact count passes untouched.
        assert space.stable_codes(max_codes=len(stable)) == stable

    def test_empty_mask_raises(self):
        game = Game.create([4, 2], [3, 2])
        with pytest.raises(InvalidModelError, match="at least one coin"):
            ConfigSpace(game, allowed={game.miners[0]: []})
        with pytest.raises(InvalidModelError, match="at least one coin"):
            RestrictedGame(game, {m: [] for m in game.miners})

    def test_unknown_miner_in_mask_raises_instead_of_running_unrestricted(self):
        game = Game.create([4, 2], [3, 2])
        stranger = Game.create([9, 8], [1, 1]).miners[0]
        with pytest.raises(InvalidModelError, match="not"):
            enumerate_equilibria(game, allowed={stranger: [game.coins[0]]})
        with pytest.raises(InvalidModelError, match="not"):
            analyze_improvement_dag(game, allowed={stranger: [game.coins[0]]})
        full = {miner: list(game.coins) for miner in game.miners}
        with pytest.raises(InvalidModelError, match="not"):
            RestrictedGame(game, {**full, stranger: [game.coins[0]]})

    def test_restricted_game_plus_allowed_mask_is_ambiguous(self):
        game = Game.create([4, 2], [3, 2])
        restricted = RestrictedGame(game, {m: list(game.coins) for m in game.miners})
        with pytest.raises(InvalidModelError, match="not both"):
            ConfigSpace(restricted, allowed={game.miners[0]: [game.coins[0]]})
        with pytest.raises(InvalidModelError, match="not both"):
            analyze_improvement_dag(
                restricted, allowed={game.miners[0]: [game.coins[0]]}
            )


# ---------------------------------------------------------------------------
# Hypothesis sweep: random games × random masks
# ---------------------------------------------------------------------------


@st.composite
def masked_games(draw):
    """A small exact-integer game plus a nonempty per-miner mask.

    Integer powers/rewards make equal-power (and thus symmetric-block)
    collisions likely, so the sweep exercises the orbit machinery too.
    """
    n = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=1, max_value=3))
    powers = draw(
        st.lists(st.integers(min_value=1, max_value=4), min_size=n, max_size=n)
    )
    rewards = draw(
        st.lists(st.integers(min_value=1, max_value=5), min_size=k, max_size=k)
    )
    masks = draw(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=k - 1), min_size=1, max_size=k),
            min_size=n,
            max_size=n,
        )
    )
    return powers, rewards, [sorted(mask) for mask in masks]


@settings(max_examples=60, deadline=None)
@given(masked_games())
def test_masked_space_parity_property(data):
    """Hypothesis: masked space answers equal the restricted Fraction
    brute force — equilibria (with order), DAG facts, and witnesses."""
    powers, rewards, masks = data
    game = Game.create(powers=powers, reward_values=rewards)
    restricted = RestrictedGame(
        game,
        {
            miner: [game.coins[j] for j in mask]
            for miner, mask in zip(game.miners, masks)
        },
    )
    assert restricted.enumerate_equilibria(
        backend="space"
    ) == restricted.enumerate_equilibria(backend="exact")
    space = analyze_improvement_dag(restricted, backend="space")
    exact = analyze_improvement_dag(restricted, backend="exact")
    assert space.acyclic and exact.acyclic  # Theorem 1 survives restriction
    assert space.longest_path == exact.longest_path
    assert list(space.sinks) == list(exact.sinks)
    assert find_nonzero_four_cycle(restricted, backend="space") == (
        find_nonzero_four_cycle(restricted, backend="exact")
    )


@settings(max_examples=25, deadline=None)
@given(masked_games(), st.integers(min_value=0, max_value=10_000))
def test_masked_reachability_property(data, pick):
    powers, rewards, masks = data
    game = Game.create(powers=powers, reward_values=rewards)
    restricted = RestrictedGame(
        game,
        {
            miner: [game.coins[j] for j in mask]
            for miner, mask in zip(game.miners, masks)
        },
    )
    starts = list(restricted.all_configurations())
    start = starts[pick % len(starts)]
    assert reachable_equilibria(
        restricted, start, backend="space"
    ) == reachable_equilibria(restricted, start, backend="exact")
