"""Tests for basin analysis and the manipulation planner."""

import pytest

from repro.analysis.basins import (
    basin_by_policy,
    basin_profile,
    expected_payoff_from_luck,
)
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.learning.policies import BestResponsePolicy, RandomImprovingPolicy
from repro.manipulation.planner import plan_manipulation


def _multi_equilibrium_game():
    for seed in range(20):
        game = random_game(6, 2, seed=seed)
        equilibria = enumerate_equilibria(game)
        if len(equilibria) >= 2:
            return game, equilibria
    raise AssertionError("no multi-equilibrium game found")


class TestBasinProfile:
    def test_frequencies_sum_to_one(self):
        game, _ = _multi_equilibrium_game()
        profile = basin_profile(game, samples=30, seed=0)
        assert sum(profile.frequencies.values()) == pytest.approx(1.0)

    def test_counts_are_raw_integers_summing_to_samples(self):
        game, _ = _multi_equilibrium_game()
        profile = basin_profile(game, samples=30, seed=0)
        assert all(isinstance(count, int) for count in profile.counts.values())
        assert sum(profile.counts.values()) == profile.samples == 30

    def test_exact_luck_baseline_from_counts(self):
        from fractions import Fraction

        from repro.analysis.basins import expected_payoff_from_luck

        game, _ = _multi_equilibrium_game()
        profile = basin_profile(game, samples=30, seed=0)
        miner = game.miners[0]
        expected = sum(
            (
                game.payoff(miner, eq) * Fraction(count, profile.samples)
                for eq, count in profile.counts.items()
            ),
            Fraction(0),
        )
        assert expected_payoff_from_luck(game, miner, profile) == expected

    def test_probability_of_empty_profile_is_zero(self):
        from repro.analysis.basins import BasinProfile

        game, _ = _multi_equilibrium_game()
        empty = BasinProfile(counts={}, samples=0)
        some_config = next(iter(game.all_configurations()))
        assert empty.probability_of(some_config) == 0.0

    def test_runner_counts_match_serial(self):
        # The BatchRunner path shares the serial loop's seeding scheme,
        # so the pooled profile must be identical for the same seed.
        import warnings

        from repro.kernel.batch import BatchRunner

        game, _ = _multi_equilibrium_game()
        serial = basin_profile(game, samples=20, seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with BatchRunner(executor="process", max_workers=2) as runner:
                pooled = basin_profile(game, samples=20, seed=5, runner=runner)
        assert pooled.counts == serial.counts
        assert pooled.samples == serial.samples

    def test_runner_backend_mismatch_rejected(self):
        from repro.kernel.batch import BatchRunner

        game, _ = _multi_equilibrium_game()
        with BatchRunner(backend="exact", executor="serial") as runner:
            with pytest.raises(ValueError, match="backend"):
                basin_profile(game, samples=5, backend="fast", runner=runner)

    def test_landing_points_are_equilibria(self):
        game, _ = _multi_equilibrium_game()
        profile = basin_profile(game, samples=20, seed=1)
        for config in profile.frequencies:
            assert game.is_stable(config)

    def test_dominant_has_max_frequency(self):
        game, _ = _multi_equilibrium_game()
        profile = basin_profile(game, samples=25, seed=2)
        _, frequency = profile.dominant()
        assert frequency == max(profile.frequencies.values())

    def test_entropy_bounds(self):
        game, _ = _multi_equilibrium_game()
        profile = basin_profile(game, samples=25, seed=3)
        import math

        assert 0.0 <= profile.entropy() <= math.log2(max(profile.distinct_equilibria, 2)) + 1e-9

    def test_probability_of_unseen_is_zero(self):
        game, equilibria = _multi_equilibrium_game()
        profile = basin_profile(game, samples=10, seed=4)
        unseen = [eq for eq in equilibria if eq not in profile.frequencies]
        for eq in unseen:
            assert profile.probability_of(eq) == 0.0

    def test_samples_validated(self):
        game, _ = _multi_equilibrium_game()
        with pytest.raises(ValueError):
            basin_profile(game, samples=0)

    def test_by_policy_keys(self):
        game, _ = _multi_equilibrium_game()
        profiles = basin_by_policy(
            game, (BestResponsePolicy(), RandomImprovingPolicy()), samples=10, seed=5
        )
        assert set(profiles) == {"best-response", "random-improving"}


class TestLuckBaseline:
    def test_luck_is_between_extremes(self):
        game, _ = _multi_equilibrium_game()
        profile = basin_profile(game, samples=30, seed=6)
        miner = game.miners[0]
        payoffs = [game.payoff(miner, eq) for eq in profile.frequencies]
        luck = expected_payoff_from_luck(game, miner, profile)
        assert min(payoffs) <= luck <= max(payoffs)


class TestPlanner:
    def test_plans_are_sorted_by_break_even(self):
        game, equilibria = _multi_equilibrium_game()
        beneficiary = max(game.miners, key=lambda m: m.power)
        # Find a start where the beneficiary can gain somewhere.
        report = None
        for start in equilibria:
            candidate = plan_manipulation(game, beneficiary, start, equilibria, seed=7)
            if candidate.plans:
                report = candidate
                break
        if report is None:
            pytest.skip("beneficiary already at its best equilibrium everywhere")
        break_evens = [
            plan.break_even_rounds
            for plan in report.plans
            if plan.break_even_rounds is not None
        ]
        assert break_evens == sorted(break_evens)

    def test_only_strict_gains_are_planned(self):
        game, equilibria = _multi_equilibrium_game()
        beneficiary = game.miners[-1]
        report = plan_manipulation(game, beneficiary, equilibria[0], equilibria, seed=8)
        for plan in report.plans:
            assert plan.gain_per_round > 0
            assert plan.cost > 0

    def test_worth_buying_monotone_in_horizon(self):
        game, equilibria = _multi_equilibrium_game()
        beneficiary = max(game.miners, key=lambda m: m.power)
        report = None
        for start in equilibria:
            candidate = plan_manipulation(game, beneficiary, start, equilibria, seed=9)
            if candidate.plans:
                report = candidate
                break
        if report is None:
            pytest.skip("no profitable plan for this game")
        # If it's worth buying at a short horizon, it stays worth buying.
        if report.worth_buying(1000):
            assert report.worth_buying(100_000)

    def test_net_value_formula(self):
        game, equilibria = _multi_equilibrium_game()
        beneficiary = max(game.miners, key=lambda m: m.power)
        for start in equilibria:
            report = plan_manipulation(game, beneficiary, start, equilibria, seed=10)
            if report.plans:
                plan = report.plans[0]
                assert plan.net_value_at(0) == -plan.cost
                horizon = 10
                assert plan.net_value_at(horizon) == plan.gain_per_round * horizon - plan.cost
                return
        pytest.skip("no profitable plan")
