"""Tests for coin-weight computation."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.coin import make_coins
from repro.exceptions import SimulationError
from repro.market.coins import bitcoin_spec
from repro.market.weights import WeightSeries, build_weight_series, weight_path


TIMES = np.arange(0.0, 10.0, 1.0)


class TestWeightPath:
    def test_formula(self):
        spec = bitcoin_spec(fees_per_block=2.5)  # 15 coins/block, 6 blocks/h
        rates = np.full(10, 100.0)
        fees = np.full(10, 2.5)
        path = weight_path(spec, rates, fees)
        assert path[0] == pytest.approx((12.5 + 2.5) * 100.0 * 6.0)

    def test_length_mismatch_rejected(self):
        spec = bitcoin_spec()
        with pytest.raises(SimulationError, match="lengths differ"):
            weight_path(spec, np.ones(3), np.ones(4))


class TestWeightSeries:
    def _series(self):
        spec = bitcoin_spec()
        rates = np.linspace(100.0, 200.0, 10)
        fees = np.zeros(10)
        return build_weight_series(TIMES, [(spec, rates, fees)])

    def test_at(self):
        series = self._series()
        snapshot = series.at(0)
        assert snapshot["BTC"] == pytest.approx(12.5 * 100.0 * 6.0)

    def test_reward_function_is_exact(self):
        series = self._series()
        coins = make_coins(["BTC"])
        rewards = series.reward_function(3, coins)
        assert rewards[coins[0]] == Fraction(float(series.weights["BTC"][3]))

    def test_reward_function_unknown_coin(self):
        series = self._series()
        coins = make_coins(["DOGE"])
        with pytest.raises(SimulationError, match="no weight path"):
            series.reward_function(0, coins)

    def test_ratio(self):
        spec = bitcoin_spec()
        series = build_weight_series(
            TIMES,
            [
                (spec, np.full(10, 100.0), np.zeros(10)),
                (bitcoin_spec(fees_per_block=0.0).__class__(
                    name="BCH", block_interval_s=600.0, block_subsidy=12.5
                ), np.full(10, 50.0), np.zeros(10)),
            ],
        )
        assert np.allclose(series.ratio("BCH", "BTC"), 0.5)

    def test_duplicate_coin_rejected(self):
        spec = bitcoin_spec()
        with pytest.raises(SimulationError, match="duplicate"):
            build_weight_series(
                TIMES,
                [(spec, np.ones(10), np.zeros(10)), (spec, np.ones(10), np.zeros(10))],
            )

    def test_nonpositive_weight_rejected(self):
        spec = bitcoin_spec()
        with pytest.raises(SimulationError, match="positive"):
            WeightSeries(times_h=TIMES, weights={"BTC": np.zeros(10)})

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError, match="points"):
            WeightSeries(times_h=TIMES, weights={"BTC": np.ones(3)})
