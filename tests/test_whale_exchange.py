"""Tests for the manipulation cost models (whale fees, price impact)."""

from fractions import Fraction

import pytest

from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.design.cost import CostLedger, PhaseCost
from repro.design.mechanism import DynamicRewardDesign
from repro.exceptions import SimulationError
from repro.manipulation.exchange import (
    PriceImpactModel,
    boost_factor_needed,
    exchange_cost_of_phase,
)
from repro.manipulation.whale import budget_from_ledger, manipulation_roi


def _executed_manipulation():
    for seed in range(20):
        game = random_game(6, 2, seed=seed)
        equilibria = enumerate_equilibria(game)
        if len(equilibria) < 2:
            continue
        result = DynamicRewardDesign().run(game, equilibria[0], equilibria[1], seed=3)
        return game, equilibria[0], equilibria[1], result
    raise AssertionError("no manipulation could be executed")


class TestWhaleBudget:
    def test_budget_matches_ledger(self):
        ledger = CostLedger()
        ledger.add(PhaseCost(stage=1, iteration=1, excess_per_round=Fraction(4), rounds=3))
        budget = budget_from_ledger(ledger)
        assert budget.total_excess == 12
        assert budget.fee_spend == 12
        assert budget.rounds == 3

    def test_rounds_per_block_scales(self):
        ledger = CostLedger()
        ledger.add(PhaseCost(stage=1, iteration=1, excess_per_round=Fraction(4), rounds=3))
        budget = budget_from_ledger(ledger, rounds_per_block=0.5)
        assert budget.fee_spend == 6

    def test_invalid_scale_rejected(self):
        with pytest.raises(SimulationError):
            budget_from_ledger(CostLedger(), rounds_per_block=0)


class TestRoi:
    def test_break_even_is_cost_over_gain(self):
        game, before, after, result = _executed_manipulation()
        # Find a real beneficiary.
        beneficiary = None
        for miner in game.miners:
            if game.payoff(miner, after) > game.payoff(miner, before):
                beneficiary = miner
                break
        if beneficiary is None:
            pytest.skip("no beneficiary in this pair (possible, rare)")
        roi = manipulation_roi(game, beneficiary, before, after, result.ledger)
        gain = game.payoff(beneficiary, after) - game.payoff(beneficiary, before)
        assert roi.gain_per_round == gain
        assert roi.break_even_rounds == pytest.approx(float(roi.cost / gain))

    def test_roi_at_horizon(self):
        game, before, after, result = _executed_manipulation()
        miner = game.miners[0]
        roi = manipulation_roi(game, miner, before, after, result.ledger)
        if roi.gain_per_round <= 0:
            assert roi.break_even_rounds is None
        else:
            horizon = int(roi.break_even_rounds) + 1
            assert roi.roi_at(horizon) > -1.0

    def test_loser_never_breaks_even(self):
        game, before, after, result = _executed_manipulation()
        loser = None
        for miner in game.miners:
            if game.payoff(miner, after) < game.payoff(miner, before):
                loser = miner
                break
        if loser is None:
            pytest.skip("no strict loser in this pair")
        roi = manipulation_roi(game, loser, before, after, result.ledger)
        assert roi.break_even_rounds is None


class TestPriceImpact:
    def test_cost_is_convex_in_factor(self):
        model = PriceImpactModel(depth=Fraction(100))
        assert model.cost_of_factor(1) == 0
        assert model.cost_of_factor(2) == 100
        assert model.cost_of_factor(3) == 400
        # Convexity: doubling the push more than doubles the cost.
        assert model.cost_of_factor(3) > 2 * model.cost_of_factor(2)

    def test_factor_below_one_rejected(self):
        model = PriceImpactModel(depth=Fraction(1))
        with pytest.raises(SimulationError, match="factor"):
            model.cost_of_factor(Fraction(1, 2))

    def test_depth_must_be_positive(self):
        with pytest.raises(SimulationError):
            PriceImpactModel(depth=Fraction(0))

    def test_boost_factor(self):
        assert boost_factor_needed(10, 30) == 3
        assert boost_factor_needed(10, 5) == 1, "never needs to lower a price"

    def test_phase_cost(self):
        model = PriceImpactModel(depth=Fraction(10))
        assert exchange_cost_of_phase(10, 20, 4, model) == 40
        assert exchange_cost_of_phase(10, 10, 4, model) == 0


class TestExactScaleConversion:
    """Regression: scales used to pass through ``limit_denominator(10**6)``,
    which silently rounded sub-microscale rationals — ``1/10**7`` became
    0 and the whole fee budget vanished. Conversion is now exact."""

    def _ledger(self):
        ledger = CostLedger()
        ledger.add(
            PhaseCost(stage=1, iteration=1, excess_per_round=Fraction(5), rounds=2)
        )
        return ledger

    def test_tiny_fraction_scale_survives_exactly(self):
        budget = budget_from_ledger(self._ledger(), rounds_per_block=Fraction(1, 10**7))
        assert budget.fee_spend == Fraction(10, 10**7)  # old code pinned this to 0

    def test_float_scale_converts_to_exact_dyadic(self):
        budget = budget_from_ledger(self._ledger(), rounds_per_block=0.1)
        # Fraction(0.1) is the float's exact binary value, not 1/10:
        # no denominator cap, no silent rounding.
        assert budget.fee_spend == 10 * Fraction(0.1)
        # Exact dyadic: a power-of-two denominator far past the old
        # 10**6 cap, not a "nice" capped approximation.
        denominator = budget.fee_spend.denominator
        assert denominator > 10**6
        assert denominator & (denominator - 1) == 0

    def test_tiny_float_scale_is_nonzero(self):
        budget = budget_from_ledger(self._ledger(), rounds_per_block=1e-7)
        assert budget.fee_spend == 10 * Fraction(1e-7)
        assert budget.fee_spend > 0

    def test_price_impact_depth_is_exact(self):
        from repro._numeric import to_fraction

        # The E8 market-depth knob goes through the same exact path.
        model = PriceImpactModel(depth=to_fraction(50.5, name="market_depth"))
        assert model.depth == Fraction(101, 2)
        deep = PriceImpactModel(depth=to_fraction(Fraction(10**9, 7), name="market_depth"))
        assert deep.depth == Fraction(10**9, 7)
