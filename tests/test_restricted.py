"""Tests for the asymmetric (restricted) game extension."""

import pytest

from repro.core.configuration import Configuration
from repro.core.factories import random_game
from repro.core.restricted import RestrictedGame
from repro.exceptions import InvalidConfigurationError, InvalidModelError
from repro.learning.restricted_engine import RestrictedLearningEngine


@pytest.fixture
def game():
    return random_game(6, 4, seed=3)


@pytest.fixture
def restricted(game):
    # Even-indexed coins are sha256d, odd are scrypt; miners alternate.
    coin_algorithms = {
        coin.name: ("sha256d" if index % 2 == 0 else "scrypt")
        for index, coin in enumerate(game.coins)
    }
    miner_hardware = {
        miner.name: ("sha256d" if index % 2 == 0 else "scrypt")
        for index, miner in enumerate(game.miners)
    }
    return RestrictedGame.by_algorithm(game, coin_algorithms, miner_hardware)


def _legal_start(restricted, pick=0):
    assignment = {
        miner: restricted.allowed_coins(miner)[pick % len(restricted.allowed_coins(miner))]
        for miner in restricted.miners
    }
    return Configuration.from_mapping(restricted.miners, assignment)


class TestConstruction:
    def test_allowed_sets_follow_hardware(self, game, restricted):
        for index, miner in enumerate(game.miners):
            algorithm = "sha256d" if index % 2 == 0 else "scrypt"
            expected = {
                coin
                for i, coin in enumerate(game.coins)
                if ("sha256d" if i % 2 == 0 else "scrypt") == algorithm
            }
            assert set(restricted.allowed_coins(miner)) == expected

    def test_every_miner_needs_an_option(self, game):
        coin_algorithms = {coin.name: "sha256d" for coin in game.coins}
        miner_hardware = {miner.name: "scrypt" for miner in game.miners}
        with pytest.raises(InvalidModelError, match="at least one"):
            RestrictedGame.by_algorithm(game, coin_algorithms, miner_hardware)

    def test_missing_miner_rejected(self, game):
        with pytest.raises(InvalidModelError, match="misses"):
            RestrictedGame(game, {game.miners[0]: [game.coins[0]]})

    def test_unknown_coin_rejected(self, game):
        from repro.core.coin import Coin

        allowed = {miner: [game.coins[0]] for miner in game.miners}
        allowed[game.miners[0]] = [Coin("DOGE")]
        with pytest.raises(InvalidModelError, match="unknown coin"):
            RestrictedGame(game, allowed)

    def test_missing_hardware_class_rejected(self, game):
        coin_algorithms = {coin.name: "sha256d" for coin in game.coins}
        with pytest.raises(InvalidModelError, match="hardware"):
            RestrictedGame.by_algorithm(game, coin_algorithms, {})


class TestStrategicStructure:
    def test_moves_are_subset_of_unrestricted(self, game, restricted):
        config = _legal_start(restricted)
        for miner in game.miners:
            legal = set(restricted.better_response_moves(miner, config))
            free = set(game.better_response_moves(miner, config))
            assert legal <= free
            assert all(restricted.is_allowed(miner, coin) for coin in legal)

    def test_validate_rejects_illegal_configuration(self, game, restricted):
        miner = game.miners[0]
        forbidden = next(
            coin for coin in game.coins if not restricted.is_allowed(miner, coin)
        )
        config = _legal_start(restricted).move(miner, forbidden)
        with pytest.raises(InvalidConfigurationError, match="cannot mine"):
            restricted.validate_configuration(config)

    def test_stability_is_relative_to_restriction(self, game, restricted):
        # A restricted-stable configuration need not be free-stable, but
        # a free-stable legal configuration is restricted-stable.
        engine = RestrictedLearningEngine()
        final = engine.run(restricted, _legal_start(restricted), seed=1).final
        assert restricted.is_stable(final)

    def test_best_response_is_legal(self, game, restricted):
        config = _legal_start(restricted, pick=1)
        for miner in game.miners:
            choice = restricted.best_response(miner, config)
            if choice is not None:
                assert restricted.is_allowed(miner, choice)


class TestRestrictedLearning:
    @pytest.mark.parametrize("mode", ["random", "best", "minimal"])
    def test_converges(self, restricted, mode):
        engine = RestrictedLearningEngine(mode=mode)
        trajectory = engine.run(restricted, _legal_start(restricted), seed=2)
        assert trajectory.converged
        assert restricted.is_stable(trajectory.final)

    def test_potential_still_monotone(self, restricted):
        engine = RestrictedLearningEngine(mode="random")
        trajectory = engine.run(restricted, _legal_start(restricted), seed=3)
        for i in range(len(trajectory.configurations) - 1):
            assert (
                restricted.compare_potential(
                    trajectory.configurations[i], trajectory.configurations[i + 1]
                )
                < 0
            )

    def test_illegal_start_rejected(self, game, restricted):
        miner = game.miners[0]
        forbidden = next(
            coin for coin in game.coins if not restricted.is_allowed(miner, coin)
        )
        config = _legal_start(restricted).move(miner, forbidden)
        with pytest.raises(InvalidConfigurationError):
            RestrictedLearningEngine().run(restricted, config)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            RestrictedLearningEngine(mode="chaotic")


class TestRestrictedEquilibrium:
    def test_greedy_is_stable(self, restricted):
        equilibrium = restricted.greedy_equilibrium()
        restricted.validate_configuration(equilibrium)
        assert restricted.is_stable(equilibrium)

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_stable_across_games(self, seed):
        game = random_game(8, 4, seed=seed)
        coin_algorithms = {
            coin.name: ("a" if i < 2 else "b") for i, coin in enumerate(game.coins)
        }
        miner_hardware = {
            miner.name: ("a" if i % 3 else "b") for i, miner in enumerate(game.miners)
        }
        restricted = RestrictedGame.by_algorithm(game, coin_algorithms, miner_hardware)
        assert restricted.is_stable(restricted.greedy_equilibrium())
