"""Tests for exact improvement-graph analysis."""

import pytest

from repro.analysis.paths import (
    improvement_graph,
    is_acyclic,
    longest_improvement_path,
    reachable_equilibria,
    sink_configurations,
)
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_configuration, random_game
from repro.exceptions import InvalidModelError


class TestGraphStructure:
    @pytest.mark.parametrize("seed", range(5))
    def test_sinks_are_exactly_the_equilibria(self, seed):
        game = random_game(5, 2, seed=seed)
        graph = improvement_graph(game)
        assert sorted(sink_configurations(graph), key=hash) == sorted(
            enumerate_equilibria(game), key=hash
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_graph_is_acyclic(self, seed):
        """Theorem 1, decided exactly on the full configuration space."""
        game = random_game(5, 2, seed=seed)
        assert is_acyclic(improvement_graph(game))

    def test_edges_are_better_responses(self):
        game = random_game(4, 2, seed=9)
        graph = improvement_graph(game)
        for config, successors in graph.items():
            for successor in successors:
                movers = [
                    miner
                    for miner in game.miners
                    if config.coin_of(miner) != successor.coin_of(miner)
                ]
                assert len(movers) == 1
                (mover,) = movers
                assert game.payoff(mover, successor) > game.payoff(mover, config)

    def test_size_guard(self):
        game = random_game(20, 3, seed=0)
        with pytest.raises(InvalidModelError, match="limit"):
            improvement_graph(game, limit=100)


class TestLongestPath:
    def test_upper_bounds_every_trajectory(self):
        from repro.learning.engine import LearningEngine
        from repro.learning.policies import MinimalGainPolicy
        from repro.learning.schedulers import SmallestFirstScheduler

        game = random_game(5, 2, seed=3)
        bound = longest_improvement_path(improvement_graph(game))
        engine = LearningEngine(
            policy=MinimalGainPolicy(), scheduler=SmallestFirstScheduler()
        )
        for seed in range(10):
            trajectory = engine.run(
                game, random_configuration(game, seed=seed), seed=seed
            )
            assert trajectory.length <= bound

    def test_zero_for_single_miner_single_coin(self):
        game = random_game(1, 1, seed=0)
        assert longest_improvement_path(improvement_graph(game)) == 0

    def test_positive_when_unstable_states_exist(self):
        game = random_game(4, 2, seed=4)
        graph = improvement_graph(game)
        has_unstable = any(successors for successors in graph.values())
        bound = longest_improvement_path(graph)
        assert (bound > 0) == has_unstable


class TestReachability:
    def test_reachable_sinks_are_stable(self):
        game = random_game(5, 2, seed=5)
        start = random_configuration(game, seed=6)
        sinks = reachable_equilibria(game, start)
        assert sinks
        for sink in sinks:
            assert game.is_stable(sink)

    def test_sampled_basins_subset_of_reachable(self):
        from repro.analysis.basins import basin_profile

        game = random_game(5, 2, seed=7)
        start = random_configuration(game, seed=8)
        reachable = set(reachable_equilibria(game, start))
        from repro.learning.engine import LearningEngine

        engine = LearningEngine(record_configurations=False)
        for seed in range(10):
            final = engine.run(game, start, seed=seed).final
            assert final in reachable

    def test_stable_start_reaches_itself_only(self):
        from repro.core.equilibrium import greedy_equilibrium

        game = random_game(5, 2, seed=9)
        equilibrium = greedy_equilibrium(game)
        assert reachable_equilibria(game, equilibrium) == [equilibrium]
