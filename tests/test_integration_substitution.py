"""Integration: the substrates realize the game model (DESIGN.md §4).

Two claims are verified quantitatively:

* The PoW block lottery's long-run realized payoffs converge to the
  game's ``u_p = m_p·F(c)/M_c``.
* The market scenario's per-tick games, run through equilibrium
  learning, produce the hashrate shares the game predicts.
"""

import numpy as np
import pytest

from repro.chainsim.miningsim import MiningSimulation, SimMiner
from repro.market.coins import bitcoin_cash_spec, bitcoin_spec
from repro.market.exchange_rates import ConstantRate
from repro.market.fees import ConstantFees
from repro.market.population import uniform_population
from repro.market.scenario import MarketScenario


class TestChainRealizesGamePayoffs:
    def test_realized_fiat_tracks_expected_payoff(self):
        miners = [SimMiner(f"m{i}", p) for i, p in enumerate([40.0, 25.0, 15.0, 10.0])]
        spec = bitcoin_spec()

        def rate(t, coin):
            return 1000.0

        sim = MiningSimulation([spec], miners, rate, reevaluation_rate_per_h=1e-9, seed=5)
        horizon = 5000.0
        result = sim.run(horizon)

        total_power = sum(m.power for m in miners)
        value_per_hour = spec.coins_per_block * 1000.0 * spec.blocks_per_hour
        for miner in miners:
            expected = miner.power / total_power * value_per_hour
            realized = result.fiat_by_miner[miner.name] / horizon
            assert realized == pytest.approx(expected, rel=0.1)

    def test_two_coin_split_matches_game_equilibrium(self):
        # Static assignment at the game's equilibrium: both chains pay
        # the same RPU, realized income per unit power must be ~equal.
        miners = [SimMiner(f"m{i}", p) for i, p in enumerate([30.0, 30.0, 20.0, 20.0])]
        specs = [bitcoin_spec(fees_per_block=0.0), bitcoin_cash_spec(fees_per_block=0.0)]

        def rate(t, coin):
            return 1000.0  # equal weights ⇒ equilibrium splits power evenly

        assignment = {"m0": "BTC", "m1": "BCH", "m2": "BTC", "m3": "BCH"}
        sim = MiningSimulation(specs, miners, rate, reevaluation_rate_per_h=1e-9, seed=6)
        result = sim.run(4000.0, initial_assignment=assignment)
        rpu = {
            name: result.fiat_by_miner[name] / next(m.power for m in miners if m.name == name)
            for name in result.fiat_by_miner
        }
        values = list(rpu.values())
        assert max(values) / min(values) < 1.2


class TestScenarioEquilibria:
    def test_share_follows_weight_share_for_many_small_miners(self):
        # With many similar miners, the equilibrium hashrate share of a
        # coin approaches its weight share (the fluid limit).
        times = np.array([0.0])
        scenario = MarketScenario(
            specs=(bitcoin_spec(fees_per_block=0.0), bitcoin_cash_spec(fees_per_block=0.0)),
            rate_processes=(ConstantRate(3000.0), ConstantRate(1000.0)),
            fee_processes=(ConstantFees(0.0), ConstantFees(0.0)),
            miners=uniform_population(60, low=1.0, high=2.0, seed=1),
            times_h=times,
            seed=1,
        )
        replay = scenario.replay(seed=2)
        bch_share = replay.hashrate_share("BCH")[0]
        # Weight share of BCH = 1000/(3000+1000) = 0.25.
        assert bch_share == pytest.approx(0.25, abs=0.05)
