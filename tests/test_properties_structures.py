"""Property-based tests for data-structure laws (configurations, rewards)."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.coin import RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.miner import make_miners

names = st.integers(min_value=2, max_value=6)


@st.composite
def reward_functions(draw):
    k = draw(st.integers(min_value=1, max_value=5))
    coins = make_coins(f"c{i}" for i in range(k))
    values = draw(
        st.lists(st.integers(min_value=1, max_value=10**6), min_size=k, max_size=k)
    )
    return coins, RewardFunction.from_values(coins, values)


@settings(max_examples=50, deadline=None)
@given(reward_functions(), st.integers(min_value=1, max_value=1000))
def test_boost_then_total(pair, extra):
    coins, rewards = pair
    boosted = rewards.boosted(coins[0], extra)
    assert boosted.total() == rewards.total() + extra
    assert boosted.dominates(rewards)


@settings(max_examples=50, deadline=None)
@given(reward_functions())
def test_replacing_identity(pair):
    coins, rewards = pair
    same = rewards.replacing({coins[0]: rewards[coins[0]]})
    assert same == rewards


@settings(max_examples=50, deadline=None)
@given(reward_functions())
def test_total_is_sum_of_items(pair):
    _, rewards = pair
    assert rewards.total() == sum((v for _, v in rewards.items()), Fraction(0))


@st.composite
def configurations(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=4))
    powers = draw(
        st.lists(
            st.integers(min_value=1, max_value=100), min_size=n, max_size=n, unique=True
        )
    )
    miners = make_miners(powers)
    coins = make_coins(f"c{i}" for i in range(k))
    indices = draw(
        st.lists(st.integers(min_value=0, max_value=k - 1), min_size=n, max_size=n)
    )
    return miners, coins, Configuration(miners, [coins[i] for i in indices])


@settings(max_examples=50, deadline=None)
@given(configurations())
def test_miners_on_partitions_miners(triple):
    miners, coins, config = triple
    seen = []
    for coin in coins:
        seen.extend(config.miners_on(coin))
    assert sorted(m.name for m in seen) == sorted(m.name for m in miners)


@settings(max_examples=50, deadline=None)
@given(configurations())
def test_occupied_coins_are_exactly_the_used_ones(triple):
    miners, coins, config = triple
    used = {config.coin_of(m) for m in miners}
    assert set(config.occupied_coins()) == used


@settings(max_examples=50, deadline=None)
@given(configurations(), st.integers(min_value=0, max_value=3))
def test_move_preserves_everyone_else(triple, coin_index):
    miners, coins, config = triple
    target = coins[coin_index % len(coins)]
    mover = miners[0]
    moved = config.move(mover, target)
    assert moved.coin_of(mover) == target
    for miner in miners[1:]:
        assert moved.coin_of(miner) == config.coin_of(miner)
