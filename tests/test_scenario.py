"""Tests for market scenarios and equilibrium replays."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.market.coins import bitcoin_cash_spec, bitcoin_spec
from repro.market.exchange_rates import ConstantRate
from repro.market.fees import ConstantFees
from repro.market.population import uniform_population
from repro.market.scenario import MarketScenario, btc_bch_scenario


def _tiny_scenario(seed=0):
    times = np.arange(0.0, 24.0, 6.0)
    return MarketScenario(
        specs=(bitcoin_spec(), bitcoin_cash_spec()),
        rate_processes=(ConstantRate(6500.0), ConstantRate(620.0)),
        fee_processes=(ConstantFees(2.0), ConstantFees(0.3)),
        miners=uniform_population(8, seed=seed),
        times_h=times,
        seed=seed,
    )


class TestScenario:
    def test_game_at_builds_valid_game(self):
        scenario = _tiny_scenario()
        game = scenario.game_at(0)
        assert len(game.miners) == 8
        assert {c.name for c in game.coins} == {"BTC", "BCH"}
        assert game.rewards.total() > 0

    def test_weight_series_cached(self):
        scenario = _tiny_scenario()
        assert scenario.weight_series() is scenario.weight_series()

    def test_games_iterates_grid(self):
        scenario = _tiny_scenario()
        assert len(list(scenario.games())) == len(scenario.times_h)

    def test_alignment_validated(self):
        with pytest.raises(SimulationError, match="one-to-one"):
            MarketScenario(
                specs=(bitcoin_spec(),),
                rate_processes=(ConstantRate(1.0), ConstantRate(2.0)),
                fee_processes=(ConstantFees(0.0),),
                miners=uniform_population(3, seed=0),
                times_h=np.array([0.0]),
            )


class TestReplay:
    def test_replay_ends_each_tick_at_equilibrium(self):
        scenario = _tiny_scenario()
        replay = scenario.replay(seed=1)
        for index, config in enumerate(replay.configurations):
            assert scenario.game_at(index).is_stable(config)

    def test_constant_rates_settle_quickly(self):
        scenario = _tiny_scenario()
        replay = scenario.replay(seed=2)
        # After the first tick's convergence, nothing changes.
        assert sum(replay.steps_per_tick[1:]) == 0

    def test_shares_sum_to_one(self):
        scenario = _tiny_scenario()
        replay = scenario.replay(seed=3)
        total = replay.hashrate_share("BTC") + replay.hashrate_share("BCH")
        assert np.allclose(total, 1.0)


class TestFigure1Scenario:
    def test_migration_shape(self):
        scenario = btc_bch_scenario(horizon_h=240, resolution_h=8, tail_miners=10)
        replay = scenario.replay(seed=4)
        share = replay.hashrate_share("BCH")
        jump = int(96 / 8)
        pre = share[:jump].mean()
        peak = share[jump:].max()
        assert peak > 1.5 * pre, "the price spike must pull hashrate to BCH"
        post = share[-3:].mean()
        assert post < peak, "the migration must decay with the spike"
