"""Tests for fee processes and whale boosts."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.market.fees import (
    ConstantFees,
    MeanRevertingFees,
    WhaleBoost,
    WhaleFeeSchedule,
)

TIMES = np.arange(0.0, 24.0, 1.0)


class TestConstantFees:
    def test_flat(self):
        assert np.all(ConstantFees(2.0).sample(TIMES) == 2.0)

    def test_zero_allowed(self):
        assert np.all(ConstantFees(0.0).sample(TIMES) == 0.0)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            ConstantFees(-1.0)


class TestMeanReverting:
    def test_non_negative(self):
        fees = MeanRevertingFees(mean_per_block=1.0, volatility=2.0)
        assert np.all(fees.sample(TIMES, seed=0) >= 0)

    def test_reverts_toward_mean(self):
        fees = MeanRevertingFees(mean_per_block=5.0, reversion_per_h=0.9, volatility=0.0)
        path = fees.sample(TIMES, seed=1)
        # Zero volatility: path stays at the mean it started from.
        assert path[-1] == pytest.approx(5.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(SimulationError):
            MeanRevertingFees(mean_per_block=-1.0)
        with pytest.raises(SimulationError):
            MeanRevertingFees(mean_per_block=1.0, reversion_per_h=0.0)


class TestWhaleSchedule:
    def test_boost_applies_in_window_only(self):
        schedule = WhaleFeeSchedule(
            organic=ConstantFees(1.0),
            boosts=(WhaleBoost(start_h=5.0, end_h=10.0, extra_per_block=3.0),),
        )
        path = schedule.sample(TIMES)
        assert path[4] == 1.0
        assert path[5] == 4.0
        assert path[9] == 4.0
        assert path[10] == 1.0, "end is exclusive"

    def test_boosts_stack(self):
        schedule = WhaleFeeSchedule(
            organic=ConstantFees(0.0),
            boosts=(
                WhaleBoost(start_h=0.0, end_h=24.0, extra_per_block=1.0),
                WhaleBoost(start_h=10.0, end_h=12.0, extra_per_block=2.0),
            ),
        )
        path = schedule.sample(TIMES)
        assert path[11] == 3.0

    def test_total_spend(self):
        boost = WhaleBoost(start_h=0.0, end_h=10.0, extra_per_block=2.0)
        assert boost.total_spend(blocks_per_hour=6.0) == 120.0

    def test_window_validated(self):
        with pytest.raises(SimulationError):
            WhaleBoost(start_h=5.0, end_h=5.0, extra_per_block=1.0)
        with pytest.raises(SimulationError):
            WhaleBoost(start_h=0.0, end_h=1.0, extra_per_block=0.0)
