"""Tests for the Monte Carlo realization layer (repro.stochastic).

The two acceptance properties from the PR issue live here:

* as the per-decision sample budget grows, the noisy engine's landing
  distribution concentrates on the exact ``ConfigSpace`` equilibrium
  set (misconvergence → 0, support ⊆ exact equilibria), asserted with
  statistical tolerance at a fixed seed;
* a fixed-seed noisy batch is bit-identical across serial, thread and
  process execution.
"""

import warnings
from fractions import Fraction

import numpy as np
import pytest

from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_configuration, random_game
from repro.stochastic import (
    FixedBudget,
    GeometricBudget,
    NoisyLearningEngine,
    as_budget,
    draw_below,
    estimate_payoffs,
    estimation_error,
    misconvergence_profile,
    per_round_variance,
    realized_rewards,
    reconcile,
    reward_risk,
    ruin_bound,
    run_noisy_batch,
    sample_block_wins,
    sample_win_count,
    specs_from_game,
    time_to_equilibrium,
)


class TestDrawBelow:
    def test_in_range_and_deterministic(self):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        values_a = [draw_below(rng_a, 1000) for _ in range(200)]
        values_b = [draw_below(rng_b, 1000) for _ in range(200)]
        assert values_a == values_b
        assert all(0 <= value < 1000 for value in values_a)

    def test_arbitrary_precision_bound(self):
        bound = 2**200 + 12345  # far past int64
        rng = np.random.default_rng(2)
        values = [draw_below(rng, bound) for _ in range(20)]
        assert all(0 <= value < bound for value in values)
        # Re-seeding reproduces the rejection-sampled sequence exactly.
        replay_rng = np.random.default_rng(2)
        assert values == [draw_below(replay_rng, bound) for _ in range(20)]

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError, match="bound"):
            draw_below(np.random.default_rng(0), 0)


class TestSampleWinCount:
    def test_bounds_and_determinism(self):
        rng = np.random.default_rng(3)
        count = sample_win_count(rng, 3, 10, 500)
        assert 0 <= count <= 500
        assert count == sample_win_count(np.random.default_rng(3), 3, 10, 500)

    def test_full_weight_always_wins(self):
        assert sample_win_count(np.random.default_rng(4), 7, 7, 100) == 100

    def test_validation(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError, match="rounds"):
            sample_win_count(rng, 1, 2, -1)
        with pytest.raises(ValueError, match="weight"):
            sample_win_count(rng, 5, 2, 10)
        assert sample_win_count(rng, 1, 2, 0) == 0


class TestLottery:
    def test_each_occupied_coin_races_every_round(self):
        game = random_game(6, 3, seed=10)
        config = random_configuration(game, seed=11)
        rounds = 400
        sample = sample_block_wins(game, config, rounds=rounds, seed=12)
        for coin in game.coins:
            on_coin = config.miners_on(coin)
            coin_wins = sum(
                sample.wins[i]
                for i, miner in enumerate(game.miners)
                if miner in on_coin
            )
            assert coin_wins == (rounds if on_coin else 0)

    def test_sole_occupant_wins_everything(self):
        game = random_game(3, 3, seed=13)
        config = game.configuration(["c1", "c2", "c3"])
        sample = sample_block_wins(game, config, rounds=50, seed=14)
        assert sample.wins == (50, 50, 50)

    def test_realized_rewards_are_exact_win_multiples(self):
        game = random_game(5, 2, seed=15)
        config = random_configuration(game, seed=16)
        sample = sample_block_wins(game, config, rounds=300, seed=17)
        rewards = realized_rewards(game, config, sample)
        for i, miner in enumerate(game.miners):
            expected = sample.wins[i] * game.rewards[config.coin_of(miner)]
            assert rewards[miner] == expected
            assert isinstance(rewards[miner], Fraction)

    def test_sampler_is_unbiased(self):
        # Empirical mean within 6 binomial standard errors of the model
        # payoff for every miner, at a fixed seed.
        game = random_game(6, 2, seed=18)
        config = random_configuration(game, seed=19)
        rounds = 20_000
        estimates = estimate_payoffs(game, config, rounds=rounds, seed=20, z=6.0)
        for miner, estimate in estimates.items():
            exact = game.payoff(miner, config)
            assert estimate.covers(exact), (miner.name, float(exact), estimate)


class TestEstimator:
    def test_estimation_error_is_exact(self):
        game = random_game(4, 2, seed=21)
        config = random_configuration(game, seed=22)
        estimates = estimate_payoffs(game, config, rounds=100, seed=23)
        errors = estimation_error(game, config, estimates)
        for miner, estimate in estimates.items():
            assert errors[miner] == estimate.mean - game.payoff(miner, config)

    def test_budgets(self):
        assert as_budget(16) == FixedBudget(16)
        assert FixedBudget(8).rounds_at(1000) == 8
        budget = GeometricBudget(base=4, growth=2.0, period=2, cap=64)
        assert budget.rounds_at(0) == 4
        assert budget.rounds_at(2) == 8
        assert budget.rounds_at(10_000) == 64  # cap, no float overflow
        assert as_budget(budget) is budget
        with pytest.raises(TypeError, match="budget"):
            as_budget("lots")
        with pytest.raises(ValueError):
            FixedBudget(0)
        with pytest.raises(ValueError):
            GeometricBudget(base=4, cap=2)


class TestNoisyEngine:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_activations"):
            NoisyLearningEngine(max_activations=0)
        with pytest.raises(ValueError, match="inertia"):
            NoisyLearningEngine(inertia=1.0)
        with pytest.raises(ValueError, match="exploration"):
            NoisyLearningEngine(exploration=-0.1)
        with pytest.raises(ValueError, match="patience"):
            NoisyLearningEngine(patience=0)

    def test_single_coin_settles_in_place(self):
        game = random_game(4, 1, seed=30)
        start = random_configuration(game, seed=31)
        result = NoisyLearningEngine(budget=2, max_activations=200).run(
            game, start, seed=32
        )
        assert result.settled
        assert result.moves == 0
        assert result.reached_equilibrium

    def test_budget_to_infinity_matches_configspace_prediction(self):
        # THE acceptance property: as the sample budget grows the noisy
        # engine's equilibrium frequencies converge to the exact
        # ConfigSpace prediction — misconvergence vanishes and every
        # landing lies in the enumerated equilibrium set.
        game = random_game(5, 2, seed=7)
        equilibria = set(enumerate_equilibria(game))
        report = misconvergence_profile(
            game,
            budgets=[1, 4096],
            replications=24,
            max_activations=2_000,
            seed=2024,
        )
        noisy_rate = report.outcomes[0].misconvergence_rate
        sharp = report.outcomes[-1]
        # Statistical tolerance at this fixed seed: the sharp-budget
        # batch must land on exact equilibria (essentially) always,
        # and strictly beat the one-sample batch.
        assert sharp.misconvergence_rate <= 1 / 24
        assert noisy_rate > sharp.misconvergence_rate
        assert set(sharp.landing_counts) <= equilibria
        landed = sum(sharp.landing_counts.values())
        assert landed >= sharp.replications - 1
        # Cross-check: every counted landing is exactly stable.
        for config in sharp.landing_counts:
            assert game.is_stable(config)

    def test_exploration_keeps_moving(self):
        game = random_game(4, 2, seed=33)
        start = random_configuration(game, seed=34)
        restless = NoisyLearningEngine(
            budget=64, max_activations=400, exploration=0.5
        ).run(game, start, seed=35)
        assert not restless.settled
        assert restless.moves > 10

    def test_inertia_slows_movement(self):
        game = random_game(5, 2, seed=36)
        start = random_configuration(game, seed=37)
        eager = NoisyLearningEngine(budget=16, max_activations=300, patience=300).run(
            game, start, seed=38
        )
        sluggish = NoisyLearningEngine(
            budget=16, max_activations=300, patience=300, inertia=0.9
        ).run(game, start, seed=38)
        assert sluggish.moves <= eager.moves


class TestNoisyBatchParity:
    def test_fixed_seed_identical_across_executors(self):
        # Acceptance property: serial, thread and process execution of
        # the same seeded batch return bit-identical result lists.
        game = random_game(5, 2, seed=7)
        engine = NoisyLearningEngine(budget=32, max_activations=600)
        outcomes = {}
        for executor in ("serial", "thread", "process"):
            with warnings.catch_warnings():
                # Sandboxes without process pools degrade to serial —
                # which the contract says is identical anyway.
                warnings.simplefilter("ignore", RuntimeWarning)
                outcomes[executor] = run_noisy_batch(
                    game,
                    replications=8,
                    engine=engine,
                    seed=99,
                    executor=executor,
                    max_workers=4,
                )
        assert outcomes["serial"] == outcomes["thread"]
        assert outcomes["serial"] == outcomes["process"]
        assert [result.run_index for result in outcomes["serial"]] == list(range(8))

    def test_replications_validated(self):
        game = random_game(3, 2, seed=40)
        with pytest.raises(ValueError, match="replications"):
            run_noisy_batch(game, replications=0, executor="serial")


class TestRisk:
    def test_per_round_variance_closed_form(self):
        game = random_game(4, 2, seed=50)
        config = random_configuration(game, seed=51)
        variances = per_round_variance(game, config)
        for miner in game.miners:
            coin = config.coin_of(miner)
            q = miner.power / game.coin_power(coin, config)
            reward = game.rewards[coin]
            assert variances[miner] == reward * reward * q * (1 - q)
            assert variances[miner] >= 0

    def test_reward_risk_matches_closed_form(self):
        game = random_game(5, 2, seed=52)
        config = random_configuration(game, seed=53)
        profile = reward_risk(
            game, config, horizon_rounds=800, replications=40, seed=54
        )
        assert profile.max_relative_bias() < 0.1
        for entry in profile.miners:
            if entry.exact_std == 0.0:  # sole occupant: deterministic
                assert entry.realized_std == pytest.approx(0.0, abs=1e-6)
            else:
                assert entry.realized_std == pytest.approx(entry.exact_std, rel=0.5)
            assert 0.0 <= entry.ruin_probability <= 1.0

    def test_ruin_bound_bounds(self):
        game = random_game(4, 2, seed=55)
        config = random_configuration(game, seed=56)
        for miner in game.miners:
            bound = ruin_bound(
                game, config, miner, horizon_rounds=500, ruin_fraction=0.5
            )
            assert 0.0 <= bound <= 1.0
        # Longer horizons can only tighten Chebyshev.
        miner = game.miners[0]
        short = ruin_bound(game, config, miner, horizon_rounds=10)
        long = ruin_bound(game, config, miner, horizon_rounds=10_000)
        assert long <= short

    def test_time_to_equilibrium_summary(self):
        game = random_game(4, 2, seed=57)
        results = run_noisy_batch(
            game,
            replications=10,
            engine=NoisyLearningEngine(budget=2_048, max_activations=1_500),
            seed=58,
            executor="serial",
        )
        stats = time_to_equilibrium(results)
        assert stats["converged_fraction"] > 0.5
        assert stats["mean"] <= stats["max"]
        assert stats["median"] <= stats["p95"] <= stats["max"]


class TestBridge:
    def test_specs_carry_rewards(self):
        game = random_game(4, 3, seed=60)
        specs = specs_from_game(game)
        assert [spec.name for spec in specs] == [coin.name for coin in game.coins]
        for spec, coin in zip(specs, game.coins):
            assert spec.coins_per_block == pytest.approx(float(game.rewards[coin]))

    def test_reconciliation_agrees_with_model(self):
        game = random_game(5, 2, seed=61)
        config = random_configuration(game, seed=62)
        report = reconcile(
            game, config, horizon_h=600.0, lottery_rounds=3_000, seed=63
        )
        assert sum(report.expected_share.values()) == pytest.approx(1.0)
        assert sum(report.chain_share.values()) == pytest.approx(1.0)
        assert sum(report.lottery_share.values()) == pytest.approx(1.0)
        assert report.max_deviation("chain") < 0.05
        assert report.max_deviation("lottery") < 0.05
        with pytest.raises(ValueError, match="which"):
            report.max_deviation("vibes")
