"""Tests for miner population generators."""

import pytest

from repro.core.miner import has_strictly_decreasing_powers
from repro.exceptions import SimulationError
from repro.market.population import (
    POOL_PROFILE_2017,
    pareto_population,
    pool_population,
    uniform_population,
)


class TestUniform:
    def test_size_and_strictness(self):
        miners = uniform_population(25, seed=0)
        assert len(miners) == 25
        assert has_strictly_decreasing_powers(miners)

    def test_range(self):
        miners = uniform_population(10, low=2.0, high=3.0, seed=1)
        for miner in miners:
            assert 1.9 < float(miner.power) < 3.1

    def test_validation(self):
        with pytest.raises(SimulationError):
            uniform_population(0)
        with pytest.raises(SimulationError):
            uniform_population(3, low=5.0, high=1.0)


class TestPareto:
    def test_heavy_tail(self):
        miners = pareto_population(200, seed=2)
        powers = sorted((float(m.power) for m in miners), reverse=True)
        top_share = sum(powers[:10]) / sum(powers)
        assert top_share > 0.3, "pareto populations concentrate power"

    def test_strictness(self):
        assert has_strictly_decreasing_powers(pareto_population(50, seed=3))

    def test_validation(self):
        with pytest.raises(SimulationError):
            pareto_population(5, alpha=0)


class TestPoolProfile:
    def test_profile_sums_to_one(self):
        assert sum(POOL_PROFILE_2017) == pytest.approx(1.0)

    def test_total_power_preserved(self):
        miners = pool_population(total_power=1000.0, seed=4)
        assert sum(float(m.power) for m in miners) == pytest.approx(1000.0, rel=1e-6)

    def test_tail_split(self):
        base = pool_population(total_power=1000.0, seed=5)
        tailed = pool_population(total_power=1000.0, tail_miners=15, seed=5)
        assert len(tailed) == len(base) - 1 + 15
        assert sum(float(m.power) for m in tailed) == pytest.approx(1000.0, rel=1e-6)

    def test_strictness(self):
        assert has_strictly_decreasing_powers(pool_population(seed=6, tail_miners=10))

    def test_bad_profile_rejected(self):
        with pytest.raises(SimulationError, match="sum to 1"):
            pool_population(profile=(0.5, 0.2))
