"""Tests for configurations (assignments of miners to coins)."""

import pytest

from repro.core.coin import make_coins
from repro.core.configuration import Configuration
from repro.core.miner import make_miners
from repro.exceptions import InvalidConfigurationError


@pytest.fixture
def miners():
    return make_miners([5, 3, 1])


@pytest.fixture
def coins():
    return make_coins(["c1", "c2"])


@pytest.fixture
def config(miners, coins):
    return Configuration(miners, [coins[0], coins[1], coins[0]])


class TestConstruction:
    def test_length_mismatch_rejected(self, miners, coins):
        with pytest.raises(InvalidConfigurationError, match="choices"):
            Configuration(miners, [coins[0]])

    def test_empty_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration([], [])

    def test_duplicate_miners_rejected(self, miners, coins):
        with pytest.raises(InvalidConfigurationError, match="duplicate"):
            Configuration([miners[0], miners[0]], [coins[0], coins[1]])

    def test_from_mapping(self, miners, coins):
        config = Configuration.from_mapping(
            miners, {miners[0]: coins[1], miners[1]: coins[0], miners[2]: coins[0]}
        )
        assert config.coin_of(miners[0]) == coins[1]

    def test_from_mapping_missing_miner(self, miners, coins):
        with pytest.raises(InvalidConfigurationError, match="misses"):
            Configuration.from_mapping(miners, {miners[0]: coins[0]})

    def test_uniform(self, miners, coins):
        config = Configuration.uniform(miners, coins[1])
        assert all(coin == coins[1] for _, coin in config)


class TestAccess(object):
    def test_coin_of(self, config, miners, coins):
        assert config.coin_of(miners[1]) == coins[1]

    def test_coin_of_unknown_miner(self, config):
        from repro.core.miner import Miner

        with pytest.raises(InvalidConfigurationError, match="not in"):
            config.coin_of(Miner.of("stranger", 1))

    def test_miners_on(self, config, miners, coins):
        assert config.miners_on(coins[0]) == (miners[0], miners[2])
        assert config.miners_on(coins[1]) == (miners[1],)

    def test_occupied_coins_order(self, config, coins):
        assert config.occupied_coins() == (coins[0], coins[1])

    def test_as_dict(self, config):
        assert config.as_dict() == {"p1": "c1", "p2": "c2", "p3": "c1"}

    def test_len_and_iter(self, config, miners):
        assert len(config) == 3
        assert [miner for miner, _ in config] == list(miners)


class TestMove:
    def test_move_changes_only_target(self, config, miners, coins):
        moved = config.move(miners[2], coins[1])
        assert moved.coin_of(miners[2]) == coins[1]
        assert moved.coin_of(miners[0]) == coins[0]
        assert config.coin_of(miners[2]) == coins[0], "original untouched"

    def test_move_to_same_coin_returns_self(self, config, miners, coins):
        assert config.move(miners[0], coins[0]) is config

    def test_move_unknown_miner(self, config, coins):
        from repro.core.miner import Miner

        with pytest.raises(InvalidConfigurationError):
            config.move(Miner.of("stranger", 1), coins[0])


class TestValueSemantics:
    def test_equal_configs(self, miners, coins):
        a = Configuration(miners, [coins[0], coins[1], coins[0]])
        b = Configuration(miners, [coins[0], coins[1], coins[0]])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_configs(self, miners, coins, config):
        other = config.move(miners[0], coins[1])
        assert other != config

    def test_usable_as_dict_key(self, config):
        lookup = {config: "here"}
        assert lookup[config] == "here"
