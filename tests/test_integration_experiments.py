"""Integration: every experiment runner produces its headline result.

Each experiment runs with tiny parameters (seconds, not minutes); the
full-size tables live in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    e01_migration,
    e02_convergence,
    e03_no_exact_potential,
    e04_potential_monotonicity,
    e05_welfare,
    e06_better_equilibrium,
    e07_reward_design,
    e08_design_cost,
    e09_learning_speed,
    e10_security_ablation,
)


def test_registry_is_complete():
    assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 17)}


def test_e01_small():
    result = e01_migration.run(
        horizon_h=160, resolution_h=8, tail_miners=6, chain_miners=10,
        chain_horizon_h=24, seed=1,
    )
    assert result.metrics["migration_factor"] > 1.2
    assert "E1" in result.table.title


def test_e02_small():
    result = e02_convergence.run(
        miner_counts=(5, 10), coin_counts=(2,), runs_per_cell=3, seed=1
    )
    assert result.metrics["convergence_rate"] == 1.0


def test_e03_small():
    result = e03_no_exact_potential.run(random_games=5, seed=1)
    assert result.metrics["paper_defect_matches"]


def test_e04_small():
    result = e04_potential_monotonicity.run(
        games=3, miners=6, coins=3, starts_per_game=2, seed=1
    )
    assert result.metrics["strict_increase_fraction"] == 1.0
    assert result.metrics["observation_violations"] == 0


def test_e05_small():
    result = e05_welfare.run(games=5, miners=6, coins=2, seed=1)
    assert result.metrics["observation3_fraction"] == 1.0
    assert result.metrics["claim4_fraction"] == 1.0


def test_e06_small():
    result = e06_better_equilibrium.run(games=6, miners=6, coins=2, seed=1)
    assert result.metrics["improvement_fraction"] == 1.0


def test_e07_small():
    result = e07_reward_design.run(miner_counts=(4, 5), coins=2, pairs_per_size=2, seed=1)
    assert result.metrics["success_rate"] == 1.0


def test_e08_small():
    result = e08_design_cost.run(games=4, miners=6, coins=2, seed=1)
    assert result.metrics["all_costs_finite"]


def test_e09_small():
    result = e09_learning_speed.run(miners=10, coins=3, runs=3, mwu_rounds=50, seed=1)
    assert result.metrics["fastest_mean_steps"] <= result.metrics["slowest_mean_steps"]


def test_e10_small():
    result = e10_security_ablation.run(
        games=4, miners=6, coins=2, naive_trials_per_pair=2, seed=1
    )
    assert result.metrics["staged_success_rate"] == 1.0


@pytest.mark.parametrize("name", list(ALL_EXPERIMENTS))
def test_every_experiment_renders_a_table(name):
    # Rendering is part of the deliverable; it must never crash. Use the
    # smallest viable parameters per experiment.
    small = {
        "E1": dict(horizon_h=120, resolution_h=12, tail_miners=4, chain_miners=6,
                   chain_horizon_h=12, seed=2),
        "E2": dict(miner_counts=(5,), coin_counts=(2,), runs_per_cell=2, seed=2),
        "E3": dict(random_games=3, seed=2),
        "E4": dict(games=2, miners=5, coins=2, starts_per_game=1, seed=2),
        "E5": dict(games=3, miners=6, coins=2, seed=2),
        "E6": dict(games=3, miners=6, coins=2, seed=2),
        "E7": dict(miner_counts=(4,), coins=2, pairs_per_size=1, seed=2),
        "E8": dict(games=3, miners=6, coins=2, seed=2),
        "E9": dict(miners=8, coins=2, runs=2, mwu_rounds=30, seed=2),
        "E10": dict(games=2, miners=6, coins=2, naive_trials_per_pair=1, seed=2),
        "E11": dict(games=2, miners=6, coins=4, starts_per_game=2, seed=2),
        "E12": dict(games=2, miners=6, coins=2, starts=4, seed=2),
        "E13": dict(games=2, miners=6, coins=2, samples=10, seed=2),
        "E14": dict(games=2, miners=4, coins=2, empirical_runs=5, seed=2),
        "E15": dict(games=1, miners=4, coins=2, budgets=(1, 32), replications=6,
                    max_activations=600, seed=2),
        "E16": dict(miners=4, coins=2, horizon_rounds=200, replications=8,
                    reconcile_horizon_h=60.0, seed=2),
    }
    result = ALL_EXPERIMENTS[name](**small[name])
    rendered = result.render()
    assert name in rendered or name in result.table.title
    assert len(rendered.splitlines()) >= 4
