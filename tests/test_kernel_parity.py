"""Parity suite: the integer kernel must be bit-for-bit the Fraction core.

The ``"fast"`` backend is only admissible because every decision it
makes — better-response sets, stability verdicts, scheduler picks,
policy choices, step payoffs — is identical to the ``"exact"``
Fraction backend, *including the sequence of RNG draws*. These tests
sweep well over 200 randomized games and assert exactly that, plus a
hypothesis property for the structural queries.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convergence import measure_convergence
from repro.core.configuration import Configuration
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.core.restricted import RestrictedGame
from repro.kernel import BatchRunner, KernelGame
from repro.learning.engine import LearningEngine
from repro.learning.policies import (
    BestResponsePolicy,
    EpsilonGreedyPolicy,
    FirstImprovingPolicy,
    MaxRpuPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.learning.restricted_engine import RestrictedLearningEngine
from repro.learning.schedulers import (
    LargestFirstScheduler,
    RoundRobinScheduler,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)
from repro.learning.simultaneous import run_simultaneous

POLICIES = (
    BestResponsePolicy(),
    RandomImprovingPolicy(),
    MinimalGainPolicy(),
    MaxRpuPolicy(),
    EpsilonGreedyPolicy(0.25),
    FirstImprovingPolicy(),
)

SCHEDULERS = (
    UniformRandomScheduler(),
    RoundRobinScheduler(),
    LargestFirstScheduler(),
    SmallestFirstScheduler(),
)

SIZES = ((3, 2), (5, 2), (6, 3), (8, 3), (10, 4))


def assert_trajectories_identical(exact, fast):
    """Step-for-step, payoff-for-payoff, configuration-for-configuration."""
    assert exact.converged == fast.converged
    assert len(exact.steps) == len(fast.steps)
    for a, b in zip(exact.steps, fast.steps):
        assert a.index == b.index
        assert a.miner == b.miner
        assert a.source == b.source
        assert a.target == b.target
        assert a.payoff_before == b.payoff_before
        assert a.payoff_after == b.payoff_after
    assert exact.configurations == fast.configurations


def test_structure_parity_on_random_games():
    """Better-response sets, best responses and stability verdicts agree."""
    for game_seed in range(120):
        n, k = SIZES[game_seed % len(SIZES)]
        game = random_game(n, k, seed=game_seed)
        kernel = KernelGame(game)
        config = random_configuration(game, seed=game_seed + 10_000)
        for miner in game.miners:
            assert kernel.better_response_moves(miner, config) == (
                game.better_response_moves(miner, config)
            )
            assert kernel.best_response(miner, config) == game.best_response(miner, config)
        assert kernel.unstable_miners(config) == game.unstable_miners(config)
        assert kernel.is_stable(config) == game.is_stable(config)


def test_trajectory_parity_on_200_random_games():
    """Fast and exact trajectories are identical on ≥200 randomized games."""
    for game_seed in range(200):
        n, k = SIZES[game_seed % len(SIZES)]
        game = random_game(n, k, seed=game_seed)
        start = random_configuration(game, seed=game_seed + 20_000)
        policy = POLICIES[game_seed % len(POLICIES)]
        scheduler = SCHEDULERS[game_seed % len(SCHEDULERS)]
        exact = LearningEngine(policy=policy, scheduler=scheduler, backend="exact").run(
            game, start, seed=game_seed
        )
        fast = LearningEngine(policy=policy, scheduler=scheduler, backend="fast").run(
            game, start, seed=game_seed
        )
        assert_trajectories_identical(exact, fast)
        # Both land on the same equilibrium, stable under both cores.
        assert exact.final == fast.final
        assert game.is_stable(fast.final)
        assert KernelGame(game).is_stable(fast.final)


def test_trajectory_parity_without_recording():
    """record_configurations=False keeps [initial, final] in both backends."""
    game = random_game(8, 3, seed=5)
    start = random_configuration(game, seed=6)
    runs = []
    for backend in ("exact", "fast"):
        engine = LearningEngine(record_configurations=False, backend=backend)
        runs.append(engine.run(game, start, seed=7))
    exact, fast = runs
    assert_trajectories_identical(exact, fast)
    assert len(fast.configurations) == (2 if fast.steps else 1)


def test_custom_policy_falls_back_to_exact_loop():
    """A policy subclass with its own choose() must not take the fast path."""

    class StubbornFirst(RandomImprovingPolicy):
        name = "stubborn-first"

        def choose(self, game, config, miner, rng):
            moves = game.better_response_moves(miner, config)
            return moves[0] if moves else None

    game = random_game(6, 3, seed=11)
    start = random_configuration(game, seed=12)
    custom = LearningEngine(policy=StubbornFirst(), backend="fast").run(game, start, seed=13)
    reference = LearningEngine(policy=FirstImprovingPolicy(), backend="exact").run(
        game, start, seed=13
    )
    # The override was honored (it behaves like first-improving, not random).
    assert_trajectories_identical(reference, custom)


def test_restricted_engine_parity():
    """Restricted (asymmetric) learning agrees across backends and modes."""
    for game_seed in range(30):
        game = random_game(7, 3, seed=game_seed + 300)
        rng = np.random.default_rng(game_seed)
        allowed = {}
        for miner in game.miners:
            picks = [coin for coin in game.coins if rng.random() < 0.7]
            allowed[miner] = picks or [game.coins[int(rng.integers(0, len(game.coins)))]]
        restricted = RestrictedGame(game, allowed)
        start = Configuration(
            game.miners,
            [
                restricted.allowed_coins(miner)[
                    int(rng.integers(0, len(restricted.allowed_coins(miner))))
                ]
                for miner in game.miners
            ],
        )
        for mode in ("random", "best", "minimal"):
            exact = RestrictedLearningEngine(mode=mode, backend="exact").run(
                restricted, start, seed=game_seed
            )
            fast = RestrictedLearningEngine(mode=mode, backend="fast").run(
                restricted, start, seed=game_seed
            )
            assert_trajectories_identical(exact, fast)
            assert restricted.is_stable(fast.final)


def test_simultaneous_parity():
    """Synchronous dynamics agree on rounds, cycles and inertia draws."""
    for game_seed in range(30):
        game = random_game(6, 3, seed=game_seed + 600)
        start = random_configuration(game, seed=game_seed)
        for inertia in (0.0, 0.25):
            exact = run_simultaneous(
                game, start, inertia=inertia, max_rounds=300, seed=9, backend="exact"
            )
            fast = run_simultaneous(
                game, start, inertia=inertia, max_rounds=300, seed=9, backend="fast"
            )
            assert exact.converged == fast.converged
            assert exact.cycle_start == fast.cycle_start
            assert exact.configurations == fast.configurations


def test_batch_runner_matches_serial_measurement():
    """BatchRunner summaries reproduce the serial loop's statistics."""
    game = random_game(10, 3, seed=77)
    serial = measure_convergence(game, runs=12, seed=123, backend="fast")
    for executor in ("serial", "thread"):
        runner = BatchRunner(backend="fast", executor=executor, max_workers=2)
        batched = measure_convergence(game, runs=12, seed=123, runner=runner)
        assert batched == serial


def test_batch_runner_grid_is_deterministic():
    """Grid batches are keyed by names and reproducible seed-for-seed."""
    game = random_game(8, 3, seed=88)
    policies = (BestResponsePolicy(), RandomImprovingPolicy())
    schedulers = (UniformRandomScheduler(),)
    runner = BatchRunner(executor="serial")
    first = runner.run_grid(game, policies=policies, schedulers=schedulers, runs_per_pair=4, seed=5)
    second = runner.run_grid(game, policies=policies, schedulers=schedulers, runs_per_pair=4, seed=5)
    assert first == second
    assert set(first) == {
        ("best-response", "uniform"),
        ("random-improving", "uniform"),
    }
    for summaries in first.values():
        assert len(summaries) == 4
        assert all(summary.converged for summary in summaries)
        for summary in summaries:
            final = summary.final_configuration(game)
            assert game.is_stable(final)


@st.composite
def small_games(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    k = draw(st.integers(min_value=2, max_value=4))
    powers = draw(
        st.lists(
            st.fractions(min_value=Fraction(1, 100), max_value=Fraction(100)),
            min_size=n,
            max_size=n,
        )
    )
    rewards = draw(
        st.lists(
            st.fractions(min_value=Fraction(1, 100), max_value=Fraction(100)),
            min_size=k,
            max_size=k,
        )
    )
    choices = draw(st.lists(st.integers(min_value=0, max_value=k - 1), min_size=n, max_size=n))
    return powers, rewards, choices


@settings(max_examples=60, deadline=None)
@given(small_games())
def test_structure_parity_property(data):
    """Hypothesis: arbitrary exact-rational games agree query-for-query.

    Unlike the factory sweep this explores tie-heavy games (duplicate
    powers and rewards), where strictness of inequalities matters most.
    """
    powers, rewards, choices = data
    game = Game.create(powers=powers, reward_values=rewards)
    kernel = KernelGame(game)
    config = Configuration(game.miners, [game.coins[i] for i in choices])
    for miner in game.miners:
        assert kernel.better_response_moves(miner, config) == (
            game.better_response_moves(miner, config)
        )
        assert kernel.best_response(miner, config) == game.best_response(miner, config)
    assert kernel.is_stable(config) == game.is_stable(config)


def test_backend_validation():
    with pytest.raises(ValueError):
        LearningEngine(backend="approximate")
    with pytest.raises(ValueError):
        BatchRunner(backend="float")
    with pytest.raises(ValueError):
        BatchRunner(executor="fibers")
