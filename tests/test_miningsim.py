"""Tests for the event-driven mining simulation."""

import numpy as np
import pytest

from repro.chainsim.difficulty import BitcoinRetarget
from repro.chainsim.miningsim import MiningSimulation, SimMiner
from repro.chainsim.pow import BlockLottery
from repro.exceptions import SimulationError
from repro.market.coins import bitcoin_cash_spec, bitcoin_spec


def _flat_rate(t, coin):
    return 6500.0 if coin == "BTC" else 620.0


def _miners(count=8, seed=0):
    rng = np.random.default_rng(seed)
    return [SimMiner(f"m{i}", float(p)) for i, p in enumerate(rng.uniform(10, 50, count))]


class TestValidation:
    def test_needs_coins_and_miners(self):
        with pytest.raises(SimulationError):
            MiningSimulation([], _miners(), _flat_rate)
        with pytest.raises(SimulationError):
            MiningSimulation([bitcoin_spec()], [], _flat_rate)

    def test_duplicate_miner_names_rejected(self):
        miners = [SimMiner("x", 1.0), SimMiner("x", 2.0)]
        with pytest.raises(SimulationError, match="unique"):
            MiningSimulation([bitcoin_spec()], miners, _flat_rate)

    def test_miner_power_positive(self):
        with pytest.raises(SimulationError):
            SimMiner("x", 0.0)

    def test_initial_assignment_checked(self):
        sim = MiningSimulation([bitcoin_spec()], _miners(2), _flat_rate, seed=0)
        with pytest.raises(SimulationError, match="misses"):
            sim.run(1.0, initial_assignment={"m0": "BTC"})
        with pytest.raises(SimulationError, match="unknown coin"):
            sim.run(1.0, initial_assignment={"m0": "DOGE", "m1": "BTC"})

    def test_horizon_positive(self):
        sim = MiningSimulation([bitcoin_spec()], _miners(2), _flat_rate, seed=0)
        with pytest.raises(SimulationError):
            sim.run(0.0)


class TestBlockProduction:
    def test_block_rate_near_target_when_calibrated(self):
        # All miners on BTC, difficulty calibrated to them: expect
        # roughly 6 blocks/hour.
        miners = _miners(6, seed=1)
        sim = MiningSimulation(
            [bitcoin_spec()], miners, _flat_rate, reevaluation_rate_per_h=1e-9, seed=2
        )
        result = sim.run(100.0)
        blocks_per_hour = result.blocks_found("BTC") / 100.0
        assert blocks_per_hour == pytest.approx(6.0, rel=0.2)

    def test_fiat_accounting_matches_blocks(self):
        miners = _miners(4, seed=3)
        sim = MiningSimulation(
            [bitcoin_spec()], miners, _flat_rate, reevaluation_rate_per_h=1e-9, seed=4
        )
        result = sim.run(50.0)
        expected = result.blocks_found("BTC") * bitcoin_spec().coins_per_block * 6500.0
        assert sum(result.fiat_by_miner.values()) == pytest.approx(expected)

    def test_realized_income_tracks_power_share(self):
        # DESIGN.md §4's substitution claim, quantitatively.
        miners = _miners(5, seed=5)
        sim = MiningSimulation(
            [bitcoin_spec()], miners, _flat_rate, reevaluation_rate_per_h=1e-9, seed=6
        )
        result = sim.run(3000.0)
        total_power = sum(m.power for m in miners)
        total_fiat = sum(result.fiat_by_miner.values())
        for miner in miners:
            realized_share = result.fiat_by_miner[miner.name] / total_fiat
            power_share = miner.power / total_power
            assert realized_share == pytest.approx(power_share, rel=0.15)


class TestSwitching:
    def test_profit_gap_triggers_switches(self):
        # Make BCH clearly over-rewarded per unit of power at the start
        # (low difficulty, nobody mining it, strong price): miners must
        # notice and move.
        def lucrative_bch(t, coin):
            return 6500.0 if coin == "BTC" else 2500.0

        miners = _miners(8, seed=7)
        sim = MiningSimulation(
            [bitcoin_spec(), bitcoin_cash_spec()],
            miners,
            lucrative_bch,
            reevaluation_rate_per_h=4.0,
            seed=8,
        )
        result = sim.run(24.0)
        assert len(result.switches) > 0
        assert result.blocks_found("BCH") > 0

    def test_hysteresis_reduces_switching(self):
        miners = _miners(8, seed=9)
        kwargs = dict(
            rate_fn=_flat_rate,
            difficulty_rules={"BTC": BitcoinRetarget(window=24),
                              "BCH": BitcoinRetarget(window=24)},
            reevaluation_rate_per_h=4.0,
        )
        eager = MiningSimulation(
            [bitcoin_spec(), bitcoin_cash_spec()], miners, seed=10,
            switch_threshold=0.0, **kwargs
        ).run(48.0)
        lazy = MiningSimulation(
            [bitcoin_spec(), bitcoin_cash_spec()], miners, seed=10,
            switch_threshold=0.5, **kwargs
        ).run(48.0)
        assert len(lazy.switches) <= len(eager.switches)

    def test_switch_events_well_formed(self):
        miners = _miners(6, seed=11)
        sim = MiningSimulation(
            [bitcoin_spec(), bitcoin_cash_spec()], miners, _flat_rate, seed=12
        )
        result = sim.run(24.0)
        for switch in result.switches:
            assert switch.source != switch.target
            assert 0.0 <= switch.time_h <= 24.0

    def test_shares_sum_to_one(self):
        miners = _miners(6, seed=13)
        sim = MiningSimulation(
            [bitcoin_spec(), bitcoin_cash_spec()], miners, _flat_rate, seed=14
        )
        result = sim.run(12.0, sample_resolution_h=2.0)
        total = result.hashrate_shares["BTC"] + result.hashrate_shares["BCH"]
        assert np.allclose(total, 1.0)


class TestSwitchEventEdgeCases:
    """Satellite coverage: event-queue edge cases around switching."""

    def test_near_simultaneous_reevaluations_keep_invariants(self):
        # A very high polling rate floods the queue with re-evaluation
        # events at (near-)identical times; the sequence-number
        # tie-break and epoch invalidation must keep the simulation
        # consistent: switches stay well-formed and no block is awarded
        # from a stale power epoch (fiat totals still match the chains).
        def lucrative_bch(t, coin):
            return 6500.0 if coin == "BTC" else 2500.0

        miners = _miners(6, seed=20)
        sim = MiningSimulation(
            [bitcoin_spec(), bitcoin_cash_spec()],
            miners,
            lucrative_bch,
            reevaluation_rate_per_h=500.0,
            seed=21,
        )
        result = sim.run(6.0)
        for switch in result.switches:
            assert switch.source != switch.target
            assert 0.0 <= switch.time_h <= 6.0
        expected = sum(
            result.blocks_found(spec.name)
            * spec.coins_per_block
            * lucrative_bch(0.0, spec.name)
            for spec in (bitcoin_spec(), bitcoin_cash_spec())
        )
        assert sum(result.fiat_by_miner.values()) == pytest.approx(expected)

    def test_back_to_back_switches_by_one_miner(self):
        # With heavy polling a miner may re-evaluate again immediately
        # after switching; consecutive switches of the same miner must
        # chain (each source equals the previous target).
        miners = _miners(4, seed=22)
        sim = MiningSimulation(
            [bitcoin_spec(), bitcoin_cash_spec()],
            miners,
            _flat_rate,
            reevaluation_rate_per_h=200.0,
            seed=23,
        )
        result = sim.run(12.0)
        last_coin = {name: None for name in result.final_assignment}
        for switch in result.switches:
            if last_coin[switch.miner] is not None:
                assert switch.source == last_coin[switch.miner]
            last_coin[switch.miner] = switch.target
        for name, coin in result.final_assignment.items():
            if last_coin[name] is not None:
                assert coin == last_coin[name]

    def test_zero_power_entries_never_win_the_lottery(self):
        # SimMiner forbids zero power at the boundary; the lottery must
        # also be safe against zero-power entries appearing in a draw.
        lottery = BlockLottery(seed=1)
        for _ in range(50):
            draw = lottery.draw({"ghost": 0.0, "real": 5.0}, difficulty=10.0)
            assert draw is not None and draw.winner == "real"
        assert lottery.draw({"ghost": 0.0}, difficulty=10.0) is None
        with pytest.raises(SimulationError):
            SimMiner("ghost", 0.0)

    def test_single_coin_degenerate_case(self):
        # One coin: re-evaluations fire but there is nowhere to go.
        miners = _miners(5, seed=24)
        sim = MiningSimulation(
            [bitcoin_spec()],
            miners,
            _flat_rate,
            reevaluation_rate_per_h=50.0,
            seed=25,
        )
        result = sim.run(24.0)
        assert result.switches == []
        assert set(result.final_assignment.values()) == {"BTC"}
        assert np.allclose(result.hashrate_shares["BTC"], 1.0)
        assert result.blocks_found("BTC") > 0

    def test_fixed_seed_is_fully_deterministic(self):
        def run_once():
            miners = _miners(6, seed=26)
            sim = MiningSimulation(
                [bitcoin_spec(), bitcoin_cash_spec()],
                miners,
                _flat_rate,
                difficulty_rules={"BTC": BitcoinRetarget(window=24)},
                reevaluation_rate_per_h=4.0,
                seed=27,
            )
            return sim.run(48.0)

        first, second = run_once(), run_once()
        assert first.switches == second.switches
        assert first.fiat_by_miner == second.fiat_by_miner
        assert first.final_assignment == second.final_assignment
        for coin in ("BTC", "BCH"):
            assert first.blocks_found(coin) == second.blocks_found(coin)
            assert np.array_equal(
                first.hashrate_shares[coin], second.hashrate_shares[coin]
            )
