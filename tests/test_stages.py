"""Tests for the reward design stage machinery (Eq. 3, T_i, mover/anchor, Φ)."""

import pytest

from repro.core.configuration import Configuration
from repro.core.equilibrium import greedy_equilibrium
from repro.core.factories import random_game
from repro.core.game import Game
from repro.design.stages import (
    anchor_index,
    in_stage_set,
    intermediate_configuration,
    mover_index,
    ordered_miners,
    progress_rank,
    progress_vector,
)
from repro.exceptions import RewardDesignError


@pytest.fixture
def game():
    return random_game(5, 3, seed=1)


@pytest.fixture
def target(game):
    return greedy_equilibrium(game)


class TestOrderedMiners:
    def test_strictly_decreasing(self, game):
        miners = ordered_miners(game)
        for i in range(len(miners) - 1):
            assert miners[i].power > miners[i + 1].power

    def test_duplicate_powers_rejected(self):
        game = Game.create([2, 2, 1], [1, 2])
        with pytest.raises(RewardDesignError, match="strictly decreasing"):
            ordered_miners(game)


class TestIntermediateConfigurations:
    def test_equation3_structure(self, game, target):
        miners = ordered_miners(game)
        n = len(miners)
        for stage in range(1, n + 1):
            milestone = intermediate_configuration(game, target, stage)
            for k, miner in enumerate(miners, start=1):
                if k <= stage:
                    assert milestone.coin_of(miner) == target.coin_of(miner)
                else:
                    assert milestone.coin_of(miner) == target.coin_of(miners[stage - 1])

    def test_final_stage_is_target(self, game, target):
        n = len(game.miners)
        assert intermediate_configuration(game, target, n) == target

    def test_stage1_is_uniform(self, game, target):
        milestone = intermediate_configuration(game, target, 1)
        top_coin = target.coin_of(ordered_miners(game)[0])
        assert all(coin == top_coin for _, coin in milestone)

    def test_stage_bounds(self, game, target):
        with pytest.raises(RewardDesignError):
            intermediate_configuration(game, target, 0)
        with pytest.raises(RewardDesignError):
            intermediate_configuration(game, target, len(game.miners) + 1)


class TestStageSet:
    def test_milestones_are_members(self, game, target):
        for stage in range(2, len(game.miners) + 1):
            previous = intermediate_configuration(game, target, stage - 1)
            milestone = intermediate_configuration(game, target, stage)
            assert in_stage_set(game, target, stage, previous)
            assert in_stage_set(game, target, stage, milestone)

    def test_off_stage_configuration_excluded(self, game, target):
        miners = ordered_miners(game)
        stage = 2
        previous = intermediate_configuration(game, target, stage - 1)
        allowed = {
            target.coin_of(miners[stage - 1]),
            target.coin_of(miners[stage - 2]),
        }
        outside = [coin for coin in game.coins if coin not in allowed]
        if not outside:
            pytest.skip("all coins are stage coins for this target")
        escaped = previous.move(miners[-1], outside[0])
        assert not in_stage_set(game, target, stage, escaped)

    def test_stage1_has_no_set(self, game, target):
        config = intermediate_configuration(game, target, 1)
        with pytest.raises(RewardDesignError, match="i ≥ 2"):
            in_stage_set(game, target, 1, config)


class TestMoverAnchor:
    def test_mover_at_stage_start_is_last_miner(self, game, target):
        # The paper: m_i(s^{i-1}) = n.
        miners = ordered_miners(game)
        n = len(miners)
        for stage in range(2, n + 1):
            previous = intermediate_configuration(game, target, stage - 1)
            if previous == intermediate_configuration(game, target, stage):
                continue  # consecutive identical destinations: stage is trivial
            assert mover_index(game, target, stage, previous) == n

    def test_anchor_is_mover_minus_one(self, game, target):
        stage = 2
        previous = intermediate_configuration(game, target, stage - 1)
        if previous == intermediate_configuration(game, target, stage):
            pytest.skip("trivial stage")
        assert anchor_index(game, target, stage, previous) == mover_index(
            game, target, stage, previous
        ) - 1

    def test_mover_undefined_at_milestone(self, game, target):
        stage = 2
        milestone = intermediate_configuration(game, target, stage)
        dest = target.coin_of(ordered_miners(game)[stage - 1])
        # Only meaningful when every miner ends on dest (mover truly gone).
        if any(coin != dest for _, coin in milestone):
            pytest.skip("milestone keeps earlier miners elsewhere")
        with pytest.raises(RewardDesignError):
            mover_index(game, target, stage, milestone)


class TestProgress:
    def test_vector_length(self, game, target):
        stage = 2
        config = intermediate_configuration(game, target, stage - 1)
        vec = progress_vector(game, target, stage, config)
        assert len(vec) == len(game.miners) - stage + 1

    def test_rank_increases_toward_milestone(self, game, target):
        miners = ordered_miners(game)
        stage = 2
        previous = intermediate_configuration(game, target, stage - 1)
        milestone = intermediate_configuration(game, target, stage)
        if previous == milestone:
            pytest.skip("trivial stage")
        moved = previous.move(miners[-1], target.coin_of(miners[stage - 1]))
        assert progress_rank(game, target, stage, moved) > progress_rank(
            game, target, stage, previous
        )
        assert progress_rank(game, target, stage, milestone) >= progress_rank(
            game, target, stage, moved
        )
