"""Tests for the game model: payoffs, RPUs, better responses, stability.

The numeric fixtures come straight from Proposition 1's worked example
(powers [2,1], rewards [1,1]) so expected payoffs are the paper's own.
"""

from fractions import Fraction

import pytest

from repro.core.coin import RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.exceptions import InvalidConfigurationError, InvalidModelError


@pytest.fixture
def paper_game():
    """Proposition 1's game: m = [2, 1], F = [1, 1]."""
    return Game.create([2, 1], [1, 1])


@pytest.fixture
def s1(paper_game):
    c1 = paper_game.coins[0]
    return Configuration(paper_game.miners, [c1, c1])


@pytest.fixture
def s2(paper_game):
    c1, c2 = paper_game.coins
    return Configuration(paper_game.miners, [c1, c2])


class TestConstruction:
    def test_create_sorts_by_power(self):
        game = Game.create([1, 5, 3], [1])
        assert [float(m.power) for m in game.miners] == [5, 3, 1]

    def test_duplicate_miner_names_rejected(self):
        from repro.core.miner import Miner

        coins = make_coins(["c1"])
        rewards = RewardFunction.from_values(coins, [1])
        with pytest.raises(InvalidModelError, match="unique"):
            Game([Miner.of("p", 1), Miner.of("p", 2)], coins, rewards)

    def test_rewards_must_cover_coins(self):
        from repro.core.miner import make_miners

        coins = make_coins(["c1", "c2"])
        rewards = RewardFunction.from_values(make_coins(["c1"]), [1])
        with pytest.raises(InvalidModelError, match="cover"):
            Game(make_miners([1]), coins, rewards)

    def test_with_rewards_shares_system(self, paper_game):
        doubled = RewardFunction.from_values(paper_game.coins, [2, 2])
        derived = paper_game.with_rewards(doubled)
        assert derived.miners == paper_game.miners
        assert derived.rewards[paper_game.coins[0]] == 2

    def test_named_lookups(self, paper_game):
        assert paper_game.miner_named("p1").power == 2
        assert paper_game.coin_named("c2").name == "c2"
        with pytest.raises(InvalidModelError):
            paper_game.miner_named("nobody")
        with pytest.raises(InvalidModelError):
            paper_game.coin_named("nocoin")

    def test_configuration_builder(self, paper_game):
        config = paper_game.configuration(["c1", "c2"])
        assert config.coin_of(paper_game.miners[0]).name == "c1"


class TestPaperPayoffs:
    """The four configurations of Proposition 1, payoff by payoff."""

    def test_s1_shared_coin(self, paper_game, s1):
        p1, p2 = paper_game.miners
        assert paper_game.payoff(p1, s1) == Fraction(2, 3)
        assert paper_game.payoff(p2, s1) == Fraction(1, 3)

    def test_s2_split(self, paper_game, s2):
        p1, p2 = paper_game.miners
        assert paper_game.payoff(p1, s2) == 1
        assert paper_game.payoff(p2, s2) == 1

    def test_rpu(self, paper_game, s1, s2):
        c1, c2 = paper_game.coins
        assert paper_game.rpu(c1, s1) == Fraction(1, 3)
        assert paper_game.rpu(c2, s1) is None, "empty coin has no RPU"
        assert paper_game.rpu(c1, s2) == Fraction(1, 2)
        assert paper_game.rpu(c2, s2) == 1

    def test_max_rpu_skips_empty(self, paper_game, s1):
        assert paper_game.max_rpu(s1) == Fraction(1, 3)

    def test_social_welfare(self, paper_game, s1, s2):
        assert paper_game.social_welfare(s1) == 1, "one coin unmined"
        assert paper_game.social_welfare(s2) == 2

    def test_payoff_after_move_consistency(self, paper_game, s1):
        p2 = paper_game.miners[1]
        c2 = paper_game.coins[1]
        moved = s1.move(p2, c2)
        assert paper_game.payoff_after_move(p2, c2, s1) == paper_game.payoff(p2, moved)

    def test_payoff_after_move_same_coin(self, paper_game, s1):
        p2 = paper_game.miners[1]
        c1 = paper_game.coins[0]
        assert paper_game.payoff_after_move(p2, c1, s1) == paper_game.payoff(p2, s1)


class TestBetterResponse:
    def test_p2_improves_by_leaving(self, paper_game, s1):
        p2 = paper_game.miners[1]
        c2 = paper_game.coins[1]
        assert paper_game.is_better_response(p2, c2, s1)
        assert paper_game.better_response_moves(p2, s1) == (c2,)

    def test_s2_is_stable(self, paper_game, s2):
        assert paper_game.is_stable(s2)
        assert paper_game.unstable_miners(s2) == ()

    def test_s1_is_unstable(self, paper_game, s1):
        assert not paper_game.is_stable(s1)
        unstable = paper_game.unstable_miners(s1)
        assert paper_game.miners[1] in unstable

    def test_best_response(self, paper_game, s1):
        p2 = paper_game.miners[1]
        assert paper_game.best_response(p2, s1) == paper_game.coins[1]
        assert paper_game.best_response(p2, s1.move(p2, paper_game.coins[1])) is None

    def test_staying_is_never_a_better_response(self, paper_game, s1):
        p1 = paper_game.miners[0]
        assert not paper_game.is_better_response(p1, s1.coin_of(p1), s1)


class TestFastPathEquivalence:
    """The cached-power methods must agree with the reference ones."""

    @pytest.mark.parametrize("seed", range(5))
    def test_unstable_sets_match(self, seed):
        game = random_game(8, 3, seed=seed)
        config = random_configuration(game, seed=seed + 100)
        powers = game.coin_power_map(config)
        assert game.unstable_miners_given(config, powers) == game.unstable_miners(config)

    @pytest.mark.parametrize("seed", range(5))
    def test_moves_match(self, seed):
        game = random_game(6, 4, seed=seed)
        config = random_configuration(game, seed=seed + 100)
        powers = game.coin_power_map(config)
        for miner in game.miners:
            assert game.better_response_moves_given(
                miner, config, powers
            ) == game.better_response_moves(miner, config)

    def test_power_map_totals(self):
        game = random_game(10, 3, seed=1)
        config = random_configuration(game, seed=2)
        powers = game.coin_power_map(config)
        assert sum(powers.values()) == game.total_power()


class TestValidation:
    def test_foreign_configuration_rejected(self, paper_game):
        other = random_game(3, 2, seed=0)
        config = random_configuration(other, seed=1)
        with pytest.raises(InvalidConfigurationError):
            paper_game.validate_configuration(config)

    def test_enumeration_count(self, paper_game):
        assert paper_game.configuration_count() == 4
        assert len(list(paper_game.all_configurations())) == 4
