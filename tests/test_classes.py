"""Parity wall for the population-compressed class kernel.

The class kernel re-represents a configuration as an integer count
matrix (miners per (power, alphabet) class × coin). These tests pin its
central promise — *compression changes the representation, never the
game* — differentially against the two established exact engines:

* **Enumeration parity** — stable count profiles orbit-expand
  bit-for-bit to :class:`ConfigSpace`'s equilibrium code sets, masked
  and unmasked, on a 100+-game sweep plus a hypothesis sweep of random
  games × random hardware masks.
* **Trajectory parity** — with every class a singleton the count-level
  stepper consumes the *same RNG draw sequence* as the per-miner
  engine; with populated classes its deterministic modes match the
  per-miner engine under a class-canonical scheduler step for step.
* **View parity** — ``backend="class"`` (the memoizing
  :class:`ClassView`) is trajectory- and draw-identical to
  ``backend="fast"`` for standard and custom strategies.
* **Chunking soundness** — the closed-form maximal run length of
  :meth:`ClassGame.max_chunk` is exactly the number of successively
  improving single moves, verified move by move.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.core.restricted import RestrictedGame
from repro.exceptions import InvalidConfigurationError, InvalidModelError
from repro.kernel.classes import (
    CLASS_POLICIES,
    ClassGame,
    ClassView,
    run_class_better_response,
    run_class_simultaneous,
)
from repro.kernel.space import ConfigSpace
from repro.learning.engine import LearningEngine
from repro.learning.policies import (
    BestResponsePolicy,
    BetterResponsePolicy,
    FirstImprovingPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.learning.schedulers import ActivationScheduler, UniformRandomScheduler
from repro.learning.simultaneous import run_simultaneous
from repro.run import RunSpec, run_many

# ----------------------------------------------------------------------
# The sweep: deterministic games with real compression (repeated powers)
# ----------------------------------------------------------------------

POWER_POOL = [Fraction(1), Fraction(2), Fraction(3), Fraction(5), Fraction(1, 2)]
REWARD_POOL = [Fraction(1), Fraction(2), Fraction(3), Fraction(5), Fraction(7)]

N_UNMASKED = 56
N_MASKED = 52
SWEEP = list(range(N_UNMASKED + N_MASKED))


def sweep_case(case):
    """Game #case of the sweep: tie-heavy powers/rewards, mask for the
    second half. Deterministic in *case*."""
    rng = np.random.default_rng(10_000 + case)
    n = int(rng.integers(3, 7))
    k = int(rng.integers(2, 4))
    powers = [POWER_POOL[int(rng.integers(0, len(POWER_POOL)))] for _ in range(n)]
    rewards = [REWARD_POOL[int(rng.integers(0, len(REWARD_POOL)))] for _ in range(k)]
    game = Game.create(powers=powers, reward_values=rewards)
    allowed = None
    if case >= N_UNMASKED:
        allowed = {}
        for miner in game.miners:
            size = int(rng.integers(1, k + 1))
            picks = sorted(rng.choice(k, size=size, replace=False).tolist())
            allowed[miner] = [game.coins[j] for j in picks]
    return game, allowed


def expanded_is_stable(game, allowed, cgame, counts):
    """Per-miner stability verdict of a count matrix, via the canonical
    orbit representative on the exact kernel."""
    assign = cgame.assignment_of_counts(counts)
    config = Configuration(game.miners, [game.coins[j] for j in assign])
    if allowed is None:
        return game.is_stable(config)
    return RestrictedGame(game, allowed).is_stable(config)


@pytest.mark.parametrize("case", SWEEP)
def test_class_kernel_matches_config_space(case):
    """The wall: classes ≡ symmetry blocks, stable profiles ≡ stable
    orbits, orbit expansion ≡ the per-miner equilibrium count."""
    game, allowed = sweep_case(case)
    cgame = ClassGame.from_game(game, allowed=allowed)
    space = ConfigSpace(game, allowed=allowed)

    # Classes are exactly ConfigSpace's symmetry blocks, same order.
    assert cgame.members == tuple(indices for indices, _, _ in space._blocks)
    assert tuple(cgame.powers) == tuple(power for _, power, _ in space._blocks)
    assert cgame.alphabets == tuple(alphabet for _, _, alphabet in space._blocks)
    assert cgame.profile_count() == space.orbit_count()

    stable = cgame.stable_profiles()
    codes = space.stable_codes()

    # Orbit expansion: profile multiplicities cover every per-miner
    # equilibrium exactly once.
    assert sum(cgame.orbit_size(profile) for profile in stable) == len(codes)

    # And the profiles are the canonical representatives of exactly the
    # stable orbits — content equality, not just counting.
    profile_codes = {
        space.encode(cgame.assignment_of_counts(profile)) for profile in stable
    }
    orbit_codes = {space.canonical_code(space.decode(code)) for code in codes}
    assert profile_codes == orbit_codes

    # Stability verdicts agree on random (mostly unstable) states too.
    rng = np.random.default_rng(900 + case)
    for _ in range(5):
        counts = cgame.random_counts(seed=rng)
        assert cgame.is_stable_counts(counts) == expanded_is_stable(
            game, allowed, cgame, counts
        )

    # The stepper converges to a true equilibrium, chunked or not.
    for chunk in (False, True):
        trajectory = run_class_better_response(
            cgame, cgame.random_counts(seed=rng), seed=rng, chunk=chunk
        )
        assert trajectory.converged
        assert cgame.is_stable_counts(trajectory.final)
        assert expanded_is_stable(game, allowed, cgame, trajectory.final)


# ----------------------------------------------------------------------
# Hypothesis: random games × random masks, spec round-trips
# ----------------------------------------------------------------------


@st.composite
def class_sweep_games(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    k = draw(st.integers(min_value=2, max_value=3))
    powers = draw(
        st.lists(st.sampled_from(POWER_POOL), min_size=n, max_size=n)
    )
    rewards = draw(
        st.lists(st.sampled_from(REWARD_POOL), min_size=k, max_size=k)
    )
    masks = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.sets(
                    st.integers(min_value=0, max_value=k - 1), min_size=1, max_size=k
                ),
                min_size=n,
                max_size=n,
            ),
        )
    )
    return powers, rewards, masks


@settings(max_examples=40, deadline=None)
@given(class_sweep_games(), st.integers(min_value=0, max_value=2**31 - 1))
def test_class_kernel_equilibria_property(data, run_seed):
    powers, rewards, masks = data
    game = Game.create(powers=powers, reward_values=rewards)
    allowed = (
        None
        if masks is None
        else {
            miner: [game.coins[j] for j in sorted(mask)]
            for miner, mask in zip(game.miners, masks)
        }
    )
    cgame = ClassGame.from_game(game, allowed=allowed)
    space = ConfigSpace(game, allowed=allowed)
    stable = cgame.stable_profiles()
    codes = space.stable_codes()
    assert sum(cgame.orbit_size(profile) for profile in stable) == len(codes)
    profile_codes = {
        space.encode(cgame.assignment_of_counts(profile)) for profile in stable
    }
    assert profile_codes == {space.canonical_code(space.decode(c)) for c in codes}

    trajectory = run_class_better_response(
        cgame, cgame.random_counts(seed=run_seed), seed=run_seed, chunk=True
    )
    assert trajectory.converged
    assert trajectory.final in set(stable)


@settings(max_examples=30, deadline=None)
@given(class_sweep_games(), st.integers(min_value=0, max_value=2**31 - 1))
def test_from_spec_equals_from_game(data, run_seed):
    """A spec-built twin of a compressed game is indistinguishable:
    same normalization, same equilibria, same seeded trajectories."""
    powers, rewards, masks = data
    game = Game.create(powers=powers, reward_values=rewards)
    allowed = (
        None
        if masks is None
        else {
            miner: [game.coins[j] for j in sorted(mask)]
            for miner, mask in zip(game.miners, masks)
        }
    )
    cgame = ClassGame.from_game(game, allowed=allowed)
    twin = ClassGame.from_spec(
        [(power, alphabet, count) for power, alphabet, count in cgame.spec()],
        rewards=cgame.reward_fractions,
        coin_names=cgame.coin_names,
    )
    assert twin.spec() == cgame.spec()
    assert twin.powers == cgame.powers
    assert twin.rewards == cgame.rewards
    assert twin.stable_profiles() == cgame.stable_profiles()
    for policy in CLASS_POLICIES:
        start = cgame.random_counts(seed=run_seed)
        a = run_class_better_response(cgame, start, policy=policy, seed=run_seed)
        b = run_class_better_response(twin, start, policy=policy, seed=run_seed)
        assert (a.steps, a.moved, a.final) == (b.steps, b.moved, b.final)


# ----------------------------------------------------------------------
# Trajectory parity against the per-miner engine
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_singleton_classes_are_draw_for_draw_identical(seed):
    """All-distinct powers ⇒ every class a singleton ⇒ the class stepper
    and the per-miner engine consume the same RNG stream and walk the
    same path."""
    game = random_game(5, 3, seed=seed)  # strict_powers ⇒ singletons
    cgame = ClassGame.from_game(game)
    assert cgame.n_classes == len(game.miners)
    start = random_configuration(game, seed=seed)

    rng_miner = np.random.default_rng(seed)
    rng_class = np.random.default_rng(seed)
    engine = LearningEngine(record="summary")
    per_miner = engine.run(game, start, seed=rng_miner)
    compressed = run_class_better_response(
        cgame, cgame.counts_of(start), seed=rng_class
    )
    assert compressed.converged and per_miner.converged
    assert compressed.steps == per_miner.length
    assert compressed.final == tuple(
        tuple(row) for row in cgame.counts_of(per_miner.final)
    )
    # Same number of draws, same values: the streams end in lockstep.
    assert int(rng_miner.integers(0, 2**62)) == int(rng_class.integers(0, 2**62))


class CanonicalPairScheduler(ActivationScheduler):
    """Per-miner twin of the class stepper's ``first-unstable`` order:
    activate the unstable miner whose (class, current coin) pair is
    canonically first."""

    name = "canonical-pair"

    def __init__(self, cgame: ClassGame):
        self.cgame = cgame

    def pick_view(self, view, unstable, rng):
        index = view.kernel.miner_index
        class_of = self.cgame.class_of
        return min(
            unstable, key=lambda miner: (class_of[index[miner]], view.assign[index[miner]])
        )


@pytest.mark.parametrize("case", [0, 3, 17, 31, 60, 77, 95])
@pytest.mark.parametrize(
    "policy_name, policy_factory",
    [
        ("best-response", BestResponsePolicy),
        ("first-improving", FirstImprovingPolicy),
        ("minimal-gain", MinimalGainPolicy),
    ],
)
def test_populated_classes_match_canonical_per_miner_engine(
    case, policy_name, policy_factory
):
    """With multiple miners per class, deterministic class dynamics
    match the per-miner engine step for step under the class-canonical
    activation order."""
    game, allowed = sweep_case(case)
    cgame = ClassGame.from_game(game, allowed=allowed)
    start = random_configuration(game, seed=case)
    if allowed is not None:
        # Project the start into the mask: first allowed coin per miner.
        start = Configuration(
            game.miners,
            [
                allowed[miner][0] if start.coin_of(miner) not in allowed[miner] else start.coin_of(miner)
                for miner in game.miners
            ],
        )
    engine = LearningEngine(
        policy=policy_factory(),
        scheduler=CanonicalPairScheduler(cgame),
        record="summary",
    )
    per_miner = engine.run(game, start, seed=0, allowed=allowed)
    compressed = run_class_better_response(
        cgame,
        cgame.counts_of(start),
        policy=policy_name,
        scheduler="first-unstable",
        seed=0,
    )
    assert compressed.converged and per_miner.converged
    assert compressed.steps == per_miner.length
    assert compressed.final == tuple(
        tuple(row) for row in cgame.counts_of(per_miner.final)
    )


# ----------------------------------------------------------------------
# Chunking: the closed form is exactly the maximal improving run
# ----------------------------------------------------------------------


@pytest.mark.parametrize("case", [1, 9, 23, 42, 71, 88, 104])
def test_max_chunk_is_the_exact_maximal_improving_run(case):
    game, allowed = sweep_case(case)
    cgame = ClassGame.from_game(game, allowed=allowed)
    rng = np.random.default_rng(case)
    checked = 0
    for _ in range(12):
        counts = cgame.random_counts(seed=rng)
        mass = cgame.mass_of(counts)
        for k, src in cgame.unstable_pairs(counts, mass):
            for dst in cgame.better_targets(k, src, mass):
                available = counts[k][src]
                q = cgame.max_chunk(k, src, dst, mass, available)
                assert 1 <= q <= available
                # Each of the q single moves is improving at its state…
                work = list(mass)
                power = cgame.powers[k]
                for _step in range(q):
                    assert cgame.improving(k, src, dst, work)
                    work[src] -= power
                    work[dst] += power
                # …and the (q+1)-th is not (unless the class ran out).
                if q < available:
                    assert not cgame.improving(k, src, dst, work)
                checked += 1
    assert checked > 0


def test_chunked_runs_converge_on_large_populations():
    cgame = ClassGame.from_spec(
        [
            (1, None, 400_000),
            (5, None, 300_000),
            (25, (0, 1), 200_000),
            (100, (1, 2, 3), 100_000),
        ],
        rewards=[10, 7, 5, 3],
    )
    trajectory = run_class_better_response(
        cgame, cgame.random_counts(seed=5), seed=5, chunk=True
    )
    assert trajectory.converged
    assert cgame.is_stable_counts(trajectory.final)
    # Chunking is the point: macro steps ≪ miners moved.
    assert trajectory.steps < 1_000 < trajectory.moved
    # Population conservation, per class.
    for k, row in enumerate(trajectory.final):
        assert sum(row) == cgame.populations[k]
        for j, value in enumerate(row):
            assert value == 0 or j in cgame.alphabets[k]


# ----------------------------------------------------------------------
# Simultaneous rounds
# ----------------------------------------------------------------------


@pytest.mark.parametrize("case", [2, 8, 19, 40, 64, 81, 99])
def test_simultaneous_counts_match_per_miner_rounds(case):
    """At ``inertia=0`` the count-level synchronous dynamic reproduces
    the per-miner one round for round — including cycles."""
    game, allowed = sweep_case(case)
    if allowed is not None:
        return  # the per-miner simultaneous dynamic is unmasked-only
    cgame = ClassGame.from_game(game)
    start = random_configuration(game, seed=case)
    per_miner = run_simultaneous(game, start, max_rounds=60)
    compressed = run_class_simultaneous(cgame, cgame.counts_of(start), max_rounds=60)
    assert compressed.converged == per_miner.converged
    assert compressed.cycled == per_miner.cycled
    assert compressed.cycle_start == per_miner.cycle_start
    assert compressed.rounds == per_miner.rounds
    for config, profile in zip(per_miner.configurations, compressed.profiles):
        assert tuple(tuple(row) for row in cgame.counts_of(config)) == profile


def test_simultaneous_inertia_smoke():
    cgame = ClassGame.from_spec(
        [(1, None, 1_000), (4, None, 500)], rewards=[3, 2, 1]
    )
    result = run_class_simultaneous(
        cgame, cgame.random_counts(seed=1), inertia=0.5, seed=1, max_rounds=200
    )
    for profile in result.profiles:
        for k, row in enumerate(profile):
            assert sum(row) == cgame.populations[k]
    with pytest.raises(ValueError):
        run_class_simultaneous(cgame, cgame.random_counts(seed=1), inertia=1.0)
    with pytest.raises(ValueError):
        run_class_simultaneous(cgame, cgame.random_counts(seed=1), max_rounds=0)


# ----------------------------------------------------------------------
# backend="class": the memoizing view
# ----------------------------------------------------------------------


class RpuOrRandomPolicy(BetterResponsePolicy):
    """Custom policy that exercises inherited helpers *and* RNG draws."""

    name = "rpu-or-random"

    def choose_view(self, view, miner, rng):
        moves = view.improving_moves(miner)
        if not moves:
            return None
        if rng.random() < 0.5:
            return view.max_rpu_move(miner, moves)
        return moves[int(rng.integers(0, len(moves)))]


@pytest.mark.parametrize("case", [4, 12, 27, 45, 66, 83, 101])
def test_class_backend_is_draw_identical_to_fast(case):
    game, allowed = sweep_case(case)
    start = random_configuration(game, seed=case)
    if allowed is not None:
        start = Configuration(
            game.miners,
            [
                allowed[miner][0]
                if start.coin_of(miner) not in allowed[miner]
                else start.coin_of(miner)
                for miner in game.miners
            ],
        )
    for policy in (RandomImprovingPolicy(), BestResponsePolicy(), RpuOrRandomPolicy()):
        rng_fast = np.random.default_rng(case)
        rng_class = np.random.default_rng(case)
        fast = LearningEngine(policy=policy, backend="fast").run(
            game, start, seed=rng_fast, allowed=allowed
        )
        compressed = LearningEngine(policy=policy, backend="class").run(
            game, start, seed=rng_class, allowed=allowed
        )
        assert fast.converged and compressed.converged
        assert len(fast.steps) == len(compressed.steps)
        for a, b in zip(fast.steps, compressed.steps):
            assert (a.miner, a.source, a.target) == (b.miner, b.source, b.target)
            assert a.payoff_before == b.payoff_before
            assert a.payoff_after == b.payoff_after
        assert fast.configurations == compressed.configurations
        assert int(rng_fast.integers(0, 2**62)) == int(rng_class.integers(0, 2**62))


def test_class_view_answers_match_kernel_view_along_a_path():
    game, _ = sweep_case(7)
    start = random_configuration(game, seed=7)
    from repro.kernel.engine import KernelView

    fast = KernelView(game, start)
    view = ClassView(game, start)
    rng = np.random.default_rng(7)
    for _ in range(40):
        assert view.is_stable() == fast.is_stable()
        unstable = view.unstable_miners()
        assert unstable == fast.unstable_miners()
        if not unstable:
            break
        for miner in game.miners:
            assert view.improving_moves(miner) == fast.improving_moves(miner)
            assert view.best_response(miner) == fast.best_response(miner)
            assert view.payoff(miner) == fast.payoff(miner)
        mover = unstable[int(rng.integers(0, len(unstable)))]
        moves = view.improving_moves(mover)
        target = moves[int(rng.integers(0, len(moves)))]
        view.apply(mover, target)
        fast.apply(mover, target)
    assert view.configuration() == fast.configuration()


# ----------------------------------------------------------------------
# run_many: the kind="classes" route
# ----------------------------------------------------------------------


def test_run_many_classes_route_is_deterministic_and_stable():
    game, _ = sweep_case(13)
    big = ClassGame.from_spec(
        [(1, None, 50_000), (9, (0, 1), 25_000)], rewards=[4, 3, 2]
    )
    cells = [
        RunSpec(game=game, runs=6, kind="classes", seed=3),
        RunSpec(game=big, runs=4, kind="classes", policy="best-response", seed=4),
    ]
    first = run_many(cells)
    second = run_many(cells)
    assert first == second
    compressed = ClassGame.from_game(game)
    for result in first[0]:
        assert result.converged
        assert compressed.is_stable_counts(result.final)
        assert result.policy == "random-improving" and result.scheduler == "uniform"
    for result in first[1]:
        assert result.converged
        assert big.is_stable_counts(result.final)
        assert result.policy == "best-response"
    assert [r.run_index for r in first[0]] == list(range(6))


def test_run_many_classes_cell_validation():
    game, _ = sweep_case(13)
    big = ClassGame.from_spec([(1, None, 10)], rewards=[2, 1])
    with pytest.raises(ValueError):
        RunSpec(game=game, runs=2, kind="classes", policy=RandomImprovingPolicy())
    with pytest.raises(ValueError):
        RunSpec(game=game, runs=2, kind="classes", scheduler=UniformRandomScheduler())
    with pytest.raises(ValueError):
        run_many(
            [RunSpec(game=big, runs=1, kind="classes", allowed={"t1": [0]})]
        )
    with pytest.raises(ValueError):
        run_class_better_response(
            ClassGame.from_game(game), ClassGame.from_game(game).random_counts(), policy="nope"
        )
    with pytest.raises(ValueError):
        run_class_better_response(
            ClassGame.from_game(game), ClassGame.from_game(game).random_counts(), scheduler="nope"
        )


# ----------------------------------------------------------------------
# Validation and error surfaces
# ----------------------------------------------------------------------


def test_from_spec_validation():
    with pytest.raises(InvalidModelError, match="at least one coin"):
        ClassGame.from_spec([(1, None, 5)], rewards=[])
    with pytest.raises(InvalidModelError, match="at least one class"):
        ClassGame.from_spec([], rewards=[1, 2])
    with pytest.raises(InvalidModelError, match="empty: count"):
        ClassGame.from_spec([(1, None, 0)], rewards=[1, 2])
    with pytest.raises(InvalidModelError, match="count must be an int"):
        ClassGame.from_spec([(1, None, 2.5)], rewards=[1, 2])
    with pytest.raises(InvalidModelError, match="count must be an int"):
        ClassGame.from_spec([(1, None, True)], rewards=[1, 2])
    with pytest.raises(InvalidModelError, match="empty allowed set"):
        ClassGame.from_spec([(1, (), 5)], rewards=[1, 2])
    with pytest.raises(InvalidModelError, match="outside"):
        ClassGame.from_spec([(1, (0, 2), 5)], rewards=[1, 2])
    with pytest.raises(InvalidModelError, match="overflows"):
        ClassGame.from_spec([(1, None, 10**12 + 1)], rewards=[1, 2])
    with pytest.raises(InvalidModelError, match="coin names"):
        ClassGame.from_spec([(1, None, 5)], rewards=[1, 2], coin_names=["only"])

    # Duplicate (power, alphabet) entries merge into one class.
    merged = ClassGame.from_spec(
        [(1, None, 2), (2, (0,), 3), (1, None, 4)], rewards=[1, 2]
    )
    assert merged.n_classes == 2
    assert merged.populations == (6, 3)

    # Spec-built games have no per-miner side.
    with pytest.raises(InvalidModelError, match="built from a spec"):
        merged.assignment_of_counts([[6, 0], [3, 0]])


def test_from_game_rejects_double_masking():
    game, _ = sweep_case(0)
    restricted = RestrictedGame(
        game, {miner: list(game.coins) for miner in game.miners}
    )
    with pytest.raises(InvalidModelError, match="not both"):
        ClassGame.from_game(restricted, allowed={game.miners[0]: [game.coins[0]]})
    # A RestrictedGame alone compresses on its own mask.
    assert ClassGame.from_game(restricted).total_miners == len(game.miners)


def test_validate_counts_rejects_malformed_states():
    cgame = ClassGame.from_spec(
        [(1, (0, 1), 4), (3, (1, 2), 2)], rewards=[1, 2, 3]
    )
    cgame.validate_counts([[2, 2, 0], [0, 1, 1]])
    with pytest.raises(InvalidConfigurationError, match="rows"):
        cgame.validate_counts([[4, 0, 0]])
    with pytest.raises(InvalidConfigurationError, match="entries"):
        cgame.validate_counts([[4, 0], [0, 1, 1]])
    with pytest.raises(InvalidConfigurationError, match="must be an int"):
        cgame.validate_counts([[2.0, 2, 0], [0, 1, 1]])
    with pytest.raises(InvalidConfigurationError, match="negative"):
        cgame.validate_counts([[5, -1, 0], [0, 1, 1]])
    with pytest.raises(InvalidConfigurationError, match="mask"):
        cgame.validate_counts([[3, 0, 1], [0, 1, 1]])
    with pytest.raises(InvalidConfigurationError, match="sum"):
        cgame.validate_counts([[2, 1, 0], [0, 1, 1]])


def test_class_payoffs_and_compression_reporting():
    cgame = ClassGame.from_spec(
        [(2, None, 30), (1, None, 10)], rewards=[6, 3]
    )
    assert cgame.compression == 20.0
    counts = [[20, 10], [0, 10]]
    payoffs = cgame.class_payoffs(counts)
    # Mass on c1 = 40, on c2 = 30: one power-2 miner earns 2·6/40 on c1.
    assert payoffs[0]["c1"] == Fraction(2 * 6, 40)
    assert payoffs[0]["c2"] == Fraction(2 * 3, 30)
    assert "c1" not in payoffs[1]
    assert payoffs[1]["c2"] == Fraction(1 * 3, 30)
    # Uniform-start multinomial respects alphabets and populations.
    counts = cgame.random_counts(seed=9)
    for k, row in enumerate(counts):
        assert sum(row) == cgame.populations[k]


# ----------------------------------------------------------------------
# Analysis helpers over the compressed lane
# ----------------------------------------------------------------------


def test_class_analysis_helpers():
    from repro.analysis import class_basin_profile, measure_class_convergence

    game, _ = sweep_case(21)
    stats = measure_class_convergence(game, runs=12, seed=2)
    assert stats.runs == 12
    assert stats.potential_monotone_fraction == 1.0
    assert stats.max_steps >= stats.median_steps >= 0

    cgame = ClassGame.from_game(game)
    profile = class_basin_profile(cgame, samples=30, seed=2)
    assert profile.samples == 30
    assert sum(profile.counts.values()) == 30
    stable = set(cgame.stable_profiles())
    assert set(profile.counts) <= stable
    for landed, size in profile.orbit_sizes.items():
        assert size == cgame.orbit_size(landed)
    dominant, share = profile.dominant()
    assert dominant in profile.counts and 0 < share <= 1
    assert profile.entropy() >= 0
    assert abs(sum(profile.frequencies.values()) - 1.0) < 1e-9

    with pytest.raises(ValueError):
        measure_class_convergence(game, runs=0)
    with pytest.raises(ValueError):
        class_basin_profile(game, samples=0)
    with pytest.raises(ValueError, match="allowed"):
        class_basin_profile(cgame, samples=2, allowed={})
