"""Tests for exchange-rate processes."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.market.exchange_rates import (
    ConstantRate,
    GeometricBrownianRate,
    JumpDiffusionRate,
    JumpEvent,
    btc_bch_november_2017,
)


TIMES = np.arange(0.0, 48.0, 1.0)


class TestConstantRate:
    def test_flat(self):
        path = ConstantRate(100.0).sample(TIMES)
        assert np.all(path == 100.0)

    def test_positive_required(self):
        with pytest.raises(SimulationError):
            ConstantRate(0.0)


class TestGbm:
    def test_starts_at_initial(self):
        path = GeometricBrownianRate(initial=50.0).sample(TIMES, seed=1)
        assert path[0] == pytest.approx(50.0)

    def test_always_positive(self):
        path = GeometricBrownianRate(initial=1.0, volatility_per_sqrt_h=0.5).sample(
            TIMES, seed=2
        )
        assert np.all(path > 0)

    def test_reproducible(self):
        gbm = GeometricBrownianRate(initial=10.0)
        assert np.array_equal(gbm.sample(TIMES, seed=3), gbm.sample(TIMES, seed=3))

    def test_zero_vol_is_deterministic_drift(self):
        gbm = GeometricBrownianRate(initial=10.0, drift_per_h=0.01, volatility_per_sqrt_h=0.0)
        path = gbm.sample(TIMES, seed=4)
        assert path[-1] == pytest.approx(10.0 * np.exp(0.01 * (TIMES[-1] - TIMES[0])))

    def test_decreasing_grid_rejected(self):
        gbm = GeometricBrownianRate(initial=10.0)
        with pytest.raises(SimulationError, match="non-decreasing"):
            gbm.sample([2.0, 1.0], seed=0)

    def test_empty_grid(self):
        assert len(GeometricBrownianRate(initial=1.0).sample([], seed=0)) == 0


class TestJumps:
    def test_permanent_jump(self):
        base = GeometricBrownianRate(initial=10.0, volatility_per_sqrt_h=0.0)
        process = JumpDiffusionRate(base=base, jumps=(JumpEvent(at_h=10.0, factor=2.0),))
        path = process.sample(TIMES, seed=0)
        assert path[5] == pytest.approx(10.0)
        assert path[20] == pytest.approx(20.0)
        assert path[-1] == pytest.approx(20.0)

    def test_decaying_jump_reverts(self):
        base = GeometricBrownianRate(initial=10.0, volatility_per_sqrt_h=0.0)
        process = JumpDiffusionRate(
            base=base, jumps=(JumpEvent(at_h=10.0, factor=3.0, half_life_h=5.0),)
        )
        path = process.sample(TIMES, seed=0)
        assert path[10] == pytest.approx(30.0)
        assert path[15] == pytest.approx(20.0)  # one half-life: 1 + 2/2
        assert path[-1] < 12.0

    def test_jump_factor_validated(self):
        with pytest.raises(SimulationError):
            JumpEvent(at_h=1.0, factor=0.0)


class TestNovember2017:
    def test_shapes(self):
        times, btc, bch = btc_bch_november_2017(horizon_h=240, resolution_h=2)
        assert len(times) == 121
        btc_path = btc.sample(times, seed=1)
        bch_path = bch.sample(times, seed=2)
        assert len(btc_path) == len(times) == len(bch_path)

    def test_bch_spikes_about_3x(self):
        times, _, bch = btc_bch_november_2017()
        path = bch.sample(times, seed=3)
        pre = path[times < 90].mean()
        peak = path[times >= 96].max()
        assert 2.0 < peak / pre < 4.5

    def test_bad_params_rejected(self):
        with pytest.raises(SimulationError):
            btc_bch_november_2017(horizon_h=0)
