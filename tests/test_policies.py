"""Tests for better-response policies."""

import numpy as np
import pytest

from repro.core.factories import random_configuration, random_game
from repro.learning.policies import (
    STANDARD_POLICIES,
    BestResponsePolicy,
    EpsilonGreedyPolicy,
    FirstImprovingPolicy,
    MaxRpuPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)

ALL_POLICIES = list(STANDARD_POLICIES) + [
    FirstImprovingPolicy(),
    EpsilonGreedyPolicy(0.5),
]


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def game():
    return random_game(6, 3, seed=7)


def _an_unstable_state(game, seed=0):
    for offset in range(50):
        config = random_configuration(game, seed=seed + offset)
        unstable = game.unstable_miners(config)
        if unstable:
            return config, unstable[0]
    raise AssertionError("could not find an unstable configuration")


class TestContract:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_returns_improving_move(self, policy, game, rng):
        config, miner = _an_unstable_state(game)
        choice = policy.choose(game, config, miner, rng)
        assert choice is not None
        assert game.is_better_response(miner, choice, config)

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_returns_none_when_stable(self, policy, game, rng):
        from repro.core.equilibrium import greedy_equilibrium

        equilibrium = greedy_equilibrium(game)
        for miner in game.miners:
            assert policy.choose(game, equilibrium, miner, rng) is None


class TestSpecifics:
    def test_best_response_maximizes(self, game, rng):
        config, miner = _an_unstable_state(game)
        choice = BestResponsePolicy().choose(game, config, miner, rng)
        best = max(
            game.payoff_after_move(miner, coin, config) for coin in game.coins
        )
        assert game.payoff_after_move(miner, choice, config) == best

    def test_minimal_gain_minimizes(self, game, rng):
        config, miner = _an_unstable_state(game)
        choice = MinimalGainPolicy().choose(game, config, miner, rng)
        gains = {
            coin: game.payoff_after_move(miner, coin, config) - game.payoff(miner, config)
            for coin in game.better_response_moves(miner, config)
        }
        assert gains[choice] == min(gains.values())

    def test_minimal_not_worse_than_best(self, game, rng):
        config, miner = _an_unstable_state(game)
        minimal = MinimalGainPolicy().choose(game, config, miner, rng)
        best = BestResponsePolicy().choose(game, config, miner, rng)
        assert game.payoff_after_move(miner, minimal, config) <= game.payoff_after_move(
            miner, best, config
        )

    def test_max_rpu_picks_highest_post_move_rpu(self, game, rng):
        config, miner = _an_unstable_state(game)
        choice = MaxRpuPolicy().choose(game, config, miner, rng)
        moves = game.better_response_moves(miner, config)
        rpus = {
            coin: game.rewards[coin] / (game.coin_power(coin, config) + miner.power)
            for coin in moves
        }
        assert rpus[choice] == max(rpus.values())

    def test_first_improving_deterministic(self, game, rng):
        config, miner = _an_unstable_state(game)
        policy = FirstImprovingPolicy()
        assert policy.choose(game, config, miner, rng) == policy.choose(
            game, config, miner, np.random.default_rng(99)
        )

    def test_epsilon_bounds_validated(self):
        with pytest.raises(ValueError, match="epsilon"):
            EpsilonGreedyPolicy(1.5)

    def test_random_improving_covers_all_moves(self, game):
        config, miner = _an_unstable_state(game)
        moves = set(game.better_response_moves(miner, config))
        if len(moves) < 2:
            pytest.skip("need a state with ≥ 2 improving moves")
        seen = {
            RandomImprovingPolicy().choose(game, config, miner, np.random.default_rng(i))
            for i in range(50)
        }
        assert seen == moves
