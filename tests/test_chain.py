"""Tests for blockchain bookkeeping."""

import pytest

from repro.chainsim.chain import Blockchain
from repro.chainsim.difficulty import StaticDifficulty
from repro.exceptions import SimulationError
from repro.market.coins import bitcoin_spec


@pytest.fixture
def chain():
    return Blockchain(spec=bitcoin_spec(), difficulty=100.0, rule=StaticDifficulty())


class TestAppend:
    def test_heights_sequential(self, chain):
        chain.append(0.1, "a")
        chain.append(0.2, "b")
        assert [b.height for b in chain.blocks] == [0, 1]
        assert chain.height == 2

    def test_reward_paid_per_block(self, chain):
        block = chain.append(0.1, "a")
        assert block.reward_coins == bitcoin_spec().coins_per_block

    def test_time_must_not_decrease(self, chain):
        chain.append(1.0, "a")
        with pytest.raises(SimulationError, match="non-decreasing"):
            chain.append(0.5, "b")

    def test_positive_difficulty_required(self):
        with pytest.raises(SimulationError):
            Blockchain(spec=bitcoin_spec(), difficulty=0.0)


class TestQueries:
    def test_rewards_by_miner(self, chain):
        chain.append(0.1, "a")
        chain.append(0.2, "a")
        chain.append(0.3, "b")
        rewards = chain.rewards_by_miner()
        assert rewards["a"] == pytest.approx(2 * bitcoin_spec().coins_per_block)
        assert rewards["b"] == pytest.approx(bitcoin_spec().coins_per_block)

    def test_blocks_in_window(self, chain):
        for t in (0.5, 1.5, 2.5, 3.5):
            chain.append(t, "a")
        assert chain.blocks_in_window(1.0, 3.0) == 2

    def test_mean_interval(self, chain):
        for t in (0.0, 1.0, 2.0, 4.0):
            chain.append(t, "a")
        assert chain.mean_interval_h() == pytest.approx(4.0 / 3)
        assert chain.mean_interval_h(last=1) == pytest.approx(2.0)

    def test_mean_interval_needs_two_blocks(self, chain):
        assert chain.mean_interval_h() is None
        chain.append(0.0, "a")
        assert chain.mean_interval_h() is None
