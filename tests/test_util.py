"""Tests for utilities: tables, RNG helpers, validation."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import Table, format_table
from repro.util.validation import require, require_type


class TestTables:
    def test_render_contains_rows(self):
        table = Table("Title", ["a", "b"])
        table.add_row(1, 2.5)
        text = table.render()
        assert "Title" in text
        assert "1" in text and "2.500" in text

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_float_formats(self):
        table = Table("T", ["x"])
        table.add_row(2.0)
        table.add_row(1234567.0)
        table.add_row(0.0001)
        rendered = table.render()
        assert "2.0" in rendered
        assert "1234567.0" in rendered  # integral floats keep one decimal
        assert "0.0001" in rendered  # small values use compact %g form

    def test_format_table_alignment(self):
        text = format_table("T", ["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:]}) <= 2  # header + ruler + rows


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        assert make_rng(7).integers(0, 100) == make_rng(7).integers(0, 100)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_bad_seed_type(self):
        with pytest.raises(TypeError):
            make_rng("seed")

    def test_spawn_independence(self):
        a, b = spawn_rngs(1, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_spawn_deterministic(self):
        first = [rng.integers(0, 10**9) for rng in spawn_rngs(5, 3)]
        second = [rng.integers(0, 10**9) for rng in spawn_rngs(5, 3)]
        assert first == second

    def test_spawn_count_validated(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_require_passes(self):
        require(True, "never raised")

    def test_require_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_require_custom_error(self):
        with pytest.raises(KeyError):
            require(False, "k", error=KeyError)

    def test_require_type(self):
        require_type(1, int, "x")
        with pytest.raises(TypeError, match="x must be int"):
            require_type("s", int, "x")

    def test_require_type_tuple(self):
        require_type(1.5, (int, float), "y")
        with pytest.raises(TypeError, match="int or float"):
            require_type("s", (int, float), "y")


class TestExceptions:
    def test_hierarchy(self):
        from repro.exceptions import (
            AssumptionViolatedError,
            ConvergenceError,
            GameOfCoinsError,
            InvalidConfigurationError,
            InvalidModelError,
            NotAnEquilibriumError,
            RewardDesignError,
            SimulationError,
        )

        for exc in (
            InvalidModelError,
            InvalidConfigurationError,
            NotAnEquilibriumError,
            ConvergenceError,
            AssumptionViolatedError,
            RewardDesignError,
            SimulationError,
        ):
            assert issubclass(exc, GameOfCoinsError)
