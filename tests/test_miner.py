"""Tests for miners and power-ordering helpers."""

from fractions import Fraction

import pytest

from repro.core.miner import (
    Miner,
    has_strictly_decreasing_powers,
    make_miners,
    sorted_by_power,
)
from repro.exceptions import InvalidModelError


class TestMiner:
    def test_of_converts_power(self):
        miner = Miner.of("p1", 2.5)
        assert miner.power == Fraction(5, 2)

    def test_direct_fraction(self):
        assert Miner("p1", Fraction(3)).power == Fraction(3)

    def test_non_fraction_power_converted_in_post_init(self):
        assert Miner("p1", 4).power == Fraction(4)

    def test_zero_power_rejected(self):
        with pytest.raises((InvalidModelError, ValueError)):
            Miner.of("p1", 0)

    def test_negative_power_rejected(self):
        with pytest.raises((InvalidModelError, ValueError)):
            Miner("p1", Fraction(-1))

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidModelError, match="name"):
            Miner.of("", 1)

    def test_hashable_and_equal_by_value(self):
        assert Miner.of("a", 1) == Miner.of("a", 1)
        assert hash(Miner.of("a", 1)) == hash(Miner.of("a", 1))
        assert Miner.of("a", 1) != Miner.of("a", 2)


class TestMakeMiners:
    def test_names_are_one_based(self):
        miners = make_miners([5, 3, 1])
        assert [m.name for m in miners] == ["p1", "p2", "p3"]

    def test_custom_prefix(self):
        miners = make_miners([1, 2], prefix="pool")
        assert miners[0].name == "pool1"

    def test_order_preserved(self):
        miners = make_miners([1, 5, 3])
        assert [m.power for m in miners] == [1, 5, 3]

    def test_empty_rejected(self):
        with pytest.raises(InvalidModelError, match="at least one"):
            make_miners([])


class TestSortedByPower:
    def test_sorts_descending(self):
        miners = make_miners([1, 5, 3])
        assert [m.power for m in sorted_by_power(miners)] == [5, 3, 1]

    def test_ties_broken_by_name(self):
        a = Miner.of("a", 2)
        b = Miner.of("b", 2)
        assert sorted_by_power([b, a]) == (a, b)


class TestStrictPowers:
    def test_strictly_decreasing_true(self):
        assert has_strictly_decreasing_powers(make_miners([5, 3, 1]))

    def test_duplicates_false(self):
        assert not has_strictly_decreasing_powers(make_miners([5, 5, 1]))

    def test_increasing_false(self):
        assert not has_strictly_decreasing_powers(make_miners([1, 2]))

    def test_singleton_true(self):
        assert has_strictly_decreasing_powers(make_miners([1]))
