"""Tests for Proposition 2 witness search."""

import pytest

from repro.core.assumptions import check_never_alone
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.manipulation.better_equilibrium import (
    find_better_equilibrium_exhaustive,
    find_better_equilibrium_sampled,
    improvement_opportunities,
)


def _assumption_game(seed_range=range(30)):
    for seed in seed_range:
        game = random_game(6, 2, seed=seed, ensure_generic=True)
        if not check_never_alone(game, exhaustive_limit=300):
            continue
        equilibria = enumerate_equilibria(game)
        if len(equilibria) >= 2:
            return game, equilibria
    raise AssertionError("no suitable game found")


class TestExhaustive:
    def test_proposition2_holds(self):
        # Under A1+A2 with >1 equilibrium, EVERY equilibrium has a witness.
        game, equilibria = _assumption_game()
        for equilibrium in equilibria:
            witness = find_better_equilibrium_exhaustive(game, equilibrium)
            assert witness is not None
            assert witness.gain > 0
            assert witness.payoff_after == game.payoff(witness.miner, witness.target)

    def test_witness_target_is_stable(self):
        game, equilibria = _assumption_game()
        witness = find_better_equilibrium_exhaustive(game, equilibria[0])
        assert game.is_stable(witness.target)

    def test_gain_ratio_above_one(self):
        game, equilibria = _assumption_game()
        witness = find_better_equilibrium_exhaustive(game, equilibria[0])
        assert witness.gain_ratio > 1.0


class TestSampled:
    def test_sampled_witness_is_exact(self):
        game, equilibria = _assumption_game()
        witness = find_better_equilibrium_sampled(
            game, equilibria[0], samples=40, seed=1
        )
        if witness is None:
            pytest.skip("sampling missed all other equilibria (unlucky)")
        assert game.is_stable(witness.target)
        assert game.payoff(witness.miner, witness.target) > game.payoff(
            witness.miner, equilibria[0]
        )

    def test_sampled_gain_never_exceeds_exhaustive(self):
        game, equilibria = _assumption_game()
        exhaustive = find_better_equilibrium_exhaustive(game, equilibria[0])
        sampled = find_better_equilibrium_sampled(
            game, equilibria[0], samples=40, seed=2
        )
        if sampled is not None:
            assert sampled.gain <= exhaustive.gain


class TestOpportunities:
    def test_sorted_by_gain(self):
        game, equilibria = _assumption_game()
        opportunities = improvement_opportunities(game, equilibria[0], equilibria)
        gains = [imp.gain for imp in opportunities]
        assert gains == sorted(gains, reverse=True)

    def test_excludes_current(self):
        game, equilibria = _assumption_game()
        opportunities = improvement_opportunities(game, equilibria[0], equilibria)
        assert all(imp.target != equilibria[0] for imp in opportunities)

    def test_all_gains_strict(self):
        game, equilibria = _assumption_game()
        opportunities = improvement_opportunities(game, equilibria[0], equilibria)
        assert all(imp.gain > 0 for imp in opportunities)
