"""Integration: the full manipulation pipeline across all subsystems.

Exercises core → learning → manipulation → design → cost-models in one
flow, the way the README's headline example uses the library.
"""

import pytest

from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.design.mechanism import DynamicRewardDesign
from repro.learning.engine import LearningEngine
from repro.learning.policies import MinimalGainPolicy
from repro.learning.schedulers import SmallestFirstScheduler
from repro.manipulation.better_equilibrium import improvement_opportunities
from repro.manipulation.whale import manipulation_roi


@pytest.fixture(scope="module")
def pipeline():
    for seed in range(25):
        game = random_game(6, 2, seed=seed, ensure_generic=True)
        equilibria = enumerate_equilibria(game)
        if len(equilibria) < 2:
            continue
        start = equilibria[0]
        opportunities = improvement_opportunities(game, start, equilibria)
        if opportunities:
            return game, start, opportunities[0]
    raise AssertionError("no manipulable game found")


def test_full_manipulation_flow(pipeline):
    game, start, opportunity = pipeline

    # 1. Execute the manipulation against an adversarial learner.
    mechanism = DynamicRewardDesign(
        policy=MinimalGainPolicy(), scheduler=SmallestFirstScheduler()
    )
    result = mechanism.run(game, start, opportunity.target, seed=11)
    assert result.success

    # 2. The beneficiary got exactly the promised payoff.
    assert game.payoff(opportunity.miner, result.final) == opportunity.payoff_after

    # 3. The target persists: it is stable under the ORGANIC rewards,
    #    so post-manipulation learning does not move the system.
    settle = LearningEngine().run(game, result.final, seed=12)
    assert settle.length == 0

    # 4. The manipulation has a finite price and a finite break-even.
    roi = manipulation_roi(game, opportunity.miner, start, result.final, result.ledger)
    assert roi.cost > 0
    assert roi.break_even_rounds is not None
    assert roi.roi_at(int(roi.break_even_rounds) + 100) > 0


def test_manipulation_is_zero_sum_in_welfare(pipeline):
    """Observation 3: both equilibria have the same total welfare — the
    manipulation redistributes, it does not create value."""
    game, start, opportunity = pipeline
    assert game.social_welfare(start) == game.social_welfare(opportunity.target)


def test_someone_pays_for_the_gain(pipeline):
    game, start, opportunity = pipeline
    losers = [
        miner
        for miner in game.miners
        if game.payoff(miner, opportunity.target) < game.payoff(miner, start)
    ]
    assert losers, "welfare conservation forces at least one loser"
