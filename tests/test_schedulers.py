"""Tests for activation schedulers."""

import numpy as np
import pytest

from repro.core.factories import random_configuration, random_game
from repro.learning.schedulers import (
    LargestFirstScheduler,
    RoundRobinScheduler,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)


@pytest.fixture
def game():
    return random_game(6, 3, seed=7)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def _unstable_state(game, min_unstable=2):
    for seed in range(100):
        config = random_configuration(game, seed=seed)
        unstable = game.unstable_miners(config)
        if len(unstable) >= min_unstable:
            return config, unstable
    raise AssertionError("no state with enough unstable miners")


class TestExtremeSchedulers:
    def test_largest_first(self, game, rng):
        config, unstable = _unstable_state(game)
        pick = LargestFirstScheduler().pick(game, config, unstable, rng)
        assert pick.power == max(m.power for m in unstable)

    def test_smallest_first(self, game, rng):
        config, unstable = _unstable_state(game)
        pick = SmallestFirstScheduler().pick(game, config, unstable, rng)
        assert pick.power == min(m.power for m in unstable)


class TestUniform:
    def test_picks_from_unstable_set(self, game, rng):
        config, unstable = _unstable_state(game)
        for _ in range(20):
            assert UniformRandomScheduler().pick(game, config, unstable, rng) in unstable

    def test_eventually_picks_everyone(self, game):
        config, unstable = _unstable_state(game, min_unstable=2)
        scheduler = UniformRandomScheduler()
        seen = {
            scheduler.pick(game, config, unstable, np.random.default_rng(i))
            for i in range(100)
        }
        assert seen == set(unstable)


class TestRoundRobin:
    def test_cycles_in_miner_order(self, game, rng):
        config, unstable = _unstable_state(game, min_unstable=2)
        scheduler = RoundRobinScheduler()
        first = scheduler.pick(game, config, unstable, rng)
        second = scheduler.pick(game, config, unstable, rng)
        assert first != second or len(unstable) == 1

    def test_reset_restarts_cursor(self, game, rng):
        config, unstable = _unstable_state(game, min_unstable=2)
        scheduler = RoundRobinScheduler()
        first = scheduler.pick(game, config, unstable, rng)
        scheduler.pick(game, config, unstable, rng)
        scheduler.reset()
        assert scheduler.pick(game, config, unstable, rng) == first

    def test_skips_stable_miners(self, game, rng):
        config, unstable = _unstable_state(game)
        scheduler = RoundRobinScheduler()
        for _ in range(2 * len(game.miners)):
            assert scheduler.pick(game, config, unstable, rng) in unstable
