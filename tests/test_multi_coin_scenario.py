"""Tests for the generic multi-coin scenario factory."""

import pytest

from repro.exceptions import SimulationError
from repro.market.scenario import multi_coin_scenario


class TestMultiCoinScenario:
    def test_shape(self):
        scenario = multi_coin_scenario(4, n_miners=12, horizon_h=24, resolution_h=8, seed=1)
        assert len(scenario.coins) == 4
        assert len(scenario.miners) == 12
        game = scenario.game_at(0)
        assert len(game.coins) == 4

    def test_weights_geometrically_spaced(self):
        scenario = multi_coin_scenario(3, horizon_h=8, resolution_h=8, seed=2)
        weights = scenario.weight_series().at(0)
        ordered = [weights[f"COIN{i}"] for i in (1, 2, 3)]
        assert ordered[0] > ordered[1] > ordered[2]

    def test_replay_converges_each_tick(self):
        scenario = multi_coin_scenario(
            3, n_miners=10, horizon_h=24, resolution_h=12, seed=3
        )
        replay = scenario.replay(seed=4)
        for index, config in enumerate(replay.configurations):
            assert scenario.game_at(index).is_stable(config)

    def test_validation(self):
        with pytest.raises(SimulationError):
            multi_coin_scenario(0)
