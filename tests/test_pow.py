"""Tests for the proof-of-work block lottery."""

import numpy as np
import pytest

from repro.chainsim.pow import BlockLottery, calibrated_difficulty
from repro.exceptions import SimulationError


class TestLottery:
    def test_empty_powers_yield_none(self):
        assert BlockLottery(seed=0).draw({}, difficulty=10.0) is None
        assert BlockLottery(seed=0).draw({"a": 0.0}, difficulty=10.0) is None

    def test_mean_wait_matches_rate(self):
        lottery = BlockLottery(seed=1)
        waits = [lottery.draw({"a": 5.0}, difficulty=10.0).wait_h for _ in range(3000)]
        assert np.mean(waits) == pytest.approx(2.0, rel=0.1)

    def test_winner_proportional_to_power(self):
        lottery = BlockLottery(seed=2)
        powers = {"big": 3.0, "small": 1.0}
        winners = [lottery.draw(powers, difficulty=1.0).winner for _ in range(4000)]
        big_share = winners.count("big") / len(winners)
        assert big_share == pytest.approx(0.75, abs=0.03)

    def test_invalid_difficulty(self):
        with pytest.raises(SimulationError):
            BlockLottery(seed=0).draw({"a": 1.0}, difficulty=0.0)

    def test_negative_power_rejected(self):
        with pytest.raises(SimulationError):
            BlockLottery(seed=0).draw({"a": 1.0, "b": -1.0}, difficulty=1.0)

    def test_expected_wait(self):
        lottery = BlockLottery(seed=0)
        assert lottery.expected_wait_h(total_power=4.0, difficulty=8.0) == 2.0
        with pytest.raises(SimulationError):
            lottery.expected_wait_h(total_power=0.0, difficulty=1.0)


class TestCalibration:
    def test_round_trip(self):
        difficulty = calibrated_difficulty(total_power=60.0, target_interval_h=1 / 6)
        assert BlockLottery(seed=0).expected_wait_h(60.0, difficulty) == pytest.approx(
            1 / 6
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            calibrated_difficulty(0.0, 1.0)
