"""Tests for coin specifications."""

import pytest

from repro.exceptions import SimulationError
from repro.market.coins import CoinSpec, bitcoin_cash_spec, bitcoin_spec


class TestCoinSpec:
    def test_derived_quantities(self):
        spec = CoinSpec(name="X", block_interval_s=600, block_subsidy=12.5, fees_per_block=2.5)
        assert spec.coins_per_block == 15.0
        assert spec.blocks_per_hour == 6.0

    def test_zero_interval_rejected(self):
        with pytest.raises(SimulationError, match="interval"):
            CoinSpec(name="X", block_interval_s=0, block_subsidy=1)

    def test_negative_subsidy_rejected(self):
        with pytest.raises(SimulationError):
            CoinSpec(name="X", block_interval_s=600, block_subsidy=-1)

    def test_must_pay_something(self):
        with pytest.raises(SimulationError, match="pay"):
            CoinSpec(name="X", block_interval_s=600, block_subsidy=0, fees_per_block=0)

    def test_empty_name_rejected(self):
        with pytest.raises(SimulationError, match="name"):
            CoinSpec(name="", block_interval_s=600, block_subsidy=1)


class TestNamedSpecs:
    def test_bitcoin_2017(self):
        spec = bitcoin_spec()
        assert spec.name == "BTC"
        assert spec.block_subsidy == 12.5
        assert spec.blocks_per_hour == 6.0

    def test_bch_shares_algorithm_with_btc(self):
        assert bitcoin_spec().algorithm == bitcoin_cash_spec().algorithm

    def test_custom_fees(self):
        assert bitcoin_spec(fees_per_block=5.0).fees_per_block == 5.0
