"""Tests for sparkline rendering."""

from repro.util.sparkline import labeled_sparkline, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1
        assert len(line) == 3

    def test_monotone_series_is_monotone(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)

    def test_extremes_hit_extreme_bars(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_pinned_scale_clamps(self):
        line = sparkline([-10.0, 100.0], lo=0.0, hi=1.0)
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_length_matches_input(self):
        assert len(sparkline(range(37))) == 37


class TestLabeled:
    def test_contains_label_and_range(self):
        text = labeled_sparkline("BCH share", [0.1, 0.2, 0.3])
        assert "BCH share" in text
        assert "0.1" in text and "0.3" in text

    def test_empty_series(self):
        assert "(empty)" in labeled_sparkline("x", [])
