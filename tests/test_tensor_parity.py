"""Parity suite: the tensor population kernel vs. the scalar stepper.

``executor="vectorized"`` is only admissible because
:func:`repro.kernel.tensor.run_trajectory_population` replays the
scalar :class:`~repro.kernel.engine.KernelView` trajectory loop
bit-for-bit — same finals, same step counts, same convergence
verdicts, and the *same RNG stream consumption* (asserted on the final
``bit_generator.state``). These tests sweep well over 200 randomized
games — mixed shapes, with and without allowed-coin masks, across all
three arithmetic lanes — in single mixed populations, plus a
hypothesis sweep over tie-heavy integer games and the int64-overflow
exact-fallback lane.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration
from repro.core.factories import (
    random_configuration,
    random_game,
    random_restricted_configuration,
)
from repro.core.game import Game
from repro.core.restricted import normalize_mask
from repro.kernel.core import KernelGame
from repro.kernel.engine import KernelView
from repro.kernel.tensor import (
    SimultaneousJob,
    TrajectoryJob,
    kernel_lane,
    policy_kind,
    run_simultaneous_population,
    run_trajectory_population,
    scheduler_kind,
    stable_mask,
)
from repro.learning.engine import run_better_response
from repro.learning.policies import (
    BestResponsePolicy,
    EpsilonGreedyPolicy,
    FirstImprovingPolicy,
    MaxRpuPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.learning.schedulers import (
    LargestFirstScheduler,
    RoundRobinScheduler,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)
from repro.learning.simultaneous import run_simultaneous

POLICIES = (
    BestResponsePolicy(),
    RandomImprovingPolicy(),
    MinimalGainPolicy(),
    MaxRpuPolicy(),
    EpsilonGreedyPolicy(0.25),
    FirstImprovingPolicy(),
)

SCHEDULERS = (
    UniformRandomScheduler(),
    RoundRobinScheduler(),
    LargestFirstScheduler(),
    SmallestFirstScheduler(),
)

SIZES = ((3, 2), (5, 2), (6, 3), (8, 3), (10, 4), (40, 5))


def scalar_reference(game, policy, scheduler, start, seed, *, allowed=None):
    """Run the scalar KernelView stepper; return (final, steps, conv, rng state)."""
    view = KernelView(game, start, allowed=allowed)
    rng = np.random.default_rng(seed)
    trajectory = run_better_response(
        view, policy, scheduler, rng, max_steps=1_000_000, record="summary"
    )
    return (
        tuple(view.assign),
        trajectory.length,
        trajectory.converged,
        rng.bit_generator.state,
    )


def tensor_job(kernel, game, policy, scheduler, start, seed, *, mask=None):
    kind, epsilon = policy_kind(policy)
    allowed_idx = None
    if mask is not None:
        allowed_idx = tuple(
            tuple(kernel.coin_index[coin] for coin in mask[miner])
            for miner in game.miners
        )
    return TrajectoryJob(
        kernel=kernel,
        assign=kernel.assignment_of(start),
        rng=np.random.default_rng(seed),
        policy=kind,
        scheduler=scheduler_kind(scheduler),
        epsilon=epsilon,
        allowed=allowed_idx,
    )


def assert_population_matches(jobs, refs):
    """One run_trajectory_population call; every outcome bit-identical."""
    outcomes = run_trajectory_population(jobs)
    assert len(outcomes) == len(refs)
    for index, (out, ref) in enumerate(zip(outcomes, refs)):
        final, steps, converged, rng_state = ref
        assert out.final_assign == final, index
        assert out.steps == steps, index
        assert out.converged == converged, index
        assert jobs[index].rng.bit_generator.state == rng_state, index


def test_population_parity_unmasked():
    """144 mixed-shape games, all policies × schedulers, ONE population."""
    jobs, refs = [], []
    for seed in range(144):
        n, k = SIZES[seed % len(SIZES)]
        game = random_game(n, k, seed=seed)
        kernel = KernelGame(game)
        start = random_configuration(game, seed=seed + 1000)
        policy = POLICIES[seed % len(POLICIES)]
        scheduler = SCHEDULERS[(seed // len(POLICIES)) % len(SCHEDULERS)]
        refs.append(scalar_reference(game, policy, scheduler, start, seed))
        jobs.append(tensor_job(kernel, game, policy, scheduler, start, seed))
    assert_population_matches(jobs, refs)


def test_population_parity_masked():
    """60 games with random allowed-coin masks (the restricted case)."""
    jobs, refs = [], []
    for seed in range(60):
        n, k = SIZES[seed % 4]  # keep the masked sweep on small shapes
        game = random_game(n, k, seed=seed + 50)
        kernel = KernelGame(game)
        rng = np.random.default_rng(seed)
        allowed = {}
        for miner in game.miners:
            picks = [coin for coin in game.coins if rng.random() < 0.7]
            allowed[miner] = picks or [
                game.coins[int(rng.integers(0, len(game.coins)))]
            ]
        mask = normalize_mask(game, allowed)
        start = random_restricted_configuration(game, allowed, seed=seed + 9000)
        policy = POLICIES[seed % len(POLICIES)]
        scheduler = SCHEDULERS[seed % len(SCHEDULERS)]
        refs.append(
            scalar_reference(game, policy, scheduler, start, seed, allowed=allowed)
        )
        jobs.append(
            tensor_job(kernel, game, policy, scheduler, start, seed, mask=mask)
        )
    assert_population_matches(jobs, refs)


def test_population_parity_int_lane():
    """Small integer games ride the exact-int64 lane; still bit-identical."""
    jobs, refs = [], []
    for seed in range(30):
        rng = np.random.default_rng(seed + 123)
        powers = [
            Fraction(int(rng.integers(1, 10)), int(rng.integers(1, 4)))
            for _ in range(5)
        ]
        rewards = [Fraction(int(rng.integers(1, 6))) for _ in range(3)]
        game = Game.create(powers=powers, reward_values=rewards)
        kernel = KernelGame(game)
        assert kernel_lane(kernel) == "int"
        start = random_configuration(game, seed=seed)
        policy = POLICIES[seed % len(POLICIES)]
        scheduler = SCHEDULERS[seed % len(SCHEDULERS)]
        refs.append(scalar_reference(game, policy, scheduler, start, seed))
        jobs.append(tensor_job(kernel, game, policy, scheduler, start, seed))
    assert_population_matches(jobs, refs)


def test_factory_games_use_float_lane():
    kernel = KernelGame(random_game(10, 4, seed=0))
    assert kernel_lane(kernel) == "float"


def test_exact_fallback_on_int64_overflow():
    """Products past 2^62 route the whole game to the scalar-exact lane."""
    big = 2**70
    game = Game.create(
        powers=[Fraction(3 * big + i, big) for i in range(4)],
        reward_values=[Fraction(2 * big + 1, big), Fraction(5 * big + 3, big)],
    )
    kernel = KernelGame(game)
    assert kernel_lane(kernel) == "exact"
    start = random_configuration(game, seed=1)
    for policy, scheduler in ((RandomImprovingPolicy(), UniformRandomScheduler()),
                              (BestResponsePolicy(), RoundRobinScheduler())):
        ref = scalar_reference(game, policy, scheduler, start, 7)
        job = tensor_job(kernel, game, policy, scheduler, start, 7)
        assert_population_matches([job], [ref])


@settings(max_examples=40, deadline=None)
@given(
    powers=st.lists(st.integers(min_value=1, max_value=3), min_size=3, max_size=6),
    rewards=st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_tie_heavy_games_parity(powers, rewards, seed):
    """Tiny repeated-value games maximize ties; tie-breaks must agree."""
    game = Game.create(
        powers=[Fraction(p) for p in powers],
        reward_values=[Fraction(r) for r in rewards],
    )
    kernel = KernelGame(game)
    start = random_configuration(game, seed=seed)
    policy = POLICIES[seed % len(POLICIES)]
    scheduler = SCHEDULERS[seed % len(SCHEDULERS)]
    ref = scalar_reference(game, policy, scheduler, start, seed)
    job = tensor_job(kernel, game, policy, scheduler, start, seed)
    assert_population_matches([job], [ref])


def test_stable_mask_matches_is_stable():
    game = random_game(8, 3, seed=400)
    kernel = KernelGame(game)
    rows = [
        kernel.assignment_of(random_configuration(game, seed=seed))
        for seed in range(25)
    ]
    verdicts = stable_mask(kernel, np.array(rows))
    for index, row in enumerate(rows):
        config = Configuration(game.miners, [game.coins[j] for j in row])
        assert bool(verdicts[index]) == kernel.is_stable(config)


def test_simultaneous_population_parity():
    """Batched simultaneous rounds replicate run_simultaneous exactly."""
    jobs, refs = [], []
    for seed in range(20):
        game = random_game(6, 3, seed=seed + 600)
        kernel = KernelGame(game)
        start = random_configuration(game, seed=seed)
        for inertia in (0.0, 0.25):
            ref = run_simultaneous(
                game, start, inertia=inertia, max_rounds=300,
                seed=np.random.default_rng(9), backend="fast",
            )
            refs.append((
                ref.rounds,
                ref.converged,
                ref.cycle_start,
                tuple(kernel.assignment_of(ref.final)),
            ))
            jobs.append(SimultaneousJob(
                kernel=kernel,
                assign=kernel.assignment_of(start),
                rng=np.random.default_rng(9),
                inertia=inertia,
                max_rounds=300,
            ))
    outcomes = run_simultaneous_population(jobs)
    for index, (out, ref) in enumerate(zip(outcomes, refs)):
        rounds, converged, cycle_start, final = ref
        assert out.rounds == rounds, index
        assert out.converged == converged, index
        assert out.cycle_start == cycle_start, index
        assert out.final_assign == final, index


@pytest.mark.parametrize(
    "engine_kwargs",
    [
        dict(budget=8, max_activations=400),
        dict(budget=64, max_activations=800, inertia=0.2),
        dict(budget=16, max_activations=600, exploration=0.1),
    ],
)
def test_noisy_vectorized_lockstep_parity(engine_kwargs):
    """The noisy lockstep stepper is bit-identical to the serial runner."""
    from repro.stochastic.noisy_engine import NoisyBatchRunner, NoisyLearningEngine

    game = random_game(6, 3, seed=31)
    engine = NoisyLearningEngine(**engine_kwargs)
    serial = NoisyBatchRunner(executor="serial").run(
        game, replications=10, engine=engine, seed=77
    )
    vectorized = NoisyBatchRunner(executor="vectorized").run(
        game, replications=10, engine=engine, seed=77
    )
    assert serial == vectorized
