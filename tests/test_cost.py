"""Tests for manipulation-cost accounting."""

from fractions import Fraction

from repro.core.factories import random_game
from repro.design.cost import CostLedger, PhaseCost, phase_cost


class TestPhaseCost:
    def test_excess_counts_only_boosts(self):
        game = random_game(4, 2, seed=0)
        c1, c2 = game.coins
        designed = game.rewards.replacing({c1: game.rewards[c1] + 10})
        cost = phase_cost(game, designed, stage=1, iteration=1, steps=3)
        assert cost.excess_per_round == 10
        assert cost.rounds == 4
        assert cost.total == 40

    def test_zeroed_coin_contributes_nothing(self):
        from repro.core.coin import RewardFunction

        game = random_game(4, 2, seed=1)
        c1, c2 = game.coins
        designed = RewardFunction.allowing_zero(
            {c1: game.rewards[c1] + 5, c2: 0}
        )
        cost = phase_cost(game, designed, stage=2, iteration=1, steps=0)
        # c2's reward dropped below base: not a cost (you cannot be paid
        # for removing organic rewards), so only the +5 counts.
        assert cost.excess_per_round == 5

    def test_zero_step_phase_still_costs_one_round(self):
        game = random_game(3, 2, seed=2)
        designed = game.rewards.replacing(
            {game.coins[0]: game.rewards[game.coins[0]] + 1}
        )
        cost = phase_cost(game, designed, stage=1, iteration=1, steps=0)
        assert cost.rounds == 1


class TestLedger:
    def _ledger(self):
        ledger = CostLedger()
        ledger.add(PhaseCost(stage=1, iteration=1, excess_per_round=Fraction(10), rounds=2))
        ledger.add(PhaseCost(stage=2, iteration=1, excess_per_round=Fraction(3), rounds=5))
        return ledger

    def test_total(self):
        assert self._ledger().total() == 35

    def test_peak(self):
        assert self._ledger().peak_excess_per_round() == 10

    def test_rounds_and_count(self):
        ledger = self._ledger()
        assert ledger.total_rounds() == 7
        assert ledger.phase_count() == 2

    def test_empty_ledger(self):
        ledger = CostLedger()
        assert ledger.total() == 0
        assert ledger.peak_excess_per_round() == 0
        assert ledger.total_rounds() == 0
