"""Tests for the naive single-shot reward design baselines."""

import pytest

from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_configuration, random_game
from repro.design.naive import proportional_boost_design, single_shot_design
from repro.exceptions import NotAnEquilibriumError


def _pair(seed_range=range(20)):
    for seed in seed_range:
        game = random_game(6, 2, seed=seed)
        equilibria = enumerate_equilibria(game)
        if len(equilibria) >= 2:
            return game, equilibria[0], equilibria[1]
    raise AssertionError("no multi-equilibrium game found")


class TestSingleShot:
    def test_result_shape(self):
        game, s0, sf = _pair()
        result = single_shot_design(game, s0, sf, seed=0)
        assert result.final is not None
        assert result.boosted_final is not None
        assert result.steps >= 0
        assert result.ledger.total() >= 0

    def test_success_flag_is_accurate(self):
        game, s0, sf = _pair()
        result = single_shot_design(game, s0, sf, seed=1)
        assert result.success == (result.final == sf)

    def test_final_is_always_an_equilibrium(self):
        # Whatever happens, after reverting, learning leaves the system
        # stable under the organic rewards.
        game, s0, sf = _pair()
        result = single_shot_design(game, s0, sf, seed=2)
        assert game.is_stable(result.final)

    def test_target_is_stable_in_designed_game(self):
        # The design's selling point: the target IS an equilibrium of
        # the boosted game (the problem is everything else is too).
        from fractions import Fraction

        from repro.core.coin import RewardFunction

        game, s0, sf = _pair()
        scale = Fraction(0)
        for coin in game.coins:
            mass = game.coin_power(coin, sf)
            if mass > 0:
                scale = max(scale, game.rewards[coin] / mass)
        values = {
            coin: (
                scale * game.coin_power(coin, sf)
                if game.coin_power(coin, sf) > 0
                else game.rewards[coin]
            )
            for coin in game.coins
        }
        designed = game.with_rewards(RewardFunction.allowing_zero(values))
        assert designed.is_stable(sf)

    def test_unstable_target_rejected(self):
        game, s0, _ = _pair()
        for seed in range(30):
            unstable = random_configuration(game, seed=seed)
            if not game.is_stable(unstable):
                with pytest.raises(NotAnEquilibriumError):
                    single_shot_design(game, s0, unstable)
                return
        pytest.skip("no unstable configuration found")

    def test_often_fails_where_staged_succeeds(self):
        # The E10 ablation in miniature: across several games, the
        # naive design must fail at least once while the staged
        # mechanism never does.
        from repro.design.mechanism import DynamicRewardDesign

        naive_failures = 0
        staged_failures = 0
        checked = 0
        for seed in range(12):
            game = random_game(6, 2, seed=seed)
            equilibria = enumerate_equilibria(game)
            if len(equilibria) < 2:
                continue
            s0, sf = equilibria[0], equilibria[-1]
            checked += 1
            for trial in range(3):
                result = single_shot_design(game, s0, sf, seed=100 + trial)
                naive_failures += int(not result.success)
            staged = DynamicRewardDesign().run(game, s0, sf, seed=7)
            staged_failures += int(not staged.success)
        assert checked >= 3
        assert staged_failures == 0
        assert naive_failures > 0


class TestProportionalBoost:
    def test_result_shape(self):
        game, s0, sf = _pair()
        result = proportional_boost_design(game, s0, sf, seed=3)
        assert game.is_stable(result.final)

    def test_designed_rewards_dominate_base(self):
        # The heuristic only raises rewards, so it is always feasible.
        game, s0, sf = _pair()
        result = proportional_boost_design(game, s0, sf, seed=4)
        assert result.ledger.total() >= 0
