"""Tests for JSON serialization (exact round trips)."""

from fractions import Fraction

import pytest

from repro.core.factories import random_configuration, random_game
from repro.exceptions import InvalidModelError
from repro.io import (
    configuration_from_dict,
    configuration_to_dict,
    game_from_dict,
    game_to_dict,
    load_configuration,
    load_game,
    load_trajectory,
    save_configuration,
    save_game,
    save_trajectory,
    trajectory_from_dict,
    trajectory_to_dict,
)
from repro.learning.engine import LearningEngine


class TestGameRoundTrip:
    def test_dict_round_trip_is_exact(self):
        game = random_game(7, 3, seed=1)
        rebuilt = game_from_dict(game_to_dict(game))
        assert [m.power for m in rebuilt.miners] == [m.power for m in game.miners]
        assert [rebuilt.rewards[c] for c in rebuilt.coins] == [
            game.rewards[c] for c in game.coins
        ]

    def test_round_trip_preserves_strategic_structure(self):
        game = random_game(6, 2, seed=2)
        rebuilt = game_from_dict(game_to_dict(game))
        config = random_configuration(game, seed=3)
        rebuilt_config = configuration_from_dict(
            configuration_to_dict(config), rebuilt
        )
        assert rebuilt.is_stable(rebuilt_config) == game.is_stable(config)
        for miner, rebuilt_miner in zip(game.miners, rebuilt.miners):
            assert rebuilt.payoff(rebuilt_miner, rebuilt_config) == game.payoff(
                miner, config
            )

    def test_file_round_trip(self, tmp_path):
        game = random_game(5, 2, seed=4)
        path = tmp_path / "game.json"
        save_game(game, str(path))
        assert load_game(str(path)).rewards == game.rewards

    def test_fractions_not_degraded_to_floats(self):
        game = random_game(3, 2, seed=5)
        payload = game_to_dict(game)
        for entry in payload["miners"]:
            assert isinstance(entry["power"], str) and "/" in entry["power"]

    def test_wrong_format_rejected(self):
        with pytest.raises(InvalidModelError, match="format"):
            game_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self):
        game = random_game(3, 2, seed=6)
        payload = game_to_dict(game)
        payload["version"] = 99
        with pytest.raises(InvalidModelError, match="version"):
            game_from_dict(payload)

    def test_bad_rational_rejected(self):
        game = random_game(3, 2, seed=7)
        payload = game_to_dict(game)
        payload["miners"][0]["power"] = "not-a-number"
        with pytest.raises(InvalidModelError, match="bad rational"):
            game_from_dict(payload)


class TestConfigurationRoundTrip:
    def test_file_round_trip(self, tmp_path):
        game = random_game(4, 2, seed=8)
        config = random_configuration(game, seed=9)
        path = tmp_path / "config.json"
        save_configuration(config, str(path))
        assert load_configuration(str(path), game) == config

    def test_missing_miner_rejected(self):
        game = random_game(4, 2, seed=10)
        config = random_configuration(game, seed=11)
        payload = configuration_to_dict(config)
        del payload["assignment"]["p1"]
        with pytest.raises(InvalidModelError, match="misses"):
            configuration_from_dict(payload, game)

    def test_wrong_format_rejected(self):
        game = random_game(3, 2, seed=12)
        with pytest.raises(InvalidModelError, match="format"):
            configuration_from_dict({"format": "nope", "assignment": {}}, game)


class TestTrajectoryRoundTrip:
    def _trajectory(self, seed, record_configurations=True):
        game = random_game(6, 3, seed=seed)
        start = random_configuration(game, seed=seed + 1)
        engine = LearningEngine(record_configurations=record_configurations)
        return game, engine.run(game, start, seed=seed + 2)

    def test_dict_round_trip_is_exact(self):
        game, trajectory = self._trajectory(20)
        rebuilt = trajectory_from_dict(trajectory_to_dict(trajectory), game)
        assert rebuilt.converged == trajectory.converged
        assert rebuilt.configurations == trajectory.configurations
        assert len(rebuilt.steps) == len(trajectory.steps)
        for original, loaded in zip(trajectory.steps, rebuilt.steps):
            assert loaded.miner == original.miner
            assert loaded.source == original.source
            assert loaded.target == original.target
            # Exact Fractions, not floats: the gains survive bit-for-bit.
            assert loaded.payoff_before == original.payoff_before
            assert loaded.payoff_after == original.payoff_after
            assert isinstance(loaded.payoff_after, Fraction)
        assert rebuilt.total_gain() == trajectory.total_gain()

    def test_file_round_trip(self, tmp_path):
        game, trajectory = self._trajectory(23)
        path = tmp_path / "trajectory.json"
        save_trajectory(trajectory, str(path))
        rebuilt = load_trajectory(str(path), game)
        assert rebuilt.configurations == trajectory.configurations
        assert rebuilt.final == trajectory.final

    def test_round_trip_without_recorded_configurations(self):
        game, trajectory = self._trajectory(26, record_configurations=False)
        assert len(trajectory.configurations) <= 2
        rebuilt = trajectory_from_dict(trajectory_to_dict(trajectory), game)
        assert rebuilt.configurations == trajectory.configurations
        assert rebuilt.final == trajectory.final

    def test_payoffs_not_degraded_to_floats(self):
        _, trajectory = self._trajectory(29)
        payload = trajectory_to_dict(trajectory)
        for entry in payload["steps"]:
            assert isinstance(entry["payoff_before"], str) and "/" in entry["payoff_before"]
            assert isinstance(entry["payoff_after"], str) and "/" in entry["payoff_after"]

    def test_wrong_format_rejected(self):
        game = random_game(3, 2, seed=32)
        with pytest.raises(InvalidModelError, match="format"):
            trajectory_from_dict({"format": "nope"}, game)

    def test_inconsistent_steps_rejected(self):
        game, trajectory = self._trajectory(35)
        payload = trajectory_to_dict(trajectory)
        if not payload["steps"]:
            pytest.skip("trajectory started at an equilibrium")
        first = payload["steps"][0]
        first["source"], first["target"] = first["target"], first["source"]
        with pytest.raises(InvalidModelError, match="inconsistent"):
            trajectory_from_dict(payload, game)

    def test_unknown_miner_rejected(self):
        game, trajectory = self._trajectory(38)
        payload = trajectory_to_dict(trajectory)
        payload["miner_order"][0] = "nobody"
        with pytest.raises(InvalidModelError, match="nobody"):
            trajectory_from_dict(payload, game)


class TestAtomicWrites:
    def test_returns_path_and_writes_trailing_newline(self, tmp_path):
        from repro.io import write_json_atomic

        path = str(tmp_path / "doc.json")
        assert write_json_atomic({"a": 1}, path) == path
        with open(path) as handle:
            text = handle.read()
        assert text.endswith("\n")
        assert __import__("json").loads(text) == {"a": 1}

    def test_overwrites_in_place(self, tmp_path):
        from repro.io import write_json_atomic

        path = str(tmp_path / "doc.json")
        write_json_atomic({"v": 1}, path)
        write_json_atomic({"v": 2}, path)
        with open(path) as handle:
            assert __import__("json").load(handle) == {"v": 2}

    def test_no_temp_file_left_behind(self, tmp_path):
        from repro.io import write_json_atomic

        path = str(tmp_path / "doc.json")
        write_json_atomic({"ok": True}, path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

    def test_failed_serialization_leaves_old_file_intact(self, tmp_path):
        from repro.io import write_json_atomic

        path = str(tmp_path / "doc.json")
        write_json_atomic({"v": 1}, path)
        with pytest.raises(TypeError):
            write_json_atomic({"v": object()}, path)
        with open(path) as handle:
            assert __import__("json").load(handle) == {"v": 1}
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

    def test_save_helpers_route_through_atomic_writes(self, tmp_path, monkeypatch):
        import repro.io as io_module

        calls = []
        original = io_module.write_json_atomic

        def spy(payload, path, **kwargs):
            calls.append(path)
            return original(payload, path, **kwargs)

        monkeypatch.setattr(io_module, "write_json_atomic", spy)
        game = random_game(4, 2, seed=6)
        save_game(game, str(tmp_path / "game.json"))
        save_configuration(
            random_configuration(game, seed=7), str(tmp_path / "config.json")
        )
        assert len(calls) == 2
