"""Tests for JSON serialization (exact round trips)."""

from fractions import Fraction

import pytest

from repro.core.factories import random_configuration, random_game
from repro.exceptions import InvalidModelError
from repro.io import (
    configuration_from_dict,
    configuration_to_dict,
    game_from_dict,
    game_to_dict,
    load_configuration,
    load_game,
    save_configuration,
    save_game,
)


class TestGameRoundTrip:
    def test_dict_round_trip_is_exact(self):
        game = random_game(7, 3, seed=1)
        rebuilt = game_from_dict(game_to_dict(game))
        assert [m.power for m in rebuilt.miners] == [m.power for m in game.miners]
        assert [rebuilt.rewards[c] for c in rebuilt.coins] == [
            game.rewards[c] for c in game.coins
        ]

    def test_round_trip_preserves_strategic_structure(self):
        game = random_game(6, 2, seed=2)
        rebuilt = game_from_dict(game_to_dict(game))
        config = random_configuration(game, seed=3)
        rebuilt_config = configuration_from_dict(
            configuration_to_dict(config), rebuilt
        )
        assert rebuilt.is_stable(rebuilt_config) == game.is_stable(config)
        for miner, rebuilt_miner in zip(game.miners, rebuilt.miners):
            assert rebuilt.payoff(rebuilt_miner, rebuilt_config) == game.payoff(
                miner, config
            )

    def test_file_round_trip(self, tmp_path):
        game = random_game(5, 2, seed=4)
        path = tmp_path / "game.json"
        save_game(game, str(path))
        assert load_game(str(path)).rewards == game.rewards

    def test_fractions_not_degraded_to_floats(self):
        game = random_game(3, 2, seed=5)
        payload = game_to_dict(game)
        for entry in payload["miners"]:
            assert isinstance(entry["power"], str) and "/" in entry["power"]

    def test_wrong_format_rejected(self):
        with pytest.raises(InvalidModelError, match="format"):
            game_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self):
        game = random_game(3, 2, seed=6)
        payload = game_to_dict(game)
        payload["version"] = 99
        with pytest.raises(InvalidModelError, match="version"):
            game_from_dict(payload)

    def test_bad_rational_rejected(self):
        game = random_game(3, 2, seed=7)
        payload = game_to_dict(game)
        payload["miners"][0]["power"] = "not-a-number"
        with pytest.raises(InvalidModelError, match="bad rational"):
            game_from_dict(payload)


class TestConfigurationRoundTrip:
    def test_file_round_trip(self, tmp_path):
        game = random_game(4, 2, seed=8)
        config = random_configuration(game, seed=9)
        path = tmp_path / "config.json"
        save_configuration(config, str(path))
        assert load_configuration(str(path), game) == config

    def test_missing_miner_rejected(self):
        game = random_game(4, 2, seed=10)
        config = random_configuration(game, seed=11)
        payload = configuration_to_dict(config)
        del payload["assignment"]["p1"]
        with pytest.raises(InvalidModelError, match="misses"):
            configuration_from_dict(payload, game)

    def test_wrong_format_rejected(self):
        game = random_game(3, 2, seed=12)
        with pytest.raises(InvalidModelError, match="format"):
            configuration_from_dict({"format": "nope", "assignment": {}}, game)
