"""Tests for coins and reward functions."""

from fractions import Fraction

import pytest

from repro.core.coin import Coin, RewardFunction, make_coins
from repro.exceptions import InvalidModelError


@pytest.fixture
def coins():
    return make_coins(["BTC", "BCH", "LTC"])


@pytest.fixture
def rewards(coins):
    return RewardFunction.from_values(coins, [100, 30, 10])


class TestCoin:
    def test_equality_by_name(self):
        assert Coin("BTC") == Coin("BTC")
        assert Coin("BTC") != Coin("BCH")

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidModelError):
            Coin("")

    def test_make_coins_rejects_duplicates(self):
        with pytest.raises(InvalidModelError, match="duplicate"):
            make_coins(["a", "a"])

    def test_make_coins_rejects_empty(self):
        with pytest.raises(InvalidModelError, match="at least one"):
            make_coins([])


class TestRewardFunction:
    def test_lookup(self, coins, rewards):
        assert rewards[coins[0]] == Fraction(100)

    def test_lookup_by_name(self, rewards):
        assert rewards.get_by_name("BCH") == Fraction(30)

    def test_unknown_coin_lookup_fails(self, rewards):
        with pytest.raises(InvalidModelError, match="not covered"):
            rewards[Coin("DOGE")]

    def test_unknown_name_lookup_fails(self, rewards):
        with pytest.raises(InvalidModelError, match="DOGE"):
            rewards.get_by_name("DOGE")

    def test_total(self, rewards):
        assert rewards.total() == Fraction(140)

    def test_max_reward(self, rewards):
        assert rewards.max_reward() == Fraction(100)

    def test_contains_iter_len(self, coins, rewards):
        assert coins[0] in rewards
        assert set(rewards) == set(coins)
        assert len(rewards) == 3

    def test_zero_reward_rejected_by_default(self, coins):
        with pytest.raises((InvalidModelError, ValueError)):
            RewardFunction.from_values(coins, [1, 0, 1])

    def test_allowing_zero(self, coins):
        rewards = RewardFunction.allowing_zero({coins[0]: 1, coins[1]: 0, coins[2]: 2})
        assert rewards[coins[1]] == 0

    def test_allowing_zero_still_rejects_negative(self, coins):
        with pytest.raises(InvalidModelError, match="non-negative"):
            RewardFunction.allowing_zero({coins[0]: -1})

    def test_mismatched_from_values(self, coins):
        with pytest.raises(InvalidModelError, match="reward values"):
            RewardFunction.from_values(coins, [1, 2])

    def test_constant(self, coins):
        rewards = RewardFunction.constant(coins, 5)
        assert all(reward == 5 for _, reward in rewards.items())

    def test_non_coin_key_rejected(self):
        with pytest.raises(InvalidModelError, match="Coin"):
            RewardFunction({"BTC": 1})


class TestDerivedRewards:
    def test_replacing(self, coins, rewards):
        derived = rewards.replacing({coins[0]: 500})
        assert derived[coins[0]] == 500
        assert derived[coins[1]] == 30
        assert rewards[coins[0]] == 100, "original must be untouched"

    def test_replacing_unknown_coin_fails(self, rewards):
        with pytest.raises(InvalidModelError, match="unknown coin"):
            rewards.replacing({Coin("DOGE"): 1})

    def test_boosted_adds(self, coins, rewards):
        boosted = rewards.boosted(coins[1], 70)
        assert boosted[coins[1]] == 100

    def test_boosted_requires_positive_extra(self, coins, rewards):
        with pytest.raises((InvalidModelError, ValueError)):
            rewards.boosted(coins[1], 0)

    def test_dominates(self, coins, rewards):
        assert rewards.replacing({coins[0]: 200}).dominates(rewards)
        assert rewards.dominates(rewards)
        assert not rewards.dominates(rewards.replacing({coins[0]: 200}))

    def test_dominates_different_coins_false(self, coins, rewards):
        other = RewardFunction.from_values(make_coins(["x"]), [1])
        assert not rewards.dominates(other)

    def test_equality_and_hash(self, coins, rewards):
        again = RewardFunction.from_values(coins, [100, 30, 10])
        assert rewards == again
        assert hash(rewards) == hash(again)
        assert rewards != rewards.boosted(coins[0], 1)
