"""Tests for difficulty adjustment rules."""

import numpy as np
import pytest

from repro.chainsim.difficulty import (
    BitcoinRetarget,
    ComposedRule,
    EmergencyAdjustment,
    StaticDifficulty,
    bch_2017_rule,
)
from repro.exceptions import SimulationError


def _timestamps(count, interval):
    return list(np.arange(count) * interval)


class TestStatic:
    def test_never_changes(self):
        rule = StaticDifficulty()
        assert rule.adjust(_timestamps(500, 0.1), 7.0, 1 / 6) == 7.0


class TestBitcoinRetarget:
    def test_no_adjustment_mid_window(self):
        rule = BitcoinRetarget(window=10)
        times = _timestamps(6, 1.0)
        assert rule.adjust(times, 5.0, 1 / 6) == 5.0

    def test_slow_blocks_lower_difficulty(self):
        rule = BitcoinRetarget(window=10)
        # 11 blocks at 2x the target spacing → difficulty halves.
        times = _timestamps(11, 2 / 6)
        adjusted = rule.adjust(times, 6.0, 1 / 6)
        assert adjusted == pytest.approx(3.0)

    def test_fast_blocks_raise_difficulty(self):
        rule = BitcoinRetarget(window=10)
        times = _timestamps(11, 0.5 / 6)
        adjusted = rule.adjust(times, 6.0, 1 / 6)
        assert adjusted == pytest.approx(12.0)

    def test_clamp(self):
        rule = BitcoinRetarget(window=10, clamp=4.0)
        times = _timestamps(11, 100.0)  # absurdly slow
        assert rule.adjust(times, 8.0, 1 / 6) == pytest.approx(2.0)

    def test_only_fires_on_boundary(self):
        rule = BitcoinRetarget(window=10)
        times = _timestamps(12, 2 / 6)  # height 12: (12-1) % 10 != 0
        assert rule.adjust(times, 6.0, 1 / 6) == 6.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            BitcoinRetarget(window=1)
        with pytest.raises(SimulationError):
            BitcoinRetarget(clamp=1.0)


class TestEda:
    def test_triggers_on_slow_blocks(self):
        rule = EmergencyAdjustment(lookback=6, trigger_factor=2.0)
        times = _timestamps(8, 3 / 6)  # 3× target spacing
        assert rule.adjust(times, 10.0, 1 / 6) == pytest.approx(8.0)

    def test_quiet_when_on_schedule(self):
        rule = EmergencyAdjustment(lookback=6, trigger_factor=2.0)
        times = _timestamps(8, 1 / 6)
        assert rule.adjust(times, 10.0, 1 / 6) == 10.0

    def test_needs_history(self):
        rule = EmergencyAdjustment(lookback=6)
        assert rule.adjust(_timestamps(3, 10.0), 10.0, 1 / 6) == 10.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            EmergencyAdjustment(lookback=0)
        with pytest.raises(SimulationError):
            EmergencyAdjustment(trigger_factor=1.0)


class TestComposition:
    def test_rules_apply_in_order(self):
        rule = ComposedRule((BitcoinRetarget(window=10), EmergencyAdjustment(lookback=6)))
        times = _timestamps(11, 3 / 6)
        # Retarget fires (slow window → /3, clamped at /4 ok) then EDA
        # sees the same slow blocks and cuts another 20%.
        adjusted = rule.adjust(times, 6.0, 1 / 6)
        assert adjusted == pytest.approx(6.0 / 3 * 0.8)

    def test_bch_2017_is_composed(self):
        rule = bch_2017_rule()
        assert isinstance(rule, ComposedRule)
