"""Property-based tests for the reward design mechanism (Section 5)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coin import RewardFunction, make_coins
from repro.core.game import Game
from repro.core.miner import make_miners
from repro.core.equilibrium import enumerate_equilibria
from repro.design.mechanism import DynamicRewardDesign
from repro.design.reward_design import stage1_rewards, stage_rewards
from repro.design.stages import intermediate_configuration


@st.composite
def design_games(draw):
    """Small games with strictly decreasing powers (Section 5's setting)."""
    n = draw(st.integers(min_value=2, max_value=5))
    k = draw(st.integers(min_value=2, max_value=3))
    powers = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=400),
                min_size=n,
                max_size=n,
                unique=True,
            )
        ),
        reverse=True,
    )
    rewards = draw(
        st.lists(st.integers(min_value=1, max_value=400), min_size=k, max_size=k)
    )
    miners = make_miners([Fraction(p, 9) for p in powers])
    coins = make_coins(f"c{i}" for i in range(1, k + 1))
    return Game(miners, coins, RewardFunction.from_values(coins, rewards))


@settings(max_examples=20, deadline=None)
@given(design_games(), st.integers(min_value=0, max_value=2**31 - 1))
def test_mechanism_reaches_any_equilibrium_pair(game, seed):
    """Algorithm 2's guarantee on random instances and random learning."""
    equilibria = enumerate_equilibria(game)
    if len(equilibria) < 2:
        return
    result = DynamicRewardDesign().run(game, equilibria[0], equilibria[-1], seed=seed)
    assert result.success
    assert result.final == equilibria[-1]
    assert game.is_stable(result.final)


@settings(max_examples=25, deadline=None)
@given(design_games())
def test_stage1_rewards_make_milestone_the_unique_equilibrium(game):
    equilibria = enumerate_equilibria(game)
    if not equilibria:
        return
    target = equilibria[0]
    designed = game.with_rewards(stage1_rewards(game, target))
    milestone = intermediate_configuration(game, target, 1)
    stable = enumerate_equilibria(designed)
    assert stable == [milestone]


@settings(max_examples=25, deadline=None)
@given(design_games())
def test_stage_rewards_leave_exactly_the_mover_unstable(game):
    """Lemma 1's entry condition, on random instances."""
    from repro.design.stages import mover_index, ordered_miners

    equilibria = enumerate_equilibria(game)
    if not equilibria:
        return
    target = equilibria[0]
    for stage in range(2, len(game.miners) + 1):
        config = intermediate_configuration(game, target, stage - 1)
        if config == intermediate_configuration(game, target, stage):
            continue
        designed_game = game.with_rewards(stage_rewards(game, target, stage, config))
        miners = ordered_miners(game)
        mover = miners[mover_index(game, target, stage, config) - 1]
        destination = target.coin_of(miners[stage - 1])
        assert designed_game.unstable_miners(config) == (mover,)
        assert designed_game.better_response_moves(mover, config) == (destination,)


@settings(max_examples=15, deadline=None)
@given(design_games(), st.integers(min_value=0, max_value=2**31 - 1))
def test_mechanism_cost_is_always_bounded_and_positive(game, seed):
    equilibria = enumerate_equilibria(game)
    if len(equilibria) < 2:
        return
    result = DynamicRewardDesign().run(game, equilibria[0], equilibria[1], seed=seed)
    total = result.ledger.total()
    assert total >= 0
    assert total < Fraction(10**30), "cost must be finite and sane"
