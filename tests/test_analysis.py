"""Tests for welfare, efficiency, convergence and security analysis."""

from fractions import Fraction

import pytest

from repro.analysis.convergence import convergence_sweep, measure_convergence
from repro.analysis.efficiency import efficiency_report, payoff_envelopes
from repro.analysis.security import (
    coin_security,
    dominance_target,
    security_report,
    vulnerable_coins,
)
from repro.analysis.welfare import (
    gini_coefficient,
    max_welfare,
    payoff_distribution,
    reward_per_unit_spread,
    social_welfare,
    verifies_observation3,
    welfare_gap,
)
from repro.core.configuration import Configuration
from repro.core.equilibrium import enumerate_equilibria, greedy_equilibrium
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game


class TestWelfare:
    def test_gap_is_unmined_reward(self):
        game = Game.create([2, 1], [5, 3])
        c1 = game.coins[0]
        all_on_c1 = Configuration(game.miners, [c1, c1])
        assert social_welfare(game, all_on_c1) == 5
        assert welfare_gap(game, all_on_c1) == 3
        assert not verifies_observation3(game, all_on_c1)

    def test_full_coverage_is_optimal(self):
        game = Game.create([2, 1], [5, 3])
        split = Configuration(game.miners, list(game.coins))
        assert welfare_gap(game, split) == 0
        assert verifies_observation3(game, split)

    def test_max_welfare(self):
        game = Game.create([1], [5, 3])
        assert max_welfare(game) == 8

    def test_payoff_distribution_keys(self):
        game = random_game(4, 2, seed=0)
        config = random_configuration(game, seed=1)
        dist = payoff_distribution(game, config)
        assert set(dist) == {m.name for m in game.miners}

    def test_rpu_spread_at_least_one(self):
        game = random_game(6, 3, seed=2)
        equilibrium = greedy_equilibrium(game)
        assert reward_per_unit_spread(game, equilibrium) >= 1.0


class TestGini:
    def test_equal_is_zero(self):
        assert gini_coefficient([Fraction(1)] * 5) == pytest.approx(0.0)

    def test_concentrated_approaches_one(self):
        values = [Fraction(0)] * 99 + [Fraction(100)]
        assert gini_coefficient(values) > 0.95

    def test_known_value(self):
        # For [1, 3]: gini = (2·(1·1+2·3))/(2·4) − 3/2 = 14/8 − 12/8 = 0.25.
        assert gini_coefficient([Fraction(1), Fraction(3)]) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient([])
        with pytest.raises(ValueError):
            gini_coefficient([Fraction(-1), Fraction(1)])


class TestEfficiency:
    def test_equilibria_are_optimal(self):
        game = random_game(6, 2, seed=3)
        equilibria = enumerate_equilibria(game)
        report = efficiency_report(game, equilibria)
        assert report.price_of_anarchy == pytest.approx(1.0)
        assert report.price_of_stability == pytest.approx(1.0)

    def test_envelopes_cover_all_miners(self):
        game = random_game(5, 2, seed=4)
        equilibria = enumerate_equilibria(game)
        envelopes = payoff_envelopes(game, equilibria)
        assert len(envelopes) == 5
        for envelope in envelopes:
            assert envelope.lowest <= envelope.highest
            assert envelope.ratio >= 1.0


class TestConvergenceStats:
    def test_measure(self):
        game = random_game(8, 3, seed=5)
        stats = measure_convergence(game, runs=5, seed=0)
        assert stats.runs == 5
        assert stats.mean_steps >= 0
        assert stats.potential_monotone_fraction == 1.0

    def test_audit_mode(self):
        game = random_game(6, 2, seed=6)
        stats = measure_convergence(game, runs=3, audit_potential=True, seed=1)
        assert stats.potential_monotone_fraction == 1.0

    def test_sweep_shape(self):
        results = convergence_sweep(
            miner_counts=(4, 6), coin_counts=(2,), runs_per_cell=2, seed=0
        )
        assert set(results) == {(4, 2), (6, 2)}

    def test_run_count_validated(self):
        game = random_game(4, 2, seed=7)
        with pytest.raises(ValueError):
            measure_convergence(game, runs=0)


class TestSecurity:
    def test_coin_security_shares(self):
        game = Game.create([3, 1], [1, 1])
        c1 = game.coins[0]
        config = Configuration(game.miners, [c1, c1])
        entry = coin_security(game, config, c1)
        assert entry.miners == 2
        assert entry.top_share == pytest.approx(0.75)
        assert entry.hhi == pytest.approx(0.75**2 + 0.25**2)
        assert entry.majority_vulnerable

    def test_empty_coin_is_none(self):
        game = Game.create([1], [1, 1])
        config = Configuration(game.miners, [game.coins[0]])
        assert coin_security(game, config, game.coins[1]) is None

    def test_report_and_vulnerable(self):
        game = Game.create([3, 1], [1, 1])
        c1 = game.coins[0]
        config = Configuration(game.miners, [c1, c1])
        report = security_report(game, config)
        assert len(report) == 1
        assert vulnerable_coins(game, config) == [c1.name]

    def test_dominance_target_is_stable_and_dominated(self):
        for seed in range(10):
            game = random_game(6, 2, seed=seed)
            attacker = max(game.miners, key=lambda m: m.power)
            target = dominance_target(game, attacker, game.coins[0])
            if target is None:
                continue
            assert game.is_stable(target)
            occupants = target.miners_on(game.coins[0])
            total = sum((m.power for m in occupants), Fraction(0))
            assert attacker in occupants
            assert attacker.power / total > Fraction(1, 2)
            return
        pytest.skip("no dominance target in 10 seeds")
