"""Tests for the Assumption 1/2 checkers (Section 4)."""

from fractions import Fraction

import pytest

from repro.core.assumptions import (
    check_generic,
    check_never_alone,
    configuration_violates_never_alone,
    find_genericity_violation,
    require_section4_assumptions,
)
from repro.core.configuration import Configuration
from repro.core.factories import random_game
from repro.core.game import Game
from repro.exceptions import AssumptionViolatedError, InvalidModelError


class TestGenericity:
    def test_symmetric_game_is_degenerate(self):
        # F(c1)/m1 == F(c2)/m1 when F is constant: blatantly non-generic.
        game = Game.create([2, 1], [1, 1])
        assert not check_generic(game)
        witness = find_genericity_violation(game)
        assert witness is not None
        value, coin_a, coin_b = witness
        assert coin_a != coin_b

    def test_crafted_violation_detected(self):
        # F(c1)/m1 = 4/2 = F(c2)/m2 = 2/1.
        game = Game.create([2, 1], [4, 2])
        assert not check_generic(game)

    def test_random_games_are_generic(self):
        for seed in range(10):
            game = random_game(6, 3, seed=seed)
            assert check_generic(game), f"seed {seed} drew a degenerate game"

    def test_generic_game_has_no_witness(self):
        game = random_game(5, 2, seed=0)
        assert find_genericity_violation(game) is None

    def test_size_guard(self):
        game = random_game(20, 2, seed=0)
        with pytest.raises(InvalidModelError, match="exponential"):
            check_generic(game)


class TestNeverAlone:
    def test_violation_witness(self):
        # One giant coin and a worthless one: a miner alone on the
        # worthless coin attracts nobody.
        game = Game.create([10, 9, 8], [1000, 1])
        c1, c2 = game.coins
        config = Configuration(game.miners, [c1, c1, c1])
        # c2 is empty and no one benefits from moving there alone?
        # Moving there gives payoff 1 (full reward); staying gives a
        # share of 1000 — staying wins, so A1 is violated at config.
        assert configuration_violates_never_alone(game, config)
        assert not check_never_alone(game, exhaustive_limit=100)

    def test_holds_for_balanced_game(self):
        found = False
        for seed in range(20):
            game = random_game(8, 2, seed=seed)
            if check_never_alone(game, exhaustive_limit=300):
                found = True
                break
        assert found, "expected at least one A1-satisfying 8×2 game"

    def test_sampled_mode_runs(self):
        game = random_game(30, 2, seed=1)
        # 2^30 configurations: must go through the sampling path.
        result = check_never_alone(game, exhaustive_limit=1000, samples=50, seed=3)
        assert result in (True, False)


class TestRequireSection4:
    def test_too_few_miners_rejected(self):
        game = random_game(3, 2, seed=0)
        with pytest.raises(AssumptionViolatedError, match="2|C|"):
            require_section4_assumptions(game)

    def test_degenerate_game_rejected(self):
        game = Game.create([8, 7, 6, 5, 4, 3], [1, 1])
        # Constant rewards violate A2 (and the A1 check may also fail);
        # either way the guard must raise.
        with pytest.raises(AssumptionViolatedError):
            require_section4_assumptions(game)

    def test_good_game_passes(self):
        for seed in range(20):
            game = random_game(8, 2, seed=seed, ensure_generic=True)
            if check_never_alone(game, exhaustive_limit=300):
                require_section4_assumptions(game)
                return
        pytest.skip("no A1-satisfying game found in 20 seeds")
