"""Property-based tests for the market and chain substrates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chainsim.difficulty import BitcoinRetarget, EmergencyAdjustment
from repro.chainsim.pow import BlockLottery, calibrated_difficulty
from repro.market.exchange_rates import GeometricBrownianRate, JumpDiffusionRate, JumpEvent
from repro.market.weights import weight_path
from repro.market.coins import CoinSpec


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=1e5),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_gbm_paths_stay_positive_and_start_at_initial(initial, vol, seed):
    times = np.arange(0.0, 24.0, 1.0)
    path = GeometricBrownianRate(initial=initial, volatility_per_sqrt_h=vol).sample(
        times, seed=seed
    )
    assert path[0] == pytest.approx(initial)
    assert np.all(path > 0)


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=1.01, max_value=10.0),
    st.floats(min_value=0.5, max_value=48.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_decaying_jumps_always_revert_toward_base(factor, half_life, seed):
    times = np.arange(0.0, 400.0, 2.0)
    base = GeometricBrownianRate(initial=100.0, volatility_per_sqrt_h=0.0)
    process = JumpDiffusionRate(
        base=base, jumps=(JumpEvent(at_h=10.0, factor=factor, half_life_h=half_life),)
    )
    path = process.sample(times, seed=seed)
    at_jump = path[times >= 10.0][0]
    at_end = path[-1]
    assert at_jump == pytest.approx(100.0 * factor, rel=1e-6)
    assert abs(at_end - 100.0) < abs(at_jump - 100.0), "decay must shrink the jump"


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=1000.0),
    st.floats(min_value=0.0, max_value=50.0),
    st.floats(min_value=60.0, max_value=3600.0),
)
def test_weight_is_linear_in_rate_and_fees(rate, fees, interval_s):
    spec = CoinSpec(name="X", block_interval_s=interval_s, block_subsidy=10.0)
    rates = np.array([rate, 2 * rate])
    fee_path = np.array([fees, fees])
    weights = weight_path(spec, rates, fee_path)
    assert weights[1] == pytest.approx(2 * weights[0])


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=0.5, max_value=500.0),
    st.floats(min_value=0.01, max_value=2.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_calibrated_lottery_hits_target_interval(power, target_h, seed):
    difficulty = calibrated_difficulty(power, target_h)
    lottery = BlockLottery(seed=seed)
    waits = [lottery.draw({"m": power}, difficulty).wait_h for _ in range(800)]
    assert np.mean(waits) == pytest.approx(target_h, rel=0.25)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=50),
    st.floats(min_value=0.01, max_value=4.0),
    st.floats(min_value=1.0, max_value=100.0),
)
def test_retarget_never_exceeds_clamp(window, spacing_factor, difficulty):
    rule = BitcoinRetarget(window=window, clamp=4.0)
    target = 1 / 6
    times = list(np.arange(window + 1) * spacing_factor * target)
    adjusted = rule.adjust(times, difficulty, target)
    assert difficulty / 4.0 - 1e-12 <= adjusted <= difficulty * 4.0 + 1e-12


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.01, max_value=10.0),
    st.floats(min_value=1.0, max_value=100.0),
)
def test_eda_only_ever_lowers_difficulty(spacing_factor, difficulty):
    rule = EmergencyAdjustment(lookback=6, trigger_factor=2.0)
    target = 1 / 6
    times = list(np.arange(8) * spacing_factor * target)
    adjusted = rule.adjust(times, difficulty, target)
    assert adjusted <= difficulty
