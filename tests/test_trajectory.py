"""Tests for trajectory bookkeeping."""

from fractions import Fraction

from repro.core.factories import random_configuration, random_game
from repro.learning.engine import LearningEngine


def _run(seed=0, **kwargs):
    game = random_game(7, 3, seed=seed)
    engine = LearningEngine(record_configurations=True, **kwargs)
    start = random_configuration(game, seed=seed + 1)
    return game, engine.run(game, start, seed=seed + 2)


class TestTrajectory:
    def test_endpoints(self):
        game, trajectory = _run()
        assert trajectory.initial == trajectory.configurations[0]
        assert trajectory.final == trajectory.configurations[-1]

    def test_length_counts_steps(self):
        _, trajectory = _run()
        assert trajectory.length == len(trajectory.steps)
        assert len(trajectory.configurations) == trajectory.length + 1

    def test_total_gain_positive_when_moved(self):
        _, trajectory = _run()
        if trajectory.length == 0:
            return
        assert trajectory.total_gain() > 0

    def test_moves_per_miner_sums_to_length(self):
        _, trajectory = _run()
        assert sum(trajectory.moves_per_miner().values()) == trajectory.length

    def test_coin_flow_sums_to_length(self):
        _, trajectory = _run()
        assert sum(trajectory.coin_flow().values()) == trajectory.length

    def test_flow_never_self_loops(self):
        _, trajectory = _run()
        for (source, target), count in trajectory.coin_flow().items():
            assert source != target
            assert count > 0

    def test_summary_mentions_convergence(self):
        _, trajectory = _run()
        assert "converged" in trajectory.summary()

    def test_step_indices_sequential(self):
        _, trajectory = _run()
        assert [step.index for step in trajectory.steps] == list(
            range(trajectory.length)
        )
