"""Plain-text table rendering for experiment and benchmark reports.

The benchmark harness prints each paper table/figure as an ASCII table;
keeping the renderer here (instead of depending on a plotting stack)
keeps the library runnable in a bare environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """An incrementally built ASCII table with a title and column headers."""

    title: str
    columns: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row; values are rendered with sensible float formats."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but table {self.title!r} "
                f"has {len(self.columns)} columns"
            )
        self.rows.append([_render_cell(value) for value in values])

    def render(self) -> str:
        """Render the table as a string with a ruled header."""
        return format_table(self.title, self.columns, self.rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_table(title: str, columns: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render *rows* under *columns* with padding computed per column."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(col) for col in columns]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    ruler = "-+-".join("-" * width for width in widths)
    lines = [title, "=" * len(title), header, ruler]
    for row in materialized:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
