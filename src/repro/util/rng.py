"""Deterministic random-number-generator helpers.

All stochastic components in the library accept either a seed or a
``numpy.random.Generator``. Centralizing construction here keeps
experiments reproducible: the same seed always yields the same game,
trajectory and simulation output.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    ``None`` gives a fresh nondeterministic generator; an ``int`` seeds a
    PCG64 stream; an existing generator is passed through unchanged so
    callers can share one stream across components.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int or numpy Generator, got {type(seed).__name__}")


def spawn_rngs(seed: RngLike, count: int) -> Sequence[np.random.Generator]:
    """Split one seed into *count* independent generators.

    Used by parameter sweeps so each cell of the sweep gets its own
    stream and reordering cells does not change any cell's randomness.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, (int, np.integer)) else None)
    return [np.random.default_rng(child) for child in root.spawn(count)]
