"""Tiny validation helpers used across the library.

These keep precondition checks one-liners at function entry, following
the "return/raise early on bad input" idiom.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def require(condition: bool, message: str, error: Type[Exception] = ValueError) -> None:
    """Raise *error* with *message* unless *condition* holds."""
    if not condition:
        raise error(message)


def require_type(
    value: Any,
    types: Union[Type, Tuple[Type, ...]],
    name: str,
) -> None:
    """Raise ``TypeError`` naming *name* unless *value* is an instance of *types*."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
