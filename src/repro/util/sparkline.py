"""Unicode sparklines for time series in terminal reports.

Used by examples and the CLI to show hashrate-share and price paths
without a plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, lo: float = None, hi: float = None) -> str:
    """Render *values* as a one-line unicode bar chart.

    ``lo``/``hi`` pin the scale (defaults: the series min/max); constant
    series render as a flat mid-height line.
    """
    if len(values) == 0:
        return ""
    floats = [float(v) for v in values]
    low = min(floats) if lo is None else lo
    high = max(floats) if hi is None else hi
    if high <= low:
        return _BARS[3] * len(floats)
    span = high - low
    chars = []
    for value in floats:
        clamped = min(max(value, low), high)
        index = int((clamped - low) / span * (len(_BARS) - 1))
        chars.append(_BARS[index])
    return "".join(chars)


def labeled_sparkline(
    label: str, values: Sequence[float], *, width: int = 24, **kwargs
) -> str:
    """``label  ▁▂▅█▆▃  [min..max]`` with the label left-padded."""
    if len(values) == 0:
        return f"{label:<{width}} (empty)"
    line = sparkline(values, **kwargs)
    low = min(float(v) for v in values)
    high = max(float(v) for v in values)
    return f"{label:<{width}} {line}  [{low:.3g} .. {high:.3g}]"
