"""Shared utilities: seeded RNG, ASCII tables, validation helpers."""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.sparkline import labeled_sparkline, sparkline
from repro.util.tables import Table, format_table
from repro.util.validation import require, require_type

__all__ = [
    "make_rng",
    "spawn_rngs",
    "labeled_sparkline",
    "sparkline",
    "Table",
    "format_table",
    "require",
    "require_type",
]
