"""One front door for batched execution: ``RunSpec`` → :func:`run_many`.

Every multi-seed workload in the library — E2 convergence sweeps, E9
learning-speed grids, E13 basin sampling, E15 noisy-budget sweeps — is
a list of independent *cells*: "run this game ``runs`` times with this
strategy (or this noisy engine) from seeded random starts". Before this
module each call site wired its own mechanism (a
:class:`~repro.kernel.batch.BatchRunner` here, a
:class:`~repro.stochastic.noisy_engine.NoisyBatchRunner` there, a
``workers=`` integer elsewhere). :func:`run_many` subsumes that
patchwork: callers describe the *semantics* as :class:`RunSpec` cells
and pick an executor — or leave ``"auto"`` and let the library pick the
fastest mechanism that preserves bit-identical results.

Executor modes
--------------
``"serial"``
    One in-process loop; the reference semantics.
``"thread"`` / ``"process"``
    :mod:`concurrent.futures` pools via the pooled runners. Identical
    results (all per-run RNG streams are pre-spawned).
``"vectorized"``
    The tensor population kernel (:mod:`repro.kernel.tensor`). All
    vectorizable trajectory cells across the *whole* cell list are
    packed into one population call, so same-shape cells share lockstep
    array steps even across cells. Requires the ``"fast"`` backend and
    standard policies/schedulers; noisy cells run the lockstep
    population stepper. Identical results.
``"auto"``
    Vectorizable trajectory cells go to the tensor kernel; everything
    else falls back to the pooled runners' own ``"auto"``.

Seeding: each cell may carry an explicit ``seed``; cells that don't are
assigned children of ``run_many``'s root ``SeedSequence(seed)`` in cell
order, so appending cells never changes earlier cells' randomness.
Within a cell the per-run scheme is the library-wide convention (stream
``2i`` draws run *i*'s start, stream ``2i+1`` drives its engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.game import Game
from repro.obs.log import get_logger
from repro.obs.recorder import get_recorder

__all__ = ["RunSpec", "run_many", "EXECUTORS"]

logger = get_logger("run")

#: Executor modes :func:`run_many` accepts.
EXECUTORS = ("auto", "serial", "thread", "process", "vectorized")

SeedLike = Union[None, int, np.random.SeedSequence]


@dataclass(frozen=True)
class RunSpec:
    """One batch cell: a game, a repetition count, and the semantics.

    ``kind="trajectory"`` cells run better-response learning from
    random starts and yield :class:`~repro.kernel.batch.TrajectorySummary`
    records; ``kind="noisy"`` cells run the sample-based noisy learner
    (optionally a configured
    :class:`~repro.stochastic.noisy_engine.NoisyLearningEngine` via
    ``engine``) and yield
    :class:`~repro.stochastic.noisy_engine.NoisyRunResult` records;
    ``kind="classes"`` cells run the population-compressed class
    stepper (:mod:`repro.kernel.classes`) from seeded multinomial
    random starts and yield
    :class:`~repro.kernel.classes.ClassRunResult` records — ``game``
    may be a :class:`~repro.kernel.classes.ClassGame` directly (for
    populations far beyond per-miner reach) or a per-miner game to
    compress, ``policy``/``scheduler`` are the class-symmetric mode
    *names* (strings), and the route is inherently vectorized: the
    count matrix advances whole classes per step, so the executor knob
    changes nothing.

    ``seed`` pins this cell's root seed explicitly; ``None`` (default)
    derives it from :func:`run_many`'s root, in cell order. ``allowed``
    restricts miners to coin subsets (a restricted game's mask);
    ``label`` is carried through untouched for callers that need to
    re-identify cells in the flat result list.

    ``stream=True`` (trajectory cells only) opts into the streaming
    aggregate: the cell's result is a single
    :class:`~repro.kernel.batch.CellStats` — per-run step counts,
    converged tally, final-state census — folded inside the workers,
    instead of a list of per-run summaries. Step counts and seeding are
    identical; grid-scale sweeps stop allocating and shipping records
    nobody reads individually.
    """

    game: Game
    runs: int
    kind: str = "trajectory"
    policy: Any = None
    scheduler: Any = None
    allowed: Any = None
    max_steps: Optional[int] = None
    backend: str = "fast"
    engine: Any = None
    seed: SeedLike = None
    label: Optional[str] = None
    stream: bool = False

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError(f"runs must be ≥ 1, got {self.runs}")
        if self.kind not in ("trajectory", "noisy", "classes"):
            raise ValueError(
                f"kind must be 'trajectory', 'noisy' or 'classes', got {self.kind!r}"
            )
        if self.backend not in ("fast", "exact", "class"):
            raise ValueError(
                f"backend must be 'fast', 'exact' or 'class', got {self.backend!r}"
            )
        if self.kind == "noisy" and (self.policy is not None or self.scheduler is not None):
            raise ValueError("noisy cells take an engine, not a policy/scheduler")
        if self.kind in ("trajectory", "classes") and self.engine is not None:
            raise ValueError(f"{self.kind} cells take a policy/scheduler, not an engine")
        if self.stream and self.kind != "trajectory":
            raise ValueError(
                f"stream=True applies to trajectory cells only, got kind={self.kind!r}"
            )
        if self.kind == "classes":
            for role, value in (("policy", self.policy), ("scheduler", self.scheduler)):
                if value is not None and not isinstance(value, str):
                    raise ValueError(
                        f"classes cells take class-symmetric {role} *names* "
                        f"(strings), got {value!r}"
                    )

    def _root(self, fallback: np.random.SeedSequence) -> np.random.SeedSequence:
        if self.seed is None:
            return fallback
        if isinstance(self.seed, np.random.SeedSequence):
            return self.seed
        return np.random.SeedSequence(self.seed)


def _is_vectorizable(cell: RunSpec) -> bool:
    from repro.kernel.tensor import policy_kind, scheduler_kind

    if cell.kind != "trajectory" or cell.backend != "fast":
        return False
    return policy_kind(cell.policy) is not None and scheduler_kind(cell.scheduler) is not None


def run_many(
    cells: Sequence[RunSpec],
    *,
    executor: str = "auto",
    seed: SeedLike = None,
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Execute every cell and return its result, in cell order.

    A cell's result is a list of per-run records, or a single
    :class:`~repro.kernel.batch.CellStats` aggregate for
    ``stream=True`` trajectory cells. The single batch entry point:
    callers pick a *semantics* (the cells) and an *executor*; the
    library guarantees the results are identical across every executor
    mode, so the choice is purely about speed. See the module
    docstring for the mode table.
    """
    cells = list(cells)
    if executor not in EXECUTORS:
        modes = ", ".join(repr(mode) for mode in EXECUTORS[:-1])
        raise ValueError(f"executor must be {modes} or {EXECUTORS[-1]!r}, got {executor!r}")
    if not cells:
        return []
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    fallbacks = root.spawn(len(cells))
    roots = [cell._root(fallback) for cell, fallback in zip(cells, fallbacks)]

    recorder = get_recorder()
    observing = recorder.enabled
    logger.debug("run_many: %d cell(s) via executor=%r", len(cells), executor)
    results: List[Any] = [None] * len(cells)
    vector_positions: List[int] = []
    with recorder.timer("run_many"):
        for pos, cell in enumerate(cells):
            if cell.kind == "noisy":
                route = executor
                results[pos] = _run_noisy_cell(cell, roots[pos], executor, max_workers)
            elif cell.kind == "classes":
                # Population-compressed: the count matrix IS the
                # vectorization, so every executor takes this route.
                route = "classes"
                results[pos] = _run_classes_cell(cell, roots[pos])
            elif executor == "vectorized" or (executor == "auto" and _is_vectorizable(cell)):
                # Collect; all vectorizable cells share ONE population call.
                route = "vectorized"
                vector_positions.append(pos)
            else:
                route = executor
                results[pos] = _run_trajectory_cell(cell, roots[pos], executor, max_workers)
            if observing:
                recorder.count("run_many.cells." + route)
                recorder.event(
                    "run_many.cell",
                    index=pos,
                    kind=cell.kind,
                    runs=cell.runs,
                    route=route,
                    label=cell.label,
                )
        if vector_positions:
            for pos, cell_results in zip(
                vector_positions,
                _run_cells_vectorized(
                    [cells[p] for p in vector_positions],
                    [roots[p] for p in vector_positions],
                ),
            ):
                results[pos] = cell_results
    return results  # type: ignore[return-value]


def _run_trajectory_cell(
    cell: RunSpec, root: np.random.SeedSequence, executor: str, max_workers: Optional[int]
) -> Any:
    from repro.kernel.batch import BatchRunner

    with BatchRunner(
        backend=cell.backend,
        executor=executor,
        max_workers=max_workers,
        max_steps=cell.max_steps,
    ) as runner:
        return runner.run(
            cell.game,
            runs=cell.runs,
            policy=cell.policy,
            scheduler=cell.scheduler,
            seed=root,
            allowed=cell.allowed,
            stream=cell.stream,
        )


def _run_classes_cell(cell: RunSpec, root: np.random.SeedSequence) -> List[Any]:
    from repro.kernel.classes import (
        ClassGame,
        ClassRunResult,
        DEFAULT_MAX_STEPS,
        run_class_better_response,
    )

    if isinstance(cell.game, ClassGame):
        if cell.allowed is not None:
            raise ValueError(
                "classes cells over a ClassGame carry their mask in the "
                "class alphabets; allowed= applies to per-miner games only"
            )
        cgame = cell.game
    else:
        cgame = ClassGame.from_game(cell.game, allowed=cell.allowed)
    policy = cell.policy if cell.policy is not None else "random-improving"
    scheduler = cell.scheduler if cell.scheduler is not None else "uniform"
    max_steps = cell.max_steps if cell.max_steps is not None else DEFAULT_MAX_STEPS
    streams = root.spawn(2 * cell.runs)
    results: List[Any] = []
    for index in range(cell.runs):
        # The library-wide seeding convention: stream 2i draws run i's
        # start, stream 2i+1 drives its stepper.
        counts = cgame.random_counts(seed=np.random.default_rng(streams[2 * index]))
        trajectory = run_class_better_response(
            cgame,
            counts,
            policy=policy,
            scheduler=scheduler,
            seed=np.random.default_rng(streams[2 * index + 1]),
            max_steps=max_steps,
            chunk=True,
            record="summary",
            raise_on_budget=False,
        )
        results.append(
            ClassRunResult(
                run_index=index,
                policy=policy,
                scheduler=scheduler,
                steps=trajectory.steps,
                moved=trajectory.moved,
                converged=trajectory.converged,
                final=trajectory.final,
            )
        )
    return results


def _run_noisy_cell(
    cell: RunSpec, root: np.random.SeedSequence, executor: str, max_workers: Optional[int]
) -> List[Any]:
    from repro.stochastic.noisy_engine import NoisyBatchRunner

    with NoisyBatchRunner(executor=executor, max_workers=max_workers) as runner:
        return runner.run(
            cell.game, replications=cell.runs, engine=cell.engine, seed=root
        )


def _run_cells_vectorized(
    cells: Sequence[RunSpec], roots: Sequence[np.random.SeedSequence]
) -> List[Any]:
    """All vectorizable trajectory cells through one population call.

    Jobs from every cell are concatenated and handed to
    :func:`~repro.kernel.tensor.run_trajectory_population` together, so
    cells with the same game shape and strategy land in the same
    lockstep bucket — cross-cell batching no per-cell runner offers.
    Each job still carries its own pre-spawned generator, so the
    summaries are bit-identical to the per-cell serial loops.
    ``stream=True`` cells fold their slice of outcomes into a
    :class:`~repro.kernel.batch.CellStats` instead of summary lists.
    """
    from repro.kernel.batch import TrajectorySummary, build_vector_jobs, fold_outcomes
    from repro.kernel.tensor import run_trajectory_population
    from repro.learning.policies import RandomImprovingPolicy
    from repro.learning.schedulers import UniformRandomScheduler

    all_jobs: List[Any] = []
    spans: List[Tuple[int, int]] = []
    kernels: List[Any] = []
    for cell, root in zip(cells, roots):
        streams = root.spawn(2 * cell.runs)
        seed_pairs = [(streams[2 * i], streams[2 * i + 1]) for i in range(cell.runs)]
        jobs, kernel = build_vector_jobs(
            cell.game,
            policy=cell.policy,
            scheduler=cell.scheduler,
            seed_pairs=seed_pairs,
            allowed=cell.allowed,
            max_steps=cell.max_steps,
            backend=cell.backend,
        )
        spans.append((len(all_jobs), len(all_jobs) + len(jobs)))
        kernels.append(kernel)
        all_jobs.extend(jobs)
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("run_many.vectorized_jobs", len(all_jobs))
        recorder.event("run_many.pack", cells=len(cells), jobs=len(all_jobs))
    logger.debug(
        "run_many: packed %d cell(s) into one %d-job population", len(cells), len(all_jobs)
    )
    outcomes = run_trajectory_population(all_jobs)
    results: List[Any] = []
    for cell, (start, stop), kernel in zip(cells, spans, kernels):
        policy_name = (
            cell.policy if cell.policy is not None else RandomImprovingPolicy()
        ).name
        scheduler_name = (
            cell.scheduler if cell.scheduler is not None else UniformRandomScheduler()
        ).name
        coin_names = kernel.coin_names
        if cell.stream:
            results.append(
                fold_outcomes(outcomes[start:stop], coin_names, policy_name, scheduler_name)
            )
            continue
        results.append(
            [
                TrajectorySummary(
                    run_index=index,
                    policy_name=policy_name,
                    scheduler_name=scheduler_name,
                    steps=outcome.steps,
                    converged=outcome.converged,
                    final_coins=tuple(coin_names[j] for j in outcome.final_assign),
                )
                for index, outcome in enumerate(outcomes[start:stop])
            ]
        )
    return results
