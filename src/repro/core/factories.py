"""Random game generation for experiments and property tests.

Games are generated with exact rational powers/rewards drawn from large
integer grids, which makes Assumption 2 (genericity) hold with
overwhelming probability; ``ensure_generic=True`` additionally verifies
it exactly (small games) and redraws on the rare collision.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

import numpy as np

from repro.core.coin import RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import make_miners, sorted_by_power
from repro.exceptions import InvalidModelError
from repro.core.assumptions import check_generic
from repro.util.rng import RngLike, make_rng

#: Resolution of the rational grid random values are drawn from.
_GRID = 10**9


def _random_fractions(
    rng: np.random.Generator,
    count: int,
    low: float,
    high: float,
    distribution: str,
) -> List[Fraction]:
    """Draw *count* exact fractions from the named distribution on [low, high]."""
    if low <= 0 or high <= low:
        raise InvalidModelError(f"need 0 < low < high, got low={low}, high={high}")
    if distribution == "uniform":
        raw = rng.uniform(low, high, count)
    elif distribution == "pareto":
        # Heavy-tailed powers: a few large pools, many small miners —
        # the empirical shape of real hashrate distributions.
        raw = low * (1.0 + rng.pareto(1.5, count))
        raw = np.clip(raw, low, high)
    elif distribution == "lognormal":
        raw = np.exp(rng.normal(np.log((low * high) ** 0.5), 0.75, count))
        raw = np.clip(raw, low, high)
    else:
        raise InvalidModelError(
            f"unknown distribution {distribution!r}; "
            "expected 'uniform', 'pareto' or 'lognormal'"
        )
    # Snap to a fine rational grid and jitter by a unique offset per index
    # so exact ties between draws are impossible.
    fractions = []
    for index, value in enumerate(raw):
        numerator = int(round(float(value) * _GRID)) * (count + 1) + (index + 1)
        fractions.append(Fraction(numerator, _GRID * (count + 1)))
    return fractions


def random_game(
    n_miners: int,
    n_coins: int,
    *,
    power_range: Sequence[float] = (1.0, 100.0),
    reward_range: Sequence[float] = (1.0, 50.0),
    power_distribution: str = "uniform",
    ensure_generic: bool = False,
    strict_powers: bool = True,
    seed: RngLike = None,
    max_redraws: int = 50,
) -> Game:
    """A random game with exact rational powers and rewards.

    Parameters
    ----------
    strict_powers:
        Guarantee strictly distinct powers (required by the Section 5
        mechanism). The grid-jitter construction already makes ties
        impossible, so this only triggers a defensive re-check.
    ensure_generic:
        Verify Assumption 2 exactly (feasible for ``n_miners ≤ 18``)
        and redraw on violation.
    """
    if n_miners < 1 or n_coins < 1:
        raise InvalidModelError("need at least one miner and one coin")
    rng = make_rng(seed)
    for _ in range(max_redraws):
        powers = _random_fractions(
            rng, n_miners, power_range[0], power_range[1], power_distribution
        )
        rewards = _random_fractions(rng, n_coins, reward_range[0], reward_range[1], "uniform")
        if strict_powers and len(set(powers)) != len(powers):
            continue
        coins = make_coins(f"c{i}" for i in range(1, n_coins + 1))
        game = Game(
            sorted_by_power(make_miners(powers)),
            coins,
            RewardFunction.from_values(coins, rewards),
        )
        if ensure_generic and n_miners <= 18 and not check_generic(game):
            continue
        return game
    raise InvalidModelError(
        f"failed to draw a valid game in {max_redraws} attempts; "
        "loosen the constraints or widen the ranges"
    )


def random_configuration(game: Game, seed: RngLike = None) -> Configuration:
    """A uniformly random configuration of *game*."""
    rng = make_rng(seed)
    indices = rng.integers(0, len(game.coins), len(game.miners))
    return Configuration(game.miners, [game.coins[int(i)] for i in indices])


def random_restricted_configuration(game: Game, allowed, seed: RngLike = None) -> Configuration:
    """A random configuration where each miner picks among its allowed coins.

    ``allowed`` maps miners to coin subsets (any form accepted by
    :func:`~repro.core.restricted.normalize_mask`); a trivial mask falls
    back to :func:`random_configuration` — including its single
    vectorized draw, so the two are interchangeable seed-for-seed when
    the mask does not actually restrict anything.
    """
    from repro.core.restricted import normalize_mask

    mask = normalize_mask(game, allowed)
    if mask is None:
        return random_configuration(game, seed=seed)
    rng = make_rng(seed)
    choices = []
    for miner in game.miners:
        options = mask[miner]
        choices.append(options[int(rng.integers(0, len(options)))])
    return Configuration(game.miners, choices)
