"""The asymmetric case: coins mineable only by subsets of miners.

The paper's discussion closes with: *"One also may wonder about the
asymmetric case where some coins can be mined only by a subset of the
miners."* In practice this is hardware: an SHA256d ASIC cannot mine a
Scrypt coin. This module implements that extension:

* :class:`RestrictedGame` wraps a base game with per-miner allowed coin
  sets and re-derives the strategic structure (better responses,
  stability) under the restriction.
* Theorem 1 *survives* the restriction: the ordinal potential argument
  (Observations 1–2) never uses the ability of any particular miner to
  make any particular move — restricting strategy sets only removes
  edges from the improvement graph, so `rank(list(s))` still strictly
  increases along every legal better-response step. E11 verifies this
  empirically; :func:`restricted_potential_compare` exposes the
  comparison.
* Equilibrium existence also survives (the Appendix A construction
  inserts each miner at its best *allowed* coin;
  :func:`greedy_restricted_equilibrium`). The proof of Claim 6 carries
  over verbatim because an inserted miner only makes other coins'
  crowds larger, never smaller — but *only* when every pair of miners
  shares comparable options; with disjoint hardware classes the claim
  still holds coin-class by coin-class.
* The *exact* analyses run restricted too:
  :meth:`RestrictedGame.enumerate_equilibria` /
  :meth:`RestrictedGame.iter_equilibria` (and
  ``analyze_improvement_dag`` / ``reachable_equilibria`` /
  ``find_nonzero_four_cycle``, which all accept a
  :class:`RestrictedGame` or an ``allowed=`` mask) default to
  ``backend="space"`` — the mask-aware
  :class:`~repro.kernel.space.ConfigSpace` engine walks only
  mask-valid integer configuration codes (per-miner digit alphabets,
  O(1) incremental mass updates, symmetry reduction over
  power-*and*-mask equivalence classes), and
  ``tests/test_restricted_space_parity.py`` holds it to
  configuration-for-configuration parity with the Fraction brute force
  over :meth:`RestrictedGame.all_configurations`.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner, sorted_by_power
from repro.core.potential import compare_potential
from repro.exceptions import InvalidConfigurationError, InvalidModelError


class RestrictedGame:
    """A game plus per-miner allowed coin sets (hardware compatibility).

    The payoff structure is the base game's; only the *strategy sets*
    shrink. Every miner must be allowed at least one coin, and a
    configuration is valid only if each miner sits on an allowed coin.
    """

    __slots__ = ("_game", "_allowed")

    def __init__(self, game: Game, allowed: Mapping[Miner, Sequence[Coin]]):
        self._game = game
        known = set(game.miners)
        for miner in allowed:
            if miner not in known:
                raise InvalidModelError(
                    f"restriction names miner {miner.name!r} which is not "
                    "in this game"
                )
        converted: Dict[Miner, Tuple[Coin, ...]] = {}
        for miner in game.miners:
            if miner not in allowed:
                raise InvalidModelError(
                    f"restriction misses miner {miner.name!r}; every miner "
                    "needs an explicit allowed set"
                )
            coins = tuple(dict.fromkeys(allowed[miner]))
            if not coins:
                raise InvalidModelError(
                    f"miner {miner.name!r} must be allowed at least one coin"
                )
            for coin in coins:
                if coin not in set(game.coins):
                    raise InvalidModelError(
                        f"miner {miner.name!r} is allowed unknown coin {coin.name!r}"
                    )
            converted[miner] = coins
        self._allowed = converted

    # ------------------------------------------------------------------

    @classmethod
    def by_algorithm(
        cls,
        game: Game,
        coin_algorithms: Mapping[str, str],
        miner_hardware: Mapping[str, str],
    ) -> "RestrictedGame":
        """Build restrictions from hardware classes.

        ``coin_algorithms`` maps coin name → PoW algorithm;
        ``miner_hardware`` maps miner name → the algorithm its rigs run.
        A miner may mine exactly the coins matching its hardware.
        """
        allowed: Dict[Miner, List[Coin]] = {}
        for miner in game.miners:
            if miner.name not in miner_hardware:
                raise InvalidModelError(f"no hardware class for miner {miner.name!r}")
            algorithm = miner_hardware[miner.name]
            coins = [
                coin
                for coin in game.coins
                if coin_algorithms.get(coin.name) == algorithm
            ]
            allowed[miner] = coins
        return cls(game, allowed)

    # ------------------------------------------------------------------

    @property
    def game(self) -> Game:
        return self._game

    @property
    def miners(self) -> Tuple[Miner, ...]:
        return self._game.miners

    @property
    def coins(self) -> Tuple[Coin, ...]:
        return self._game.coins

    def allowed_coins(self, miner: Miner) -> Tuple[Coin, ...]:
        try:
            return self._allowed[miner]
        except KeyError:
            raise InvalidModelError(f"miner {miner.name!r} is not in this game")

    def allowed_in_coin_order(self, miner: Miner) -> Tuple[Coin, ...]:
        """*miner*'s allowed coins, ascending in game coin order.

        :meth:`allowed_coins` preserves the caller's mapping order;
        exhaustive scans (and the mask-aware space engine's digit
        alphabets) need the canonical ascending order instead.
        """
        allowed = set(self.allowed_coins(miner))
        return tuple(coin for coin in self._game.coins if coin in allowed)

    def allowed_map(self) -> Dict[Miner, Tuple[Coin, ...]]:
        """The full per-miner mask, for mask-consuming engines."""
        return dict(self._allowed)

    def is_allowed(self, miner: Miner, coin: Coin) -> bool:
        return coin in self._allowed.get(miner, ())

    def validate_configuration(self, config: Configuration) -> None:
        """Base-game validity plus the restriction constraint."""
        self._game.validate_configuration(config)
        for miner, coin in config:
            if not self.is_allowed(miner, coin):
                raise InvalidConfigurationError(
                    f"miner {miner.name!r} sits on {coin.name!r} which its "
                    "hardware cannot mine"
                )

    # ------------------------------------------------------------------
    # Exhaustive scans (the restricted configuration space)
    # ------------------------------------------------------------------

    def configuration_count(self) -> int:
        """Number of mask-valid configurations (``Π_p |allowed(p)|``)."""
        count = 1
        for miner in self.miners:
            count *= len(self._allowed[miner])
        return count

    def all_configurations(self) -> Iterator[Configuration]:
        """Every mask-valid configuration, in product order.

        Mirrors :meth:`repro.core.game.Game.all_configurations` — miner
        0 is the most significant position and each miner's choices run
        ascending in *game coin order* — so the scan order equals the
        mask-aware space engine's ascending-code order and restricted
        answers stay order-comparable across backends.
        """
        ordered = [self.allowed_in_coin_order(miner) for miner in self.miners]
        for choices in itertools.product(*ordered):
            yield Configuration(self.miners, list(choices))

    def enumerate_equilibria(
        self,
        *,
        limit: Optional[int] = None,
        backend: str = "space",
        symmetry: bool = True,
    ) -> List[Configuration]:
        """All pure equilibria of the restricted game, by exhaustive search.

        ``backend="space"`` (the default) scans only mask-valid integer
        configuration codes through the mask-aware
        :class:`~repro.kernel.space.ConfigSpace`;
        ``backend="exact"`` is the Fraction brute force over
        :meth:`all_configurations`. Results — content and order — are
        identical; ``limit`` guards the scan as in
        :func:`repro.core.equilibrium.enumerate_equilibria`.
        """
        from repro.core.equilibrium import enumerate_equilibria

        return enumerate_equilibria(
            self, limit=limit, backend=backend, symmetry=symmetry
        )

    def iter_equilibria(self, *, backend: str = "space") -> Iterator[Configuration]:
        """Lazily iterate the restricted equilibria in product order."""
        from repro.core.equilibrium import iter_equilibria

        return iter_equilibria(self, backend=backend)

    # ------------------------------------------------------------------
    # Strategic structure under the restriction
    # ------------------------------------------------------------------

    def better_response_moves(
        self, miner: Miner, config: Configuration
    ) -> Tuple[Coin, ...]:
        """The base game's improving moves, filtered to allowed coins."""
        return tuple(
            coin
            for coin in self._game.better_response_moves(miner, config)
            if self.is_allowed(miner, coin)
        )

    def best_response(self, miner: Miner, config: Configuration) -> Optional[Coin]:
        moves = self.better_response_moves(miner, config)
        if not moves:
            return None
        return max(
            moves,
            key=lambda coin: (
                self._game.payoff_after_move(miner, coin, config),
                coin.name,
            ),
        )

    def is_miner_stable(self, miner: Miner, config: Configuration) -> bool:
        return not self.better_response_moves(miner, config)

    def is_stable(self, config: Configuration) -> bool:
        return all(self.is_miner_stable(miner, config) for miner in self.miners)

    def unstable_miners(self, config: Configuration) -> Tuple[Miner, ...]:
        return tuple(
            miner
            for miner in self.miners
            if not self.is_miner_stable(miner, config)
        )

    def payoff(self, miner: Miner, config: Configuration) -> Fraction:
        return self._game.payoff(miner, config)

    # ------------------------------------------------------------------

    def greedy_equilibrium(self) -> Configuration:
        """Appendix A's construction restricted to allowed coins.

        Miners are inserted in decreasing power order, each to its best
        *allowed* coin given earlier insertions. The result is stable in
        the restricted game for the same reason as Claim 6: later
        insertions only increase crowds.
        """
        ordered = sorted_by_power(self.miners)
        placed: List[Miner] = []
        choices: List[Coin] = []
        partial: Optional[Configuration] = None
        for miner in ordered:
            best_coin: Optional[Coin] = None
            best_value: Optional[Fraction] = None
            for coin in self.allowed_coins(miner):
                occupied = Fraction(0)
                if partial is not None:
                    occupied = sum(
                        (other.power for other in partial.miners_on(coin)),
                        Fraction(0),
                    )
                value = self._game.rewards[coin] * miner.power / (occupied + miner.power)
                if best_value is None or value > best_value:
                    best_value = value
                    best_coin = coin
            assert best_coin is not None
            placed.append(miner)
            choices.append(best_coin)
            partial = Configuration(placed, choices)
        assert partial is not None
        assignment = {miner: coin for miner, coin in partial}
        return Configuration.from_mapping(self.miners, assignment)

    def compare_potential(self, first: Configuration, second: Configuration) -> int:
        """The base game's ordinal potential — still valid here.

        Restricting strategy sets removes improvement edges but changes
        no payoffs, so the same ``rank(list(s))`` strictly increases on
        every *legal* better-response step.
        """
        return compare_potential(self._game, first, second)

    def __repr__(self) -> str:
        restricted = sum(
            1 for miner in self.miners if len(self._allowed[miner]) < len(self.coins)
        )
        return (
            f"RestrictedGame({self._game!r}, {restricted}/{len(self.miners)} "
            "miners restricted)"
        )


def normalize_mask(
    game: Game, allowed: Optional[Mapping[Miner, Sequence[Coin]]]
) -> Optional[Dict[Miner, Tuple[Coin, ...]]]:
    """Per-miner allowed coins, ascending in game coin order; None = all.

    A miner missing from the mapping is unrestricted; a listed miner
    must belong to the game and keep at least one coin, and every
    listed coin must be a game coin — a typo'd mask raises instead of
    silently freezing a miner as "stable" (or silently running
    unrestricted). Masks that allow every coin for every miner collapse
    to ``None`` so unrestricted hot paths stay mask-free. Shared by the
    strategy views (:mod:`repro.learning.view`) and the mask-aware
    enumeration engine (:mod:`repro.kernel.space`).
    """
    if allowed is None:
        return None
    coins = game.coins
    coin_set = set(coins)
    miner_set = set(game.miners)
    for miner in allowed:
        if miner not in miner_set:
            raise InvalidModelError(
                f"allowed-coin mask names miner {miner.name!r} which is not "
                "in this game"
            )
        if not tuple(allowed[miner]):
            raise InvalidModelError(
                f"miner {miner.name!r} must be allowed at least one coin"
            )
        for coin in allowed[miner]:
            if coin not in coin_set:
                raise InvalidModelError(
                    f"allowed-coin mask gives miner {miner.name!r} unknown "
                    f"coin {coin.name!r}"
                )
    mask: Dict[Miner, Tuple[Coin, ...]] = {}
    trivial = True
    for miner in game.miners:
        if miner in allowed:
            allowed_set = set(allowed[miner])
            ordered = tuple(coin for coin in coins if coin in allowed_set)
        else:
            ordered = coins
        if len(ordered) != len(coins):
            trivial = False
        mask[miner] = ordered
    return None if trivial else mask


def as_restricted(
    game: Union[Game, "RestrictedGame"],
    allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
) -> Tuple[Game, Optional["RestrictedGame"]]:
    """Normalize ``(game-or-RestrictedGame, allowed=)`` to ``(base, restriction)``.

    The shared front door of every analysis that accepts either a
    :class:`RestrictedGame` or a plain :class:`Game` plus an
    ``allowed=`` mask: returns the base game and the restriction to
    honor (``None`` when unrestricted). Miners missing from an
    ``allowed=`` mapping are unrestricted; miners (or coins) unknown to
    the game raise, and passing a mask *and* a RestrictedGame is
    ambiguous and raises.
    """
    if isinstance(game, RestrictedGame):
        if allowed is not None:
            raise InvalidModelError(
                "pass either a RestrictedGame or an allowed= mask, not both"
            )
        return game.game, game
    mask = normalize_mask(game, allowed)
    if mask is None:
        return game, None
    return game, RestrictedGame(game, mask)


def restricted_potential_compare(
    restricted: RestrictedGame, first: Configuration, second: Configuration
) -> int:
    """Module-level alias of :meth:`RestrictedGame.compare_potential`."""
    return restricted.compare_potential(first, second)


def greedy_restricted_equilibrium(restricted: RestrictedGame) -> Configuration:
    """Module-level alias of :meth:`RestrictedGame.greedy_equilibrium`."""
    return restricted.greedy_equilibrium()
