"""The asymmetric case: coins mineable only by subsets of miners.

The paper's discussion closes with: *"One also may wonder about the
asymmetric case where some coins can be mined only by a subset of the
miners."* In practice this is hardware: an SHA256d ASIC cannot mine a
Scrypt coin. This module implements that extension:

* :class:`RestrictedGame` wraps a base game with per-miner allowed coin
  sets and re-derives the strategic structure (better responses,
  stability) under the restriction.
* Theorem 1 *survives* the restriction: the ordinal potential argument
  (Observations 1–2) never uses the ability of any particular miner to
  make any particular move — restricting strategy sets only removes
  edges from the improvement graph, so `rank(list(s))` still strictly
  increases along every legal better-response step. E11 verifies this
  empirically; :func:`restricted_potential_compare` exposes the
  comparison.
* Equilibrium existence also survives (the Appendix A construction
  inserts each miner at its best *allowed* coin;
  :func:`greedy_restricted_equilibrium`). The proof of Claim 6 carries
  over verbatim because an inserted miner only makes other coins'
  crowds larger, never smaller — but *only* when every pair of miners
  shares comparable options; with disjoint hardware classes the claim
  still holds coin-class by coin-class.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner, sorted_by_power
from repro.core.potential import compare_potential
from repro.exceptions import InvalidConfigurationError, InvalidModelError


class RestrictedGame:
    """A game plus per-miner allowed coin sets (hardware compatibility).

    The payoff structure is the base game's; only the *strategy sets*
    shrink. Every miner must be allowed at least one coin, and a
    configuration is valid only if each miner sits on an allowed coin.
    """

    __slots__ = ("_game", "_allowed")

    def __init__(self, game: Game, allowed: Mapping[Miner, Sequence[Coin]]):
        self._game = game
        converted: Dict[Miner, Tuple[Coin, ...]] = {}
        for miner in game.miners:
            if miner not in allowed:
                raise InvalidModelError(
                    f"restriction misses miner {miner.name!r}; every miner "
                    "needs an explicit allowed set"
                )
            coins = tuple(dict.fromkeys(allowed[miner]))
            if not coins:
                raise InvalidModelError(
                    f"miner {miner.name!r} must be allowed at least one coin"
                )
            for coin in coins:
                if coin not in set(game.coins):
                    raise InvalidModelError(
                        f"miner {miner.name!r} is allowed unknown coin {coin.name!r}"
                    )
            converted[miner] = coins
        self._allowed = converted

    # ------------------------------------------------------------------

    @classmethod
    def by_algorithm(
        cls,
        game: Game,
        coin_algorithms: Mapping[str, str],
        miner_hardware: Mapping[str, str],
    ) -> "RestrictedGame":
        """Build restrictions from hardware classes.

        ``coin_algorithms`` maps coin name → PoW algorithm;
        ``miner_hardware`` maps miner name → the algorithm its rigs run.
        A miner may mine exactly the coins matching its hardware.
        """
        allowed: Dict[Miner, List[Coin]] = {}
        for miner in game.miners:
            if miner.name not in miner_hardware:
                raise InvalidModelError(f"no hardware class for miner {miner.name!r}")
            algorithm = miner_hardware[miner.name]
            coins = [
                coin
                for coin in game.coins
                if coin_algorithms.get(coin.name) == algorithm
            ]
            allowed[miner] = coins
        return cls(game, allowed)

    # ------------------------------------------------------------------

    @property
    def game(self) -> Game:
        return self._game

    @property
    def miners(self) -> Tuple[Miner, ...]:
        return self._game.miners

    @property
    def coins(self) -> Tuple[Coin, ...]:
        return self._game.coins

    def allowed_coins(self, miner: Miner) -> Tuple[Coin, ...]:
        try:
            return self._allowed[miner]
        except KeyError:
            raise InvalidModelError(f"miner {miner.name!r} is not in this game")

    def is_allowed(self, miner: Miner, coin: Coin) -> bool:
        return coin in self._allowed.get(miner, ())

    def validate_configuration(self, config: Configuration) -> None:
        """Base-game validity plus the restriction constraint."""
        self._game.validate_configuration(config)
        for miner, coin in config:
            if not self.is_allowed(miner, coin):
                raise InvalidConfigurationError(
                    f"miner {miner.name!r} sits on {coin.name!r} which its "
                    "hardware cannot mine"
                )

    # ------------------------------------------------------------------
    # Strategic structure under the restriction
    # ------------------------------------------------------------------

    def better_response_moves(
        self, miner: Miner, config: Configuration
    ) -> Tuple[Coin, ...]:
        """The base game's improving moves, filtered to allowed coins."""
        return tuple(
            coin
            for coin in self._game.better_response_moves(miner, config)
            if self.is_allowed(miner, coin)
        )

    def best_response(self, miner: Miner, config: Configuration) -> Optional[Coin]:
        moves = self.better_response_moves(miner, config)
        if not moves:
            return None
        return max(
            moves,
            key=lambda coin: (
                self._game.payoff_after_move(miner, coin, config),
                coin.name,
            ),
        )

    def is_miner_stable(self, miner: Miner, config: Configuration) -> bool:
        return not self.better_response_moves(miner, config)

    def is_stable(self, config: Configuration) -> bool:
        return all(self.is_miner_stable(miner, config) for miner in self.miners)

    def unstable_miners(self, config: Configuration) -> Tuple[Miner, ...]:
        return tuple(
            miner
            for miner in self.miners
            if not self.is_miner_stable(miner, config)
        )

    def payoff(self, miner: Miner, config: Configuration) -> Fraction:
        return self._game.payoff(miner, config)

    # ------------------------------------------------------------------

    def greedy_equilibrium(self) -> Configuration:
        """Appendix A's construction restricted to allowed coins.

        Miners are inserted in decreasing power order, each to its best
        *allowed* coin given earlier insertions. The result is stable in
        the restricted game for the same reason as Claim 6: later
        insertions only increase crowds.
        """
        ordered = sorted_by_power(self.miners)
        placed: List[Miner] = []
        choices: List[Coin] = []
        partial: Optional[Configuration] = None
        for miner in ordered:
            best_coin: Optional[Coin] = None
            best_value: Optional[Fraction] = None
            for coin in self.allowed_coins(miner):
                occupied = Fraction(0)
                if partial is not None:
                    occupied = sum(
                        (other.power for other in partial.miners_on(coin)),
                        Fraction(0),
                    )
                value = self._game.rewards[coin] * miner.power / (occupied + miner.power)
                if best_value is None or value > best_value:
                    best_value = value
                    best_coin = coin
            assert best_coin is not None
            placed.append(miner)
            choices.append(best_coin)
            partial = Configuration(placed, choices)
        assert partial is not None
        assignment = {miner: coin for miner, coin in partial}
        return Configuration.from_mapping(self.miners, assignment)

    def compare_potential(self, first: Configuration, second: Configuration) -> int:
        """The base game's ordinal potential — still valid here.

        Restricting strategy sets removes improvement edges but changes
        no payoffs, so the same ``rank(list(s))`` strictly increases on
        every *legal* better-response step.
        """
        return compare_potential(self._game, first, second)

    def __repr__(self) -> str:
        restricted = sum(
            1 for miner in self.miners if len(self._allowed[miner]) < len(self.coins)
        )
        return (
            f"RestrictedGame({self._game!r}, {restricted}/{len(self.miners)} "
            "miners restricted)"
        )


def restricted_potential_compare(
    restricted: RestrictedGame, first: Configuration, second: Configuration
) -> int:
    """Module-level alias of :meth:`RestrictedGame.compare_potential`."""
    return restricted.compare_potential(first, second)


def greedy_restricted_equilibrium(restricted: RestrictedGame) -> Configuration:
    """Module-level alias of :meth:`RestrictedGame.greedy_equilibrium`."""
    return restricted.greedy_equilibrium()
