"""Assumption checkers for Section 4 of the paper.

* **Assumption 1 (never alone).** In every configuration where some coin
  has at most one miner, *some* miner has a better-response step into
  that coin. The paper notes this cannot hold when ``|Π| < 2|C|`` and
  typically holds when miners far outnumber coins.
* **Assumption 2 (generic game).** No two coin/miner-subset pairs
  produce equal RPUs: for all coins ``c ≠ c'`` and subsets
  ``P, P' ⊆ Π``, ``F(c)/Σ_{p∈P} m_p ≠ F(c')/Σ_{p∈P'} m_p``.

Both checks are exponential in general (they quantify over
configurations / subsets); exact checkers are provided for small games
and a sampling fallback for large ones. Random games generated with
:func:`repro.core.factories.random_game` are generic with probability 1
when powers are drawn with enough entropy — the exact checker is the
ground truth in tests.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Optional, Set, Tuple

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.exceptions import AssumptionViolatedError, InvalidModelError
from repro.util.rng import RngLike, make_rng


def configuration_violates_never_alone(game: Game, config: Configuration) -> bool:
    """Whether *config* witnesses a violation of Assumption 1.

    A violation is a coin with ≤ 1 miners such that *no* miner has a
    better-response step into it.
    """
    for coin in game.coins:
        occupants = config.miners_on(coin)
        if len(occupants) > 1:
            continue
        if not any(
            game.is_better_response(miner, coin, config)
            for miner in game.miners
            if config.coin_of(miner) != coin
        ):
            return True
    return False


def check_never_alone(
    game: Game,
    *,
    exhaustive_limit: int = 200_000,
    samples: int = 2_000,
    seed: RngLike = None,
) -> bool:
    """Check Assumption 1 over all configurations (or a random sample).

    Exhaustive when the configuration space is at most
    ``exhaustive_limit``; otherwise samples configurations uniformly.
    The sampled check can only *refute* the assumption with certainty;
    a ``True`` result from sampling is evidence, not proof.
    """
    if game.configuration_count() <= exhaustive_limit:
        return not any(
            configuration_violates_never_alone(game, config)
            for config in game.all_configurations()
        )
    rng = make_rng(seed)
    coins = game.coins
    for _ in range(samples):
        choices = [coins[int(index)] for index in rng.integers(0, len(coins), len(game.miners))]
        config = Configuration(game.miners, choices)
        if configuration_violates_never_alone(game, config):
            return False
    return True


def _subset_sums(game: Game) -> Set[Fraction]:
    """All nonzero subset sums of mining powers (2^n; small games only)."""
    powers = [miner.power for miner in game.miners]
    sums: Set[Fraction] = set()
    for size in range(1, len(powers) + 1):
        for subset in itertools.combinations(powers, size):
            sums.add(sum(subset, Fraction(0)))
    return sums


def check_generic(game: Game, *, max_miners: int = 18) -> bool:
    """Exactly check Assumption 2 by comparing all subset-sum RPU ratios.

    The condition ``F(c)/Σ_P m ≠ F(c')/Σ_{P'} m`` for all ``c ≠ c'`` is
    equivalent to: no value appears in the RPU sets of two different
    coins, where coin ``c``'s RPU set is ``{F(c)/σ : σ a nonzero subset
    sum}``. Exact ``Fraction`` arithmetic makes the comparison sound.
    Refuses games with more than *max_miners* miners (the subset count
    is ``2^n``).
    """
    if len(game.miners) > max_miners:
        raise InvalidModelError(
            f"exact genericity check is exponential; game has {len(game.miners)} miners "
            f"(limit {max_miners}) — use generic-by-construction powers instead"
        )
    sums = sorted(_subset_sums(game))
    seen: Dict[Fraction, object] = {}
    for coin in game.coins:
        reward = game.rewards[coin]
        for sigma in sums:
            value = reward / sigma
            owner = seen.get(value)
            if owner is None:
                seen[value] = coin
            elif owner != coin:
                return False
    return True


def find_genericity_violation(
    game: Game, *, max_miners: int = 18
) -> Optional[Tuple[Fraction, str, str]]:
    """A witness ``(value, coin, coin')`` of an Assumption 2 violation.

    Returns ``None`` when the game is generic. Same complexity bound as
    :func:`check_generic`.
    """
    if len(game.miners) > max_miners:
        raise InvalidModelError(
            f"exact genericity check is exponential; game has {len(game.miners)} miners"
        )
    sums = sorted(_subset_sums(game))
    seen: Dict[Fraction, str] = {}
    for coin in game.coins:
        reward = game.rewards[coin]
        for sigma in sums:
            value = reward / sigma
            owner = seen.get(value)
            if owner is None:
                seen[value] = coin.name
            elif owner != coin.name:
                return value, owner, coin.name
    return None


def require_section4_assumptions(game: Game, *, seed: RngLike = None) -> None:
    """Raise :class:`AssumptionViolatedError` unless A1 and A2 hold.

    Used by the Section 4 helpers (:mod:`repro.manipulation`) as a
    guard; for large games the A1 check is sampled (see
    :func:`check_never_alone`).
    """
    if len(game.miners) < 2 * len(game.coins):
        raise AssumptionViolatedError(
            f"Assumption 1 cannot hold with {len(game.miners)} miners and "
            f"{len(game.coins)} coins (need |Π| ≥ 2|C|)"
        )
    if not check_never_alone(game, seed=seed):
        raise AssumptionViolatedError("game violates Assumption 1 (never alone)")
    if len(game.miners) <= 18 and not check_generic(game):
        raise AssumptionViolatedError("game violates Assumption 2 (genericity)")
