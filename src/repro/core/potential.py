"""Potential functions for the Game of Coins (paper, Section 3 + App. B).

Three artifacts from the paper live here:

* **The ordinal potential of Theorem 1**: ``H(s) = rank(list(s))``, where
  ``list(s)`` sorts the pairs ``⟨RPU_c(s), c⟩`` lexicographically. Ranks
  over the full configuration space are exponential to materialize, but
  the potential is only ever *compared*, and comparing ranks is the same
  as comparing the lists lexicographically — so
  :func:`compare_potential` is O(n + |C| log |C|) and works at any scale.
* **The symmetric potential of Appendix B**: ``Σ_c 1/M_c(s)`` decreases
  along better-response steps when all rewards are equal.
* **The exact-potential refuter of Proposition 1**: an exact potential
  exists iff every 4-cycle of unilateral deviations has zero net payoff
  change (Monderer & Shapley 1996); :func:`exact_potential_cycle_defect`
  measures the defect of a given 4-cycle and
  :func:`find_nonzero_four_cycle` searches for a witness.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.exceptions import InvalidModelError

if TYPE_CHECKING:  # pragma: no cover — restricted imports this module
    from repro.core.restricted import RestrictedGame

#: One entry of ``list(s)``: the RPU of a coin paired with a stable
#: tie-break key (the coin's index in the game's coin tuple).
RpuEntry = Tuple[Optional[Fraction], int]


def rpu_list(game: Game, config: Configuration) -> Tuple[RpuEntry, ...]:
    """The paper's ``list(s)``: ``⟨RPU_c(s), c⟩`` sorted ascending.

    Coins are identified by their index in ``game.coins`` so the
    lexicographic order is total and deterministic. Unoccupied coins
    have no RPU; we place them *last* (an unoccupied coin's reward is
    claimable in full by whoever joins, so treating its slot as "above
    every occupied RPU" preserves Observation 1's monotonicity: a miner
    never vacates a coin to leave it empty unless it moves to a strictly
    higher-RPU position).
    """
    entries: List[Tuple[int, RpuEntry]] = []
    for index, coin in enumerate(game.coins):
        rpu = game.rpu(coin, config)
        entries.append((0 if rpu is not None else 1, (rpu, index)))
    entries.sort(key=lambda item: (item[0], item[1][0] if item[1][0] is not None else 0, item[1][1]))
    return tuple(entry for _, entry in entries)


def compare_potential(game: Game, first: Configuration, second: Configuration) -> int:
    """Compare ``H(first)`` and ``H(second)``: −1, 0 or +1.

    Since ``H(s) = rank(list(s))`` and rank is monotone in the
    lexicographic order on lists, comparing ranks is comparing lists.
    Unoccupied coins compare above all occupied ones (see
    :func:`rpu_list`).
    """
    list_a = rpu_list(game, first)
    list_b = rpu_list(game, second)
    for entry_a, entry_b in zip(list_a, list_b):
        key_a = _entry_key(entry_a)
        key_b = _entry_key(entry_b)
        if key_a < key_b:
            return -1
        if key_a > key_b:
            return 1
    return 0


def _entry_key(entry: RpuEntry) -> Tuple[int, Fraction, int]:
    rpu, coin_index = entry
    if rpu is None:
        return (1, Fraction(0), coin_index)
    return (0, rpu, coin_index)


def potential_rank(game: Game, config: Configuration) -> int:
    """``H(s)``: the rank of ``list(s)`` among all configurations.

    Materializes the full list order, so it is exponential in ``n`` and
    intended for small games and tests; production code should use
    :func:`compare_potential`.
    """
    all_keys = sorted(
        {tuple(_entry_key(e) for e in rpu_list(game, s)) for s in game.all_configurations()}
    )
    key = tuple(_entry_key(e) for e in rpu_list(game, config))
    return all_keys.index(key) + 1


def symmetric_potential(game: Game, config: Configuration) -> Fraction:
    """Appendix B's potential ``Σ_c 1/M_c(s)`` for symmetric rewards.

    Defined over *occupied* coins. Proposition 4's strict decrease along
    better-response steps holds whenever the move's target coin is
    already occupied (the paper's Eq. 6 algebra divides by ``M_{c'}(s)``,
    implicitly assuming it is nonzero). A move *into an empty coin* adds
    a fresh ``1/m_p`` term and can increase this sum — in the paper's
    regime of interest (many more miners than coins, Assumption 1) all
    coins are occupied and the caveat is vacuous. The fully general
    ordinal potential is :func:`compare_potential`.
    """
    rewards = {reward for _, reward in game.rewards.items()}
    if len(rewards) != 1:
        raise InvalidModelError(
            "the symmetric potential applies only when all coin rewards are equal"
        )
    total = Fraction(0)
    for coin in config.occupied_coins():
        total += Fraction(1) / game.coin_power(coin, config)
    return total


# ----------------------------------------------------------------------
# Exact potential (Proposition 1)
# ----------------------------------------------------------------------


def exact_potential_cycle_defect(
    game: Game,
    start: Configuration,
    miner_a: Miner,
    coin_a: Coin,
    miner_b: Miner,
    coin_b: Coin,
) -> Fraction:
    """The payoff-change sum around the 4-cycle generated by two deviations.

    Starting from ``start``, walk the closed path

        ``s → (a→coin_a) → (b→coin_b) → (a→back) → (b→back) = s``

    summing, on each edge, the deviator's payoff change. By Monderer &
    Shapley (1996, Theorem 2.8) the game admits an exact potential iff
    this sum is zero for *every* such cycle. Proposition 1's
    counterexample is a cycle with defect ``2/3``.
    """
    if miner_a == miner_b:
        raise InvalidModelError("the 4-cycle needs two distinct miners")
    original_a = start.coin_of(miner_a)
    original_b = start.coin_of(miner_b)

    defect = Fraction(0)
    state = start
    for miner, coin in (
        (miner_a, coin_a),
        (miner_b, coin_b),
        (miner_a, original_a),
        (miner_b, original_b),
    ):
        before = game.payoff(miner, state)
        state = state.move(miner, coin)
        defect += game.payoff(miner, state) - before
    if state != start:
        raise AssertionError("4-cycle did not close; this is a bug")
    return defect


def find_nonzero_four_cycle(
    game: "Union[Game, RestrictedGame]",
    *,
    backend: str = "space",
    allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
) -> Optional[Tuple[Configuration, Miner, Coin, Miner, Coin, Fraction]]:
    """Search all 4-cycles for one with nonzero defect (small games only).

    Returns the witness tuple ``(start, miner_a, coin_a, miner_b,
    coin_b, defect)`` or ``None`` if every cycle closes — i.e. the game
    *does* admit an exact potential (e.g. single-miner games).

    ``backend="space"`` (the default) scans integer configuration codes
    with incrementally maintained masses and tests each cycle's defect
    by integer arithmetic over one common denominator (zeroness is
    invariant under the kernel's power/reward scaling); the witness —
    the *first* nonzero cycle in the seed's scan order — is then
    materialized and its exact Fraction defect recomputed at the
    boundary, so the result is identical to ``backend="exact"``.

    *game* may be a :class:`~repro.core.restricted.RestrictedGame` (or
    a plain game plus an ``allowed=`` per-miner coin mask): only
    *legal* cycles are then scanned — mask-valid starts, each deviation
    within the deviator's allowed set — deciding whether the
    *restricted* game admits an exact potential on its reachable
    strategy space. Payoffs (and hence defects) are the base game's.
    """
    from repro.core.restricted import as_restricted

    base, restricted = as_restricted(game, allowed)
    if backend == "space":
        from repro.kernel.space import ConfigSpace

        space = ConfigSpace(
            base if restricted is None else restricted, symmetry=False
        )
        witness = space.four_cycle_witness()
        if witness is None:
            return None
        code, a, ja, b, jb = witness
        start = space.config_of(code)
        miner_a, miner_b = base.miners[a], base.miners[b]
        coin_a, coin_b = base.coins[ja], base.coins[jb]
        defect = exact_potential_cycle_defect(base, start, miner_a, coin_a, miner_b, coin_b)
        return (start, miner_a, coin_a, miner_b, coin_b, defect)
    if backend != "exact":
        raise InvalidModelError(
            f"unknown search backend {backend!r}; expected 'space' or 'exact'"
        )
    miners = base.miners
    starts = (
        base.all_configurations()
        if restricted is None
        else restricted.all_configurations()
    )
    # Per-miner deviation targets are constant across the scan.
    deviations: Mapping[Miner, Tuple[Coin, ...]] = {
        miner: (
            base.coins
            if restricted is None
            else restricted.allowed_in_coin_order(miner)
        )
        for miner in miners
    }
    for start in starts:
        for miner_a, miner_b in itertools.combinations(miners, 2):
            for coin_a in deviations[miner_a]:
                if coin_a == start.coin_of(miner_a):
                    continue
                for coin_b in deviations[miner_b]:
                    if coin_b == start.coin_of(miner_b):
                        continue
                    defect = exact_potential_cycle_defect(
                        base, start, miner_a, coin_a, miner_b, coin_b
                    )
                    if defect != 0:
                        return (start, miner_a, coin_a, miner_b, coin_b, defect)
    return None


def proposition1_counterexample() -> Tuple[Game, Fraction]:
    """The exact game of Proposition 1 and its measured cycle defect.

    Two miners with powers 2 and 1, two coins with reward 1 each; the
    cycle ``s1→s2→s3→s4→s1`` from the paper has payoff-change sum 2/3,
    so no exact potential exists.
    """
    game = Game.create([2, 1], [1, 1])
    p1, p2 = game.miners
    c1, c2 = game.coins
    s1 = Configuration(game.miners, [c1, c1])
    defect = exact_potential_cycle_defect(game, s1, p2, c2, p1, c2)
    return game, defect


def potential_trace(
    game: Game, configs: Sequence[Configuration]
) -> List[Tuple[RpuEntry, ...]]:
    """The ``list(s)`` value at every configuration of a trajectory.

    Used by tests and E4 to audit that the ordinal potential strictly
    increases along every better-response step.
    """
    return [rpu_list(game, config) for config in configs]


def is_strictly_increasing_along(
    game: Game, configs: Sequence[Configuration]
) -> bool:
    """Whether ``H`` strictly increases between consecutive configurations."""
    return all(
        compare_potential(game, configs[i], configs[i + 1]) < 0
        for i in range(len(configs) - 1)
    )
