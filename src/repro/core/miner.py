"""Miners: the strategic players of the Game of Coins.

A miner is an identity plus a strictly positive mining power
``m_p ∈ R+`` (paper, Section 2). Powers are stored as exact
:class:`fractions.Fraction` so payoff comparisons are never corrupted by
floating-point ties (see :mod:`repro._numeric`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence, Tuple

from repro._numeric import Number, to_positive_fraction
from repro.exceptions import InvalidModelError


@dataclass(frozen=True, order=False)
class Miner:
    """A miner (player) with a name and a strictly positive mining power.

    Instances are immutable and hashable; identity is the pair
    ``(name, power)``. Two miners in one game must have distinct names.
    """

    name: str
    power: Fraction

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise InvalidModelError(f"miner name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.power, Fraction):
            object.__setattr__(self, "power", to_positive_fraction(self.power, name="power"))
        elif self.power <= 0:
            raise InvalidModelError(f"miner {self.name!r} must have positive power, got {self.power}")
        # Cached: Fraction.__hash__ performs a modular pow, and miners
        # key every hot dict (kernel index maps, configurations).
        object.__setattr__(self, "_hash", hash((self.name, self.power)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @classmethod
    def of(cls, name: str, power: Number) -> "Miner":
        """Build a miner converting *power* to an exact fraction."""
        return cls(name, to_positive_fraction(power, name=f"power of miner {name!r}"))

    def __repr__(self) -> str:
        return f"Miner({self.name!r}, power={self.power})"


def make_miners(powers: Iterable[Number], prefix: str = "p") -> Tuple[Miner, ...]:
    """Create miners ``p1, p2, ...`` from an iterable of powers.

    Names follow the paper's indexing (1-based). Powers are converted to
    exact fractions; the order of *powers* is preserved.
    """
    miners = tuple(
        Miner.of(f"{prefix}{index}", power) for index, power in enumerate(powers, start=1)
    )
    if not miners:
        raise InvalidModelError("a game needs at least one miner")
    return miners


def sorted_by_power(miners: Sequence[Miner]) -> Tuple[Miner, ...]:
    """Return miners sorted by decreasing power (ties broken by name).

    Sections 4 and 5 of the paper index miners so that
    ``m_p1 ≥ m_p2 ≥ … ≥ m_pn``; this helper produces that ordering.
    """
    return tuple(sorted(miners, key=lambda miner: (-miner.power, miner.name)))


def has_strictly_decreasing_powers(miners: Sequence[Miner]) -> bool:
    """Whether powers are strictly decreasing in the given order.

    Section 5's reward design mechanism requires
    ``m_p1 > m_p2 > … > m_pn`` (strict); this predicate checks it.
    """
    return all(
        miners[index].power > miners[index + 1].power for index in range(len(miners) - 1)
    )
