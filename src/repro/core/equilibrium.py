"""Equilibrium toolkit (paper, Appendix A and Section 4 / Appendix D).

* :func:`greedy_equilibrium` — the constructive existence proof of
  Proposition 3: insert miners in decreasing power order, each to the
  coin maximizing its payoff given earlier insertions (Claim 6 shows
  each insertion preserves the stability of everyone placed so far).
* :func:`enumerate_equilibria` — brute-force enumeration of all pure
  equilibria (exponential; small games only).
* :func:`two_distinct_equilibria` — Lemma 2's inductive construction of
  two different stable configurations for games satisfying
  Assumptions 1 and 2.
* :func:`best_insertion_coin` — the ``argmax_c F(c)·m/(M_c(s)+m)``
  selector shared by the constructions.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner, sorted_by_power
from repro.core.restricted import RestrictedGame, as_restricted
from repro.exceptions import InvalidModelError


def best_insertion_coin(
    game: Game,
    partial: Optional[Configuration],
    miner: Miner,
) -> Coin:
    """``argmax_{c'∈C} F(c')·m_p/(M_{c'}(s)+m_p)`` over the partial state.

    *partial* is a configuration over a subset of the game's miners (or
    ``None`` for the empty state). Ties are broken by coin order, which
    makes the greedy construction deterministic.
    """
    best_coin: Optional[Coin] = None
    best_value: Optional[Fraction] = None
    for coin in game.coins:
        occupied = Fraction(0)
        if partial is not None:
            occupied = sum(
                (other.power for other in partial.miners_on(coin)), Fraction(0)
            )
        value = game.rewards[coin] * miner.power / (occupied + miner.power)
        if best_value is None or value > best_value:
            best_value = value
            best_coin = coin
    assert best_coin is not None
    return best_coin


def greedy_equilibrium(game: Game) -> Configuration:
    """A pure equilibrium built by the Appendix A construction.

    Miners are processed in decreasing power order; each picks its best
    coin given the miners already placed. Claim 6 proves every placed
    miner stays stable after each insertion, so the final configuration
    is stable — for *any* ``Π``, ``C`` and ``F``.
    """
    ordered = sorted_by_power(game.miners)
    partial: Optional[Configuration] = None
    placed: List[Miner] = []
    choices: List[Coin] = []
    for miner in ordered:
        coin = best_insertion_coin(game, partial, miner)
        placed.append(miner)
        choices.append(coin)
        partial = Configuration(placed, choices)
    assert partial is not None
    # Re-express over the game's own miner order.
    assignment = {miner: coin for miner, coin in partial}
    return Configuration.from_mapping(game.miners, assignment)


def enumerate_equilibria(
    game: Union[Game, RestrictedGame],
    *,
    limit: Optional[int] = None,
    backend: str = "space",
    symmetry: bool = True,
    allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
) -> List[Configuration]:
    """All pure equilibria of the game, by exhaustive search.

    ``limit`` caps the number of *configurations scanned* (not
    equilibria found) as a safety valve; exceeding it raises
    :class:`InvalidModelError` so callers never silently get a partial
    answer.

    ``backend="space"`` (the default) scans integer configuration codes
    through :class:`repro.kernel.space.ConfigSpace` — a Gray-code walk
    with O(1) mass updates and integer stability checks, plus
    symmetry reduction (one canonical representative per orbit,
    expanded afterwards) when ``symmetry`` is on and the game has
    interchangeable miners. When symmetry reduction applies, the scan
    count the ``limit`` guards is the *orbit* count, so symmetric games
    far beyond ``|C|^n ≤ limit`` stay enumerable. The result — content
    and order — is identical to ``backend="exact"``, the original
    Fraction brute force over Configuration objects.

    *game* may be a :class:`~repro.core.restricted.RestrictedGame` (or
    a plain game plus an ``allowed=`` per-miner coin mask): equilibria
    of the *restricted* game are then enumerated — the space backend
    walks only mask-valid codes with per-miner digit alphabets, the
    exact backend brute-forces
    :meth:`RestrictedGame.all_configurations` — and miners are
    symmetry-interchangeable only when power *and* allowed set match.
    """
    base, restricted = as_restricted(game, allowed)
    # RestrictedGame mirrors the Game scan surface, so one loop serves
    # both backends' brute force.
    source = base if restricted is None else restricted
    if backend == "exact":
        count = source.configuration_count()
        if limit is not None and count > limit:
            raise InvalidModelError(
                f"game has {count} configurations, above the scan limit {limit}; "
                "enumeration is only for small games"
            )
        return [
            config
            for config in source.all_configurations()
            if source.is_stable(config)
        ]
    if backend != "space":
        raise InvalidModelError(
            f"unknown enumeration backend {backend!r}; expected 'space' or 'exact'"
        )
    from repro.kernel.space import ConfigSpace

    space = ConfigSpace(source, symmetry=symmetry)
    scanned = space.orbit_count() if space.symmetry else space.size
    if limit is not None and scanned > limit:
        raise InvalidModelError(
            f"game has {scanned} configurations to scan, above the scan limit "
            f"{limit}; enumeration is only for small games"
        )
    # The limit also caps the orbit-expanded result: a symmetric game
    # can have few orbits but combinatorially many equilibria.
    return space.equilibria(max_codes=limit)


def iter_equilibria(
    game: Union[Game, RestrictedGame],
    *,
    backend: str = "space",
    allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
) -> Iterator[Configuration]:
    """Lazily iterate pure equilibria (exhaustive scan order).

    The default ``backend="space"`` walks integer codes in the same
    product order as the Fraction scan (``backend="exact"``) but with
    incremental integer mass updates, yielding identical configurations
    in identical order with none of the per-node allocation. Restricted
    games (or an ``allowed=`` mask) restrict the walk to mask-valid
    configurations, as in :func:`enumerate_equilibria`.
    """
    base, restricted = as_restricted(game, allowed)
    source = base if restricted is None else restricted
    if backend == "exact":
        for config in source.all_configurations():
            if source.is_stable(config):
                yield config
        return
    if backend != "space":
        raise InvalidModelError(
            f"unknown enumeration backend {backend!r}; expected 'space' or 'exact'"
        )
    from repro.kernel.space import ConfigSpace

    yield from ConfigSpace(source, symmetry=False).iter_equilibria()


def two_distinct_equilibria(game: Game) -> Tuple[Configuration, Configuration]:
    """Two different stable configurations, via Lemma 2's construction.

    Seeds the two largest miners on the two largest-reward coins in the
    two possible swapped orders, then extends both seeds greedily
    (Claim 5 keeps placed miners stable). For games satisfying
    Assumptions 1 and 2 both results are stable; this function verifies
    stability and raises :class:`InvalidModelError` if either fails
    (which can only happen when the assumptions do not hold).
    """
    ordered = sorted_by_power(game.miners)
    if len(ordered) < 2:
        raise InvalidModelError("two equilibria need at least two miners")
    if len(game.coins) < 2:
        raise InvalidModelError("two equilibria need at least two coins")
    coins_by_reward = sorted(
        game.coins, key=lambda coin: (-game.rewards[coin], coin.name)
    )
    c1, c2 = coins_by_reward[0], coins_by_reward[1]
    p1, p2 = ordered[0], ordered[1]

    results: List[Configuration] = []
    for seed_choices in ((c1, c2), (c2, c1)):
        placed = [p1, p2]
        choices = list(seed_choices)
        partial = Configuration(placed, choices)
        for miner in ordered[2:]:
            coin = best_insertion_coin(game, partial, miner)
            placed.append(miner)
            choices.append(coin)
            partial = Configuration(placed, choices)
        assignment = {miner: coin for miner, coin in partial}
        results.append(Configuration.from_mapping(game.miners, assignment))

    first, second = results
    if first == second:
        raise InvalidModelError(
            "Lemma 2 construction collapsed to one configuration; "
            "the game likely violates Assumption 1 or 2"
        )
    for config in results:
        if not game.is_stable(config):
            raise InvalidModelError(
                "Lemma 2 construction produced an unstable configuration; "
                "the game likely violates Assumption 1 or 2"
            )
    return first, second


def equilibrium_payoff_spread(
    game: Game, equilibria: List[Configuration]
) -> Tuple[Fraction, Fraction]:
    """(min, max) of any miner's payoff across the given equilibria.

    A quick summary statistic used by the Section 4 experiments: a
    nonzero spread for some miner is what makes manipulation profitable.
    """
    if not equilibria:
        raise InvalidModelError("need at least one equilibrium")
    lows: List[Fraction] = []
    highs: List[Fraction] = []
    for miner in game.miners:
        payoffs = [game.payoff(miner, config) for config in equilibria]
        lows.append(min(payoffs))
        highs.append(max(payoffs))
    return min(lows), max(highs)
