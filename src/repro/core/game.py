"""The Game of Coins ``G_{Π,C,F}`` (paper, Section 2).

A game couples a system ``⟨Π, C⟩`` with a reward function ``F``. Every
coin divides its reward among the miners that chose it, proportionally
to power:

    ``RPU_c(s) = F(c) / M_c(s)``            (revenue per unit of power)
    ``u_p(s)  = m_p · RPU_{s.p}(s)``        (miner payoff)

A *better-response step* of miner ``p`` from ``s.p`` to ``c`` is a move
with ``u_p(s) < u_p((s_{-p}, c))``; a configuration where no miner has a
better-response step is *stable* (a pure Nash equilibrium).

All payoff arithmetic is exact (:class:`fractions.Fraction`), so
stability checks and the ordinal potential are tie-safe.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.core.coin import Coin, RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.miner import Miner, make_miners, sorted_by_power
from repro._numeric import Number
from repro.exceptions import InvalidConfigurationError, InvalidModelError


class Game:
    """An instance ``G_{Π,C,F}`` of the multi-coin mining game."""

    __slots__ = ("_miners", "_coins", "_rewards", "_miner_set", "_coin_set")

    def __init__(
        self,
        miners: Sequence[Miner],
        coins: Sequence[Coin],
        rewards: RewardFunction,
    ):
        if not miners:
            raise InvalidModelError("a game needs at least one miner")
        if not coins:
            raise InvalidModelError("a game needs at least one coin")
        names = [miner.name for miner in miners]
        if len(set(names)) != len(names):
            raise InvalidModelError("miner names must be unique within a game")
        coin_names = [coin.name for coin in coins]
        if len(set(coin_names)) != len(coin_names):
            raise InvalidModelError("coin names must be unique within a game")
        for coin in coins:
            if coin not in rewards:
                raise InvalidModelError(
                    f"reward function does not cover coin {coin.name!r}"
                )
        self._miners: Tuple[Miner, ...] = tuple(miners)
        self._coins: Tuple[Coin, ...] = tuple(coins)
        self._rewards = rewards
        self._miner_set = frozenset(self._miners)
        self._coin_set = frozenset(self._coins)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        powers: Sequence[Number],
        reward_values: Sequence[Number],
        *,
        miner_prefix: str = "p",
        coin_prefix: str = "c",
    ) -> "Game":
        """Build a game from raw powers and rewards.

        Miners are named ``p1..pn`` and sorted by *decreasing power*
        (the paper's canonical indexing); coins are named ``c1..ck`` in
        the given order.
        """
        miners = sorted_by_power(make_miners(powers, prefix=miner_prefix))
        coins = make_coins(f"{coin_prefix}{i}" for i in range(1, len(reward_values) + 1))
        rewards = RewardFunction.from_values(coins, reward_values)
        return cls(miners, coins, rewards)

    def with_rewards(self, rewards: RewardFunction) -> "Game":
        """The same system ``⟨Π, C⟩`` under a different reward function.

        This is the primitive the reward design mechanism uses: each
        learning phase runs in ``G_{Π,C,H_i(s)}``.
        """
        return Game(self._miners, self._coins, rewards)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def miners(self) -> Tuple[Miner, ...]:
        return self._miners

    @property
    def coins(self) -> Tuple[Coin, ...]:
        return self._coins

    @property
    def rewards(self) -> RewardFunction:
        return self._rewards

    def miner_named(self, name: str) -> Miner:
        for miner in self._miners:
            if miner.name == name:
                return miner
        raise InvalidModelError(f"no miner named {name!r} in this game")

    def coin_named(self, name: str) -> Coin:
        for coin in self._coins:
            if coin.name == name:
                return coin
        raise InvalidModelError(f"no coin named {name!r} in this game")

    def total_power(self) -> Fraction:
        """``Σ_{p∈Π} m_p`` — used by the stage-1 reward design (Eq. 5)."""
        return sum((miner.power for miner in self._miners), Fraction(0))

    def min_power(self) -> Fraction:
        return min(miner.power for miner in self._miners)

    # ------------------------------------------------------------------
    # Configuration-level quantities
    # ------------------------------------------------------------------

    def validate_configuration(self, config: Configuration) -> None:
        """Raise unless *config* covers exactly this game's miners/coins."""
        if frozenset(config.miners) != self._miner_set:
            raise InvalidConfigurationError("configuration's miners do not match the game")
        for _, coin in config:
            if coin not in self._coin_set:
                raise InvalidConfigurationError(
                    f"configuration assigns unknown coin {coin.name!r}"
                )

    def configuration(self, coin_names: Sequence[str]) -> Configuration:
        """Build a configuration from coin names, one per miner in order."""
        coins = [self.coin_named(name) for name in coin_names]
        return Configuration(self._miners, coins)

    def coin_power(self, coin: Coin, config: Configuration) -> Fraction:
        """``M_c(s)``: total mining power invested in *coin*."""
        return sum((miner.power for miner in config.miners_on(coin)), Fraction(0))

    def rpu(self, coin: Coin, config: Configuration) -> Optional[Fraction]:
        """``RPU_c(s) = F(c)/M_c(s)``, or ``None`` for an unoccupied coin.

        The paper's definition divides by ``M_c(s)``; for empty coins
        that ratio is not a number, and no code path should depend on
        it — callers must handle ``None`` explicitly.
        """
        power = self.coin_power(coin, config)
        if power == 0:
            return None
        return self._rewards[coin] / power

    def max_rpu(self, config: Configuration) -> Fraction:
        """``R(s) = max{RPU_c(s)}`` over *occupied* coins (Section 5)."""
        values = [self.rpu(coin, config) for coin in self._coins]
        occupied = [value for value in values if value is not None]
        if not occupied:
            raise InvalidConfigurationError("configuration occupies no coin")
        return max(occupied)

    def payoff(self, miner: Miner, config: Configuration) -> Fraction:
        """``u_p(s) = m_p · F(s.p) / M_{s.p}(s)``."""
        coin = config.coin_of(miner)
        return miner.power * self._rewards[coin] / self.coin_power(coin, config)

    def payoff_after_move(self, miner: Miner, coin: Coin, config: Configuration) -> Fraction:
        """Miner's payoff in ``(s_{-p}, c)`` without materializing it.

        If the miner already mines *coin* this equals :meth:`payoff`.
        """
        current = config.coin_of(miner)
        if current == coin:
            return self.payoff(miner, config)
        power_on_target = self.coin_power(coin, config) + miner.power
        return miner.power * self._rewards[coin] / power_on_target

    def payoff_vector(self, config: Configuration) -> Dict[Miner, Fraction]:
        """All miners' payoffs keyed by miner.

        One power pass and one RPU division per *coin*, then one
        multiplication per miner — O(n + k) Fraction ops instead of the
        O(n²) of calling :meth:`payoff` per miner (each of which
        re-derives its coin's power).
        """
        powers = self.coin_power_map(config)
        rpu = {
            coin: self._rewards[coin] / mass
            for coin, mass in powers.items()
            if mass != 0
        }
        return {
            miner: miner.power * rpu[config.coin_of(miner)] for miner in self._miners
        }

    def social_welfare(self, config: Configuration) -> Fraction:
        """``Σ_p u_p(s)`` — equals ``Σ_c F(c)`` over occupied coins."""
        return sum(self.payoff_vector(config).values(), Fraction(0))

    # ------------------------------------------------------------------
    # Better-response structure
    # ------------------------------------------------------------------

    def is_better_response(self, miner: Miner, coin: Coin, config: Configuration) -> bool:
        """Whether moving *miner* to *coin* strictly improves its payoff."""
        if config.coin_of(miner) == coin:
            return False
        return self.payoff_after_move(miner, coin, config) > self.payoff(miner, config)

    def better_response_moves(self, miner: Miner, config: Configuration) -> Tuple[Coin, ...]:
        """All coins to which *miner* has a better-response step in *config*."""
        current_payoff = self.payoff(miner, config)
        current_coin = config.coin_of(miner)
        return tuple(
            coin
            for coin in self._coins
            if coin != current_coin
            and self.payoff_after_move(miner, coin, config) > current_payoff
        )

    def best_response(self, miner: Miner, config: Configuration) -> Optional[Coin]:
        """The payoff-maximizing improving move, or ``None`` if stable.

        Ties between equally good targets are broken by coin order in
        the game (deterministic). Best responses are a *subset* of
        better responses, so any result proved for arbitrary
        better-response learning applies to best-response learning too.
        """
        current_payoff = self.payoff(miner, config)
        current_coin = config.coin_of(miner)
        best_coin: Optional[Coin] = None
        best_payoff = current_payoff
        for coin in self._coins:
            if coin == current_coin:
                continue
            payoff = self.payoff_after_move(miner, coin, config)
            if payoff > best_payoff:
                best_payoff = payoff
                best_coin = coin
        return best_coin

    def is_miner_stable(self, miner: Miner, config: Configuration) -> bool:
        """Whether *miner* has no better-response step in *config*."""
        return not self.better_response_moves(miner, config)

    def is_stable(self, config: Configuration) -> bool:
        """Whether *config* is a pure Nash equilibrium."""
        return all(self.is_miner_stable(miner, config) for miner in self._miners)

    def unstable_miners(self, config: Configuration) -> Tuple[Miner, ...]:
        """Miners that currently have at least one better-response step."""
        return tuple(
            miner for miner in self._miners if not self.is_miner_stable(miner, config)
        )

    # ------------------------------------------------------------------
    # Cached-power fast path (used by the learning engine)
    # ------------------------------------------------------------------

    def coin_power_map(self, config: Configuration) -> Dict[Coin, Fraction]:
        """``{c: M_c(s)}`` for all coins, computed in one pass.

        The learning engine maintains this map incrementally across
        steps; with it, stability checks cost O(k) per miner instead of
        O(k·n) (see the ``*_given`` methods).
        """
        powers: Dict[Coin, Fraction] = {coin: Fraction(0) for coin in self._coins}
        for miner, coin in config:
            powers[coin] += miner.power
        return powers

    def is_miner_stable_given(
        self,
        miner: Miner,
        config: Configuration,
        powers: Dict[Coin, Fraction],
    ) -> bool:
        """:meth:`is_miner_stable` against a precomputed power map.

        Comparisons are cross-multiplied, avoiding Fraction division:
        ``F(c')/(M'+m) > F(c)/M_c  ⟺  F(c')·M_c > F(c)·(M'+m)``.
        """
        current = config.coin_of(miner)
        current_reward = self._rewards[current]
        current_mass = powers[current]
        for coin in self._coins:
            if coin == current:
                continue
            if self._rewards[coin] * current_mass > current_reward * (
                powers[coin] + miner.power
            ):
                return False
        return True

    def better_response_moves_given(
        self,
        miner: Miner,
        config: Configuration,
        powers: Dict[Coin, Fraction],
    ) -> Tuple[Coin, ...]:
        """:meth:`better_response_moves` against a precomputed power map."""
        current = config.coin_of(miner)
        current_reward = self._rewards[current]
        current_mass = powers[current]
        return tuple(
            coin
            for coin in self._coins
            if coin != current
            and self._rewards[coin] * current_mass
            > current_reward * (powers[coin] + miner.power)
        )

    def unstable_miners_given(
        self,
        config: Configuration,
        powers: Dict[Coin, Fraction],
    ) -> Tuple[Miner, ...]:
        """:meth:`unstable_miners` against a precomputed power map."""
        return tuple(
            miner
            for miner in self._miners
            if not self.is_miner_stable_given(miner, config, powers)
        )

    # ------------------------------------------------------------------
    # Enumeration (exponential; small games only)
    # ------------------------------------------------------------------

    def all_configurations(self) -> Iterator[Configuration]:
        """Iterate over all ``|C|^n`` configurations (small games only)."""
        for choices in itertools.product(self._coins, repeat=len(self._miners)):
            yield Configuration(self._miners, choices)

    def configuration_count(self) -> int:
        return len(self._coins) ** len(self._miners)

    def __repr__(self) -> str:
        return (
            f"Game(n={len(self._miners)} miners, |C|={len(self._coins)} coins, "
            f"total_reward={self._rewards.total()})"
        )
