"""Core game model: the paper's primary objects (Sections 2–4, App. A–B)."""

from repro.core.coin import Coin, RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import (
    Miner,
    has_strictly_decreasing_powers,
    make_miners,
    sorted_by_power,
)
from repro.core.assumptions import (
    check_generic,
    check_never_alone,
    configuration_violates_never_alone,
    find_genericity_violation,
    require_section4_assumptions,
)
from repro.core.equilibrium import (
    best_insertion_coin,
    enumerate_equilibria,
    greedy_equilibrium,
    iter_equilibria,
    two_distinct_equilibria,
)
from repro.core.factories import random_configuration, random_game
from repro.core.restricted import (
    RestrictedGame,
    greedy_restricted_equilibrium,
    restricted_potential_compare,
)
from repro.core.potential import (
    compare_potential,
    exact_potential_cycle_defect,
    find_nonzero_four_cycle,
    is_strictly_increasing_along,
    potential_rank,
    proposition1_counterexample,
    rpu_list,
    symmetric_potential,
)

__all__ = [
    "Coin",
    "RewardFunction",
    "make_coins",
    "Configuration",
    "Game",
    "Miner",
    "make_miners",
    "sorted_by_power",
    "has_strictly_decreasing_powers",
    "check_generic",
    "check_never_alone",
    "configuration_violates_never_alone",
    "find_genericity_violation",
    "require_section4_assumptions",
    "best_insertion_coin",
    "enumerate_equilibria",
    "greedy_equilibrium",
    "iter_equilibria",
    "two_distinct_equilibria",
    "random_configuration",
    "random_game",
    "RestrictedGame",
    "greedy_restricted_equilibrium",
    "restricted_potential_compare",
    "compare_potential",
    "exact_potential_cycle_defect",
    "find_nonzero_four_cycle",
    "is_strictly_increasing_along",
    "potential_rank",
    "proposition1_counterexample",
    "rpu_list",
    "symmetric_potential",
]
