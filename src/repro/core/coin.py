"""Coins (resources) and reward functions ``F : C → R+``.

A coin is just an identity; its economic weight lives in a
:class:`RewardFunction`, matching the paper's separation between the
system ``⟨Π, C⟩`` and the game ``G_{Π,C,F}``. Reward functions are
immutable; the reward design mechanism builds *new* reward functions
rather than mutating the base one, which mirrors Algorithm 1's
"temporarily increase coin weights, then revert".
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from repro._numeric import Number, to_fraction, to_positive_fraction
from repro.exceptions import InvalidModelError


@dataclass(frozen=True)
class Coin:
    """A coin (resource) identified by name."""

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise InvalidModelError(f"coin name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return f"Coin({self.name!r})"


def make_coins(names: Iterable[str]) -> Tuple[Coin, ...]:
    """Create coins from names, rejecting duplicates."""
    coins = tuple(Coin(name) for name in names)
    if not coins:
        raise InvalidModelError("a game needs at least one coin")
    seen = set()
    for coin in coins:
        if coin.name in seen:
            raise InvalidModelError(f"duplicate coin name {coin.name!r}")
        seen.add(coin.name)
    return coins


class RewardFunction:
    """An immutable mapping from coins to strictly positive rewards.

    Supports lookup by :class:`Coin` or by coin name. Derived reward
    functions (used by the reward design mechanism) are produced with
    :meth:`replacing` and :meth:`boosted`.
    """

    __slots__ = ("_rewards",)

    def __init__(self, rewards: Mapping[Coin, Number], *, allow_zero: bool = False):
        converted: Dict[Coin, Fraction] = {}
        for coin, reward in rewards.items():
            if not isinstance(coin, Coin):
                raise InvalidModelError(f"reward keys must be Coin, got {type(coin).__name__}")
            if allow_zero:
                value = to_fraction(reward, name=f"reward of {coin.name!r}")
                if value < 0:
                    raise InvalidModelError(
                        f"reward of {coin.name!r} must be non-negative, got {reward!r}"
                    )
                converted[coin] = value
            else:
                converted[coin] = to_positive_fraction(reward, name=f"reward of {coin.name!r}")
        if not converted:
            raise InvalidModelError("a reward function must cover at least one coin")
        self._rewards = converted

    @classmethod
    def allowing_zero(cls, rewards: Mapping[Coin, Number]) -> "RewardFunction":
        """Build a reward function that may assign zero to some coins.

        The paper's designed rewards (Eq. 4) zero out unoccupied coins;
        organic reward functions ``F : C → R+`` stay strictly positive,
        so the permissive constructor is opt-in.
        """
        return cls(rewards, allow_zero=True)

    @classmethod
    def from_values(cls, coins: Sequence[Coin], values: Sequence[Number]) -> "RewardFunction":
        """Zip parallel sequences of coins and reward values."""
        if len(coins) != len(values):
            raise InvalidModelError(
                f"{len(coins)} coins but {len(values)} reward values"
            )
        return cls(dict(zip(coins, values)))

    @classmethod
    def constant(cls, coins: Sequence[Coin], value: Number = 1) -> "RewardFunction":
        """The symmetric case of Appendix B: every coin has equal reward."""
        return cls({coin: value for coin in coins})

    def __getitem__(self, coin: Coin) -> Fraction:
        try:
            return self._rewards[coin]
        except KeyError:
            raise InvalidModelError(f"coin {coin.name!r} is not covered by this reward function")

    def get_by_name(self, name: str) -> Fraction:
        """Look a reward up by coin name (for reporting code)."""
        for coin, reward in self._rewards.items():
            if coin.name == name:
                return reward
        raise InvalidModelError(f"no coin named {name!r} in this reward function")

    def __contains__(self, coin: Coin) -> bool:
        return coin in self._rewards

    def __iter__(self) -> Iterator[Coin]:
        return iter(self._rewards)

    def __len__(self) -> int:
        return len(self._rewards)

    def items(self) -> Iterable[Tuple[Coin, Fraction]]:
        return self._rewards.items()

    def coins(self) -> Tuple[Coin, ...]:
        return tuple(self._rewards)

    def total(self) -> Fraction:
        """Sum of all coin rewards — the welfare bound of Observation 3."""
        return sum(self._rewards.values(), Fraction(0))

    def max_reward(self) -> Fraction:
        """``max{F(c) | c ∈ C}`` (used by the stage-1 design, Eq. 5)."""
        return max(self._rewards.values())

    def replacing(self, overrides: Mapping[Coin, Number]) -> "RewardFunction":
        """A new reward function with some coins' rewards replaced."""
        merged: Dict[Coin, Number] = dict(self._rewards)
        for coin, value in overrides.items():
            if coin not in self._rewards:
                raise InvalidModelError(
                    f"cannot override reward of unknown coin {coin.name!r}"
                )
            merged[coin] = value
        return RewardFunction(merged)

    def boosted(self, coin: Coin, extra: Number) -> "RewardFunction":
        """A new reward function with ``extra`` added to one coin's reward.

        This is the "whale transaction" primitive: the manipulator can
        only *add* weight, never remove it.
        """
        extra_frac = to_positive_fraction(extra, name="extra reward")
        return self.replacing({coin: self[coin] + extra_frac})

    def dominates(self, other: "RewardFunction") -> bool:
        """Whether ``self(c) ≥ other(c)`` for every coin.

        Algorithm 1 (line 3) requires each designed reward function to
        dominate the base one; :class:`repro.design` checks this with
        :meth:`dominates` in its feasible mode.
        """
        if set(self._rewards) != set(other._rewards):
            return False
        return all(self._rewards[coin] >= other._rewards[coin] for coin in self._rewards)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RewardFunction):
            return NotImplemented
        return self._rewards == other._rewards

    def __hash__(self) -> int:
        return hash(frozenset(self._rewards.items()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{coin.name}={reward}" for coin, reward in self._rewards.items())
        return f"RewardFunction({parts})"
