"""Configurations: one coin choice per miner.

A configuration ``s ∈ S = C^n`` assigns every miner a coin (paper,
Section 2). Configurations are immutable value objects; a better-response
step produces a *new* configuration via :meth:`Configuration.move`,
matching the paper's ``(s_{-p}, c)`` notation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.core.coin import Coin
from repro.core.miner import Miner
from repro.exceptions import InvalidConfigurationError


class Configuration:
    """An immutable assignment of miners to coins.

    Internally a tuple of coins aligned with a fixed miner ordering; the
    public API is name/object based. Equality and hashing make
    configurations usable as dict keys (the potential-rank code and the
    equilibrium enumerator rely on this).
    """

    __slots__ = ("_miners", "_choices", "_index")

    def __init__(self, miners: Sequence[Miner], choices: Sequence[Coin]):
        if len(miners) != len(choices):
            raise InvalidConfigurationError(
                f"{len(miners)} miners but {len(choices)} coin choices"
            )
        if not miners:
            raise InvalidConfigurationError("a configuration needs at least one miner")
        self._miners: Tuple[Miner, ...] = tuple(miners)
        self._choices: Tuple[Coin, ...] = tuple(choices)
        self._index: Dict[Miner, int] = {miner: i for i, miner in enumerate(self._miners)}
        if len(self._index) != len(self._miners):
            raise InvalidConfigurationError("duplicate miners in configuration")

    @classmethod
    def from_mapping(
        cls, miners: Sequence[Miner], assignment: Mapping[Miner, Coin]
    ) -> "Configuration":
        """Build a configuration from a ``{miner: coin}`` mapping."""
        try:
            choices = [assignment[miner] for miner in miners]
        except KeyError as missing:
            raise InvalidConfigurationError(f"assignment misses miner {missing.args[0]!r}")
        return cls(miners, choices)

    @classmethod
    def uniform(cls, miners: Sequence[Miner], coin: Coin) -> "Configuration":
        """All miners on a single coin (the end state of design stage 1)."""
        return cls(miners, [coin] * len(miners))

    @property
    def miners(self) -> Tuple[Miner, ...]:
        return self._miners

    @property
    def choices(self) -> Tuple[Coin, ...]:
        return self._choices

    def coin_of(self, miner: Miner) -> Coin:
        """The coin miner ``p`` mines in this configuration (``s.p``)."""
        try:
            return self._choices[self._index[miner]]
        except KeyError:
            raise InvalidConfigurationError(f"miner {miner.name!r} is not in this configuration")

    def move(self, miner: Miner, coin: Coin) -> "Configuration":
        """The configuration ``(s_{-p}, c)``: identical except miner → coin."""
        try:
            position = self._index[miner]
        except KeyError:
            raise InvalidConfigurationError(f"miner {miner.name!r} is not in this configuration")
        if self._choices[position] == coin:
            return self
        choices = list(self._choices)
        choices[position] = coin
        return Configuration(self._miners, choices)

    def miners_on(self, coin: Coin) -> Tuple[Miner, ...]:
        """``P_c(s)``: the miners who mine coin *c* in this configuration."""
        return tuple(
            miner for miner, choice in zip(self._miners, self._choices) if choice == coin
        )

    def occupied_coins(self) -> Tuple[Coin, ...]:
        """The coins chosen by at least one miner, in first-seen order."""
        seen = []
        for choice in self._choices:
            if choice not in seen:
                seen.append(choice)
        return tuple(seen)

    def as_dict(self) -> Dict[str, str]:
        """A ``{miner name: coin name}`` snapshot for logging/reports."""
        return {miner.name: coin.name for miner, coin in zip(self._miners, self._choices)}

    def items(self) -> Iterable[Tuple[Miner, Coin]]:
        return zip(self._miners, self._choices)

    def __iter__(self) -> Iterator[Tuple[Miner, Coin]]:
        return iter(zip(self._miners, self._choices))

    def __len__(self) -> int:
        return len(self._miners)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._miners == other._miners and self._choices == other._choices

    def __hash__(self) -> int:
        return hash((self._miners, self._choices))

    def __repr__(self) -> str:
        body = ", ".join(f"{miner.name}→{coin.name}" for miner, coin in self)
        return f"Configuration({body})"
