"""Simultaneous-move better-response dynamics — and why the paper's
sequential model matters.

Theorem 1 covers *sequential* improvement steps: one miner moves at a
time. Real markets are messier — many miners re-evaluate on the same
profitability tick and jump together, each correct in isolation and
wrong in aggregate. That is exactly the over-correction that made the
2017 BTC/BCH hashrate oscillation violent (see
:mod:`repro.chainsim.miningsim`).

This module implements the synchronous dynamic: every round, *all*
miners with a better response move at once (each to its best response
computed against the current configuration). Unlike the sequential
dynamic, this one can cycle forever; E12 measures how often, and how
well small amounts of inertia (each miner independently moves only with
probability ``p``) restore convergence — the standard remedy in the
learning-in-games literature.

The round loop is written once against the
:class:`~repro.learning.view.GameView` protocol; ``backend`` picks the
view (``"fast"`` integer kernel / ``"exact"`` Fractions), with
identical rounds, movers, inertia draws and verdicts either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.learning.view import make_view
from repro.util.rng import RngLike, make_rng


@dataclass
class SimultaneousResult:
    """Outcome of a synchronous better-response run."""

    configurations: List[Configuration]
    converged: bool
    #: Index at which a configuration first repeated (a cycle witness),
    #: or None if the run converged or hit the round budget first.
    cycle_start: Optional[int]

    @property
    def rounds(self) -> int:
        return len(self.configurations) - 1

    @property
    def final(self) -> Configuration:
        return self.configurations[-1]

    @property
    def cycled(self) -> bool:
        return self.cycle_start is not None


def run_simultaneous(
    game: Game,
    initial: Configuration,
    *,
    inertia: float = 0.0,
    max_rounds: int = 10_000,
    seed: RngLike = None,
    backend: str = "fast",
) -> SimultaneousResult:
    """Synchronous best-response dynamic with optional inertia.

    Each round, every miner with an improving move switches to its best
    response — simultaneously — unless inertia keeps it put (each
    unstable miner *stays* with probability ``inertia``, independently).
    Detection: convergence = a round with no movers; cycling = a
    configuration seen before (the dynamic is Markov for ``inertia=0``,
    so a repeat proves a permanent cycle).
    """
    if not 0.0 <= inertia < 1.0:
        raise ValueError(f"inertia must be in [0, 1), got {inertia}")
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be ≥ 1, got {max_rounds}")
    game.validate_configuration(initial)
    rng = make_rng(seed)
    view = make_view(game, initial, backend=backend)

    seen: Dict[Configuration, int] = {initial: 0}
    configurations = [initial]
    for round_index in range(1, max_rounds + 1):
        movers: List[Tuple[Miner, Coin]] = []
        for miner in view.miners:
            target = view.best_response(miner)
            if target is None:
                continue
            if inertia > 0.0 and rng.random() < inertia:
                continue
            movers.append((miner, target))
        if not movers:
            return SimultaneousResult(
                configurations=configurations, converged=True, cycle_start=None
            )
        # Targets were all evaluated against the pre-round state, so
        # applying them one by one realizes the simultaneous jump.
        for miner, target in movers:
            view.apply(miner, target)
        config = view.configuration()
        configurations.append(config)
        if inertia == 0.0:
            previous = seen.get(config)
            if previous is not None:
                return SimultaneousResult(
                    configurations=configurations,
                    converged=False,
                    cycle_start=previous,
                )
            seen[config] = round_index
    return SimultaneousResult(
        configurations=configurations, converged=view.is_stable(), cycle_start=None
    )


def cycling_fraction(
    game: Game,
    *,
    starts: int = 20,
    inertia: float = 0.0,
    max_rounds: int = 500,
    seed: RngLike = None,
    backend: str = "fast",
) -> float:
    """Fraction of random starts from which the synchronous dynamic cycles."""
    from repro.core.factories import random_configuration

    rng = make_rng(seed)
    cycles = 0
    for _ in range(starts):
        start = random_configuration(game, seed=rng)
        result = run_simultaneous(
            game, start, inertia=inertia, max_rounds=max_rounds, seed=rng, backend=backend
        )
        cycles += int(result.cycled or not result.converged)
    return cycles / starts
