"""Simultaneous-move better-response dynamics — and why the paper's
sequential model matters.

Theorem 1 covers *sequential* improvement steps: one miner moves at a
time. Real markets are messier — many miners re-evaluate on the same
profitability tick and jump together, each correct in isolation and
wrong in aggregate. That is exactly the over-correction that made the
2017 BTC/BCH hashrate oscillation violent (see
:mod:`repro.chainsim.miningsim`).

This module implements the synchronous dynamic: every round, *all*
miners with a better response move at once (each to its best response
computed against the current configuration). Unlike the sequential
dynamic, this one can cycle forever; E12 measures how often, and how
well small amounts of inertia (each miner independently moves only with
probability ``p``) restore convergence — the standard remedy in the
learning-in-games literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.kernel.core import KernelGame
from repro.util.rng import RngLike, make_rng


@dataclass
class SimultaneousResult:
    """Outcome of a synchronous better-response run."""

    configurations: List[Configuration]
    converged: bool
    #: Index at which a configuration first repeated (a cycle witness),
    #: or None if the run converged or hit the round budget first.
    cycle_start: Optional[int]

    @property
    def rounds(self) -> int:
        return len(self.configurations) - 1

    @property
    def final(self) -> Configuration:
        return self.configurations[-1]

    @property
    def cycled(self) -> bool:
        return self.cycle_start is not None


def run_simultaneous(
    game: Game,
    initial: Configuration,
    *,
    inertia: float = 0.0,
    max_rounds: int = 10_000,
    seed: RngLike = None,
    backend: str = "fast",
) -> SimultaneousResult:
    """Synchronous best-response dynamic with optional inertia.

    Each round, every miner with an improving move switches to its best
    response — simultaneously — unless inertia keeps it put (each
    unstable miner *stays* with probability ``inertia``, independently).
    Detection: convergence = a round with no movers; cycling = a
    configuration seen before (the dynamic is Markov for ``inertia=0``,
    so a repeat proves a permanent cycle).

    ``backend="fast"`` (default) computes each round's best responses
    with the :mod:`repro.kernel` integer arithmetic; ``"exact"`` keeps
    the Fraction scan. Identical rounds, movers and verdicts either way.
    """
    if not 0.0 <= inertia < 1.0:
        raise ValueError(f"inertia must be in [0, 1), got {inertia}")
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be ≥ 1, got {max_rounds}")
    if backend not in ("fast", "exact"):
        raise ValueError(f"backend must be 'fast' or 'exact', got {backend!r}")
    game.validate_configuration(initial)
    rng = make_rng(seed)
    if backend == "fast":
        return _run_simultaneous_fast(
            game, initial, inertia=inertia, max_rounds=max_rounds, rng=rng
        )

    seen: Dict[Configuration, int] = {initial: 0}
    configurations = [initial]
    config = initial
    for round_index in range(1, max_rounds + 1):
        movers: List[Tuple] = []
        for miner in game.miners:
            target = game.best_response(miner, config)
            if target is None:
                continue
            if inertia > 0.0 and rng.random() < inertia:
                continue
            movers.append((miner, target))
        if not movers:
            return SimultaneousResult(
                configurations=configurations, converged=True, cycle_start=None
            )
        assignment = {miner: coin for miner, coin in config}
        for miner, target in movers:
            assignment[miner] = target
        config = Configuration.from_mapping(game.miners, assignment)
        configurations.append(config)
        if inertia == 0.0:
            previous = seen.get(config)
            if previous is not None:
                return SimultaneousResult(
                    configurations=configurations,
                    converged=False,
                    cycle_start=previous,
                )
            seen[config] = round_index
    return SimultaneousResult(
        configurations=configurations, converged=game.is_stable(config), cycle_start=None
    )


def _run_simultaneous_fast(
    game: Game,
    initial: Configuration,
    *,
    inertia: float,
    max_rounds: int,
    rng: np.random.Generator,
) -> SimultaneousResult:
    """Integer-kernel twin of the synchronous dynamic's exact loop."""
    kernel = KernelGame(game)
    miners = game.miners
    coins = game.coins
    powers = kernel.powers
    assign = kernel.assignment_of(initial)
    mass = kernel.mass_of(assign)

    seen: Dict[Configuration, int] = {initial: 0}
    configurations = [initial]
    for round_index in range(1, max_rounds + 1):
        movers: List[Tuple[int, int]] = []
        for i in range(kernel.n_miners):
            target = kernel.best_response_idx(i, assign, mass)
            if target is None:
                continue
            if inertia > 0.0 and rng.random() < inertia:
                continue
            movers.append((i, target))
        if not movers:
            return SimultaneousResult(
                configurations=configurations, converged=True, cycle_start=None
            )
        for i, target in movers:
            mass[assign[i]] -= powers[i]
            mass[target] += powers[i]
            assign[i] = target
        config = Configuration(miners, [coins[j] for j in assign])
        configurations.append(config)
        if inertia == 0.0:
            previous = seen.get(config)
            if previous is not None:
                return SimultaneousResult(
                    configurations=configurations,
                    converged=False,
                    cycle_start=previous,
                )
            seen[config] = round_index
    converged = not kernel.unstable(assign, mass)
    return SimultaneousResult(
        configurations=configurations, converged=converged, cycle_start=None
    )


def cycling_fraction(
    game: Game,
    *,
    starts: int = 20,
    inertia: float = 0.0,
    max_rounds: int = 500,
    seed: RngLike = None,
    backend: str = "fast",
) -> float:
    """Fraction of random starts from which the synchronous dynamic cycles."""
    from repro.core.factories import random_configuration

    rng = make_rng(seed)
    cycles = 0
    for _ in range(starts):
        start = random_configuration(game, seed=rng)
        result = run_simultaneous(
            game, start, inertia=inertia, max_rounds=max_rounds, seed=rng, backend=backend
        )
        cycles += int(result.cycled or not result.converged)
    return cycles / starts
