"""The better-response learning engine — one loop for every backend.

Runs one improving path: repeatedly ask the scheduler *who* moves and
the policy *where*, apply the step, and stop at a stable configuration.
Theorem 1 guarantees termination for any scheduler × policy pair; the
engine enforces a step budget anyway so a buggy custom policy (one that
returns non-improving moves) cannot loop forever — and it *verifies*
the improvement contract on every step.

There is exactly one trajectory loop, :func:`run_better_response`,
written against the :class:`~repro.learning.view.GameView` protocol.
The ``backend`` knob selects which view drives it:

``"fast"`` (default)
    :class:`~repro.kernel.engine.KernelView` — powers and rewards
    normalized to common integer denominators once, every payoff
    comparison an integer cross-multiplication, per-coin masses
    maintained incrementally in O(1) per step. Decision-for-decision
    (and RNG-draw-for-draw) identical to ``"exact"`` for every
    strategy, custom subclasses included.
``"exact"``
    :class:`~repro.learning.view.ExactView` — the original
    :class:`fractions.Fraction` arithmetic. Kept for audits.

The restricted engine, the simultaneous dynamic and the noisy sampled
learner all run over the same views, so the restriction mask, the
integer fast path and incremental state maintenance exist in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional

import numpy as np

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.exceptions import ConvergenceError
from repro.obs.recorder import get_recorder
from repro.learning.policies import BetterResponsePolicy, RandomImprovingPolicy
from repro.learning.schedulers import ActivationScheduler, UniformRandomScheduler
from repro.learning.trajectory import Step, Trajectory
from repro.learning.view import GameView, make_view
from repro.util.rng import RngLike, make_rng

#: Default per-run step budget. Theorem 1 guarantees finite convergence,
#: but the bound is the potential's range; this default is generous for
#: the game sizes the experiments use.
DEFAULT_MAX_STEPS = 1_000_000

#: Recording modes for :func:`run_better_response`. ``"configs"`` keeps
#: every step and every intermediate configuration; ``"steps"`` keeps the
#: steps but only [initial, final] configurations; ``"summary"`` streams —
#: counts plus final state only, no per-:class:`Step` Fraction pairs, so
#: batch executors stop paying allocation for history nobody reads.
RECORD_MODES = ("configs", "steps", "summary")


def run_better_response(
    view: GameView,
    policy: BetterResponsePolicy,
    scheduler: ActivationScheduler,
    rng: np.random.Generator,
    *,
    max_steps: int,
    record_configurations: bool = True,
    raise_on_budget: bool = True,
    what: str = "better-response learning",
    record: Optional[str] = None,
) -> Trajectory:
    """The shared trajectory stepper: one improving path over *view*.

    Strategy-agnostic and backend-agnostic — the view answers every
    evaluation query, the policy/scheduler (resolved once to their
    most-derived overrides) make every decision, and the loop verifies
    the better-response contract on each step. All sequential dynamics
    (:class:`LearningEngine`,
    :class:`~repro.learning.restricted_engine.RestrictedLearningEngine`)
    are thin wrappers over this function.

    ``record`` selects one of :data:`RECORD_MODES` and supersedes the
    older ``record_configurations`` flag (kept as an alias: ``True`` ⇒
    ``"configs"``, ``False`` ⇒ ``"steps"``). ``"summary"`` skips the
    per-step payoff verification (which exists to catch buggy *custom*
    policies) along with the :class:`Step` records; it consumes exactly
    the same RNG draws as the full modes.
    """
    if record is None:
        record = "configs" if record_configurations else "steps"
    elif record not in RECORD_MODES:
        raise ValueError(f"record must be one of {RECORD_MODES}, got {record!r}")
    recorder = get_recorder()
    run_started = perf_counter() if recorder.enabled else 0.0
    choose = policy.view_chooser()
    pick = scheduler.view_picker()
    scheduler.reset()

    summary_only = record == "summary"
    trajectory = Trajectory(configurations=[view.configuration()])
    if summary_only:
        trajectory.step_count = 0
    for index in range(max_steps):
        unstable = view.unstable_miners()
        if not unstable:
            trajectory.converged = True
            break
        miner = pick(view, unstable, rng)
        target = choose(view, miner, rng)
        if target is None:
            raise ConvergenceError(
                f"scheduler activated miner {miner.name!r} but the policy "
                "found no improving move; scheduler/policy disagree on stability"
            )
        if summary_only:
            view.apply(miner, target)
            trajectory.step_count += 1
            continue
        before = view.payoff(miner)
        after = view.payoff_after_move(miner, target)
        if after <= before:
            raise ConvergenceError(
                f"policy {policy.name!r} returned a non-improving move for "
                f"{miner.name!r} ({before} → {after}); better-response contract violated"
            )
        source = view.coin_of(miner)
        view.apply(miner, target)
        trajectory.steps.append(
            Step(
                index=index,
                miner=miner,
                source=source,
                target=target,
                payoff_before=before,
                payoff_after=after,
            )
        )
        if record == "configs":
            trajectory.configurations.append(view.configuration())
    else:
        # Budget exhausted: the final state may still happen to be stable.
        if view.is_stable():
            trajectory.converged = True
        elif raise_on_budget:
            raise ConvergenceError(
                f"{what} did not converge within {max_steps} steps"
            )
    if record != "configs" and trajectory.length:
        trajectory.configurations.append(view.configuration())
    if recorder.enabled:
        # Totals only, emitted once per run: the per-step path stays
        # untouched, so the NullRecorder default is truly zero-overhead
        # and the RNG draw sequence is identical either way. Every loop
        # iteration scanned for unstable miners, and the budget-exhausted
        # epilogue re-checked stability once, so scans = steps + 1.
        steps = trajectory.length
        recorder.add_time("engine.run", perf_counter() - run_started)
        recorder.count("engine.runs")
        recorder.count("engine.steps", steps)
        recorder.count("engine.scans", steps + 1)
        if trajectory.converged:
            recorder.count("engine.converged")
    return trajectory


@dataclass
class LearningEngine:
    """A reusable better-response learning runner.

    Parameters
    ----------
    policy:
        Where an activated miner moves (default: uniformly random
        improving move — the canonical "arbitrary" learner).
    scheduler:
        Who moves next (default: uniformly random unstable miner).
    max_steps:
        Step budget; exceeded ⇒ :class:`ConvergenceError` when
        ``raise_on_budget`` else an unconverged trajectory.
    record_configurations:
        Keep every intermediate configuration (needed by potential
        audits; costs memory on long runs).
    record:
        One of :data:`RECORD_MODES`; supersedes ``record_configurations``
        when set. ``"summary"`` streams: step counts and final state
        only, no per-step :class:`~repro.learning.trajectory.Step`
        records.
    backend:
        ``"fast"`` (integer kernel view, default), ``"exact"``
        (Fraction view) or ``"class"`` (population-compressed view
        with per-(power, alphabet)-class scan memoization). All three
        produce identical trajectories for every policy/scheduler —
        including custom subclasses; see the module docstring.
    """

    policy: Optional[BetterResponsePolicy] = None
    scheduler: Optional[ActivationScheduler] = None
    max_steps: int = DEFAULT_MAX_STEPS
    record_configurations: bool = True
    raise_on_budget: bool = True
    backend: str = "fast"
    record: Optional[str] = None

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = RandomImprovingPolicy()
        if self.scheduler is None:
            self.scheduler = UniformRandomScheduler()
        if self.max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {self.max_steps}")
        if self.backend not in ("fast", "exact", "class"):
            raise ValueError(
                f"backend must be 'fast', 'exact' or 'class', got {self.backend!r}"
            )
        if self.record is not None and self.record not in RECORD_MODES:
            raise ValueError(f"record must be one of {RECORD_MODES}, got {self.record!r}")

    def run(
        self,
        game: Game,
        initial: Configuration,
        *,
        seed: RngLike = None,
        allowed=None,
    ) -> Trajectory:
        """Run better-response learning from *initial* to convergence.

        Returns the full :class:`Trajectory`. Raises
        :class:`ConvergenceError` if the budget is exhausted and
        ``raise_on_budget`` is set. ``allowed`` optionally restricts each
        miner to a subset of coins (same contract as
        :func:`~repro.core.restricted.normalize_mask`).
        """
        game.validate_configuration(initial)
        rng = make_rng(seed)
        policy = self.policy
        scheduler = self.scheduler
        assert policy is not None and scheduler is not None  # set in __post_init__
        view = make_view(game, initial, backend=self.backend, allowed=allowed)
        return run_better_response(
            view,
            policy,
            scheduler,
            rng,
            max_steps=self.max_steps,
            record_configurations=self.record_configurations,
            raise_on_budget=self.raise_on_budget,
            record=self.record,
        )


def converge(
    game: Game,
    initial: Configuration,
    *,
    policy: Optional[BetterResponsePolicy] = None,
    scheduler: Optional[ActivationScheduler] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    seed: RngLike = None,
    backend: str = "fast",
) -> Configuration:
    """Convenience wrapper: run learning and return only the final state."""
    engine = LearningEngine(
        policy=policy,
        scheduler=scheduler,
        max_steps=max_steps,
        record_configurations=False,
        backend=backend,
    )
    return engine.run(game, initial, seed=seed).final
