"""The better-response learning engine.

Runs one improving path: repeatedly ask the scheduler *who* moves and
the policy *where*, apply the step, and stop at a stable configuration.
Theorem 1 guarantees termination for any scheduler × policy pair; the
engine enforces a step budget anyway so a buggy custom policy (one that
returns non-improving moves) cannot loop forever — and it *verifies*
the improvement contract on every step.

Two numeric backends execute the loop:

``"fast"`` (default)
    The :mod:`repro.kernel` integer fast path: powers and rewards are
    normalized to common integer denominators once, then every payoff
    comparison is an integer cross-multiplication. Decision-for-decision
    (and RNG-draw-for-RNG-draw) identical to ``"exact"``; used whenever
    the policy/scheduler pair has a kernel translation.
``"exact"``
    The original :class:`fractions.Fraction` loop. Kept for audits and
    as the automatic fallback for custom policies or schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.exceptions import ConvergenceError
from repro.kernel import engine as kernel_engine
from repro.learning.policies import BetterResponsePolicy, RandomImprovingPolicy
from repro.learning.schedulers import ActivationScheduler, UniformRandomScheduler
from repro.learning.trajectory import Step, Trajectory
from repro.util.rng import RngLike, make_rng

#: Default per-run step budget. Theorem 1 guarantees finite convergence,
#: but the bound is the potential's range; this default is generous for
#: the game sizes the experiments use.
DEFAULT_MAX_STEPS = 1_000_000


@dataclass
class LearningEngine:
    """A reusable better-response learning runner.

    Parameters
    ----------
    policy:
        Where an activated miner moves (default: uniformly random
        improving move — the canonical "arbitrary" learner).
    scheduler:
        Who moves next (default: uniformly random unstable miner).
    max_steps:
        Step budget; exceeded ⇒ :class:`ConvergenceError` when
        ``raise_on_budget`` else an unconverged trajectory.
    record_configurations:
        Keep every intermediate configuration (needed by potential
        audits; costs memory on long runs).
    backend:
        ``"fast"`` (integer kernel, default) or ``"exact"``
        (Fraction loop). The two produce identical trajectories; see
        the module docstring.
    """

    policy: Optional[BetterResponsePolicy] = None
    scheduler: Optional[ActivationScheduler] = None
    max_steps: int = DEFAULT_MAX_STEPS
    record_configurations: bool = True
    raise_on_budget: bool = True
    backend: str = "fast"

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = RandomImprovingPolicy()
        if self.scheduler is None:
            self.scheduler = UniformRandomScheduler()
        if self.max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {self.max_steps}")
        if self.backend not in ("fast", "exact"):
            raise ValueError(f"backend must be 'fast' or 'exact', got {self.backend!r}")

    def run(
        self,
        game: Game,
        initial: Configuration,
        *,
        seed: RngLike = None,
    ) -> Trajectory:
        """Run better-response learning from *initial* to convergence.

        Returns the full :class:`Trajectory`. Raises
        :class:`ConvergenceError` if the budget is exhausted and
        ``raise_on_budget`` is set.
        """
        game.validate_configuration(initial)
        rng = make_rng(seed)
        policy = self.policy
        scheduler = self.scheduler
        assert policy is not None and scheduler is not None  # set in __post_init__
        if self.backend == "fast" and kernel_engine.supports(policy, scheduler):
            return kernel_engine.run_fast(
                game,
                initial,
                policy=policy,
                scheduler=scheduler,
                rng=rng,
                max_steps=self.max_steps,
                record_configurations=self.record_configurations,
                raise_on_budget=self.raise_on_budget,
            )
        scheduler.reset()

        trajectory = Trajectory(configurations=[initial])
        config = initial
        # Incrementally maintained {coin: M_c(s)} map; keeps the
        # per-step stability scan at O(n·k) instead of O(n²·k).
        powers = game.coin_power_map(config)
        for index in range(self.max_steps):
            unstable = game.unstable_miners_given(config, powers)
            if not unstable:
                trajectory.converged = True
                return trajectory
            miner = scheduler.pick(game, config, unstable, rng)
            target = policy.choose(game, config, miner, rng)
            if target is None:
                raise ConvergenceError(
                    f"scheduler activated miner {miner.name!r} but the policy "
                    "found no improving move; scheduler/policy disagree on stability"
                )
            before = game.payoff(miner, config)
            after = game.payoff_after_move(miner, target, config)
            if after <= before:
                raise ConvergenceError(
                    f"policy {policy.name!r} returned a non-improving move for "
                    f"{miner.name!r} ({before} → {after}); better-response contract violated"
                )
            source = config.coin_of(miner)
            config = config.move(miner, target)
            powers[source] -= miner.power
            powers[target] += miner.power
            trajectory.steps.append(
                Step(
                    index=index,
                    miner=miner,
                    source=source,
                    target=target,
                    payoff_before=before,
                    payoff_after=after,
                )
            )
            if self.record_configurations or len(trajectory.configurations) == 1:
                trajectory.configurations.append(config)
            else:
                trajectory.configurations[-1] = config

        if game.is_stable(config):
            trajectory.converged = True
            return trajectory
        if self.raise_on_budget:
            raise ConvergenceError(
                f"better-response learning did not converge within {self.max_steps} steps"
            )
        return trajectory


def converge(
    game: Game,
    initial: Configuration,
    *,
    policy: Optional[BetterResponsePolicy] = None,
    scheduler: Optional[ActivationScheduler] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    seed: RngLike = None,
    backend: str = "fast",
) -> Configuration:
    """Convenience wrapper: run learning and return only the final state."""
    engine = LearningEngine(
        policy=policy,
        scheduler=scheduler,
        max_steps=max_steps,
        record_configurations=False,
        backend=backend,
    )
    return engine.run(game, initial, seed=seed).final
