"""Reference custom strategies written against the strategy-view API.

These are the README's "Writing custom strategies" examples, shipped as
importable code so the parity suite (``tests/test_view_parity.py``) and
the benchmark harness (``benchmarks/bench_engine.py``) exercise the
*same* strategies they document: a custom policy/scheduler pair that
runs on the integer kernel (``backend="fast"``) bit-identical to the
Fraction backend — the guarantee the view protocol exists to provide.
"""

from __future__ import annotations

from repro.learning.policies import BetterResponsePolicy
from repro.learning.schedulers import ActivationScheduler


class SecondBestPolicy(BetterResponsePolicy):
    """Take the second-best improving move — a cautious learner.

    Demonstrates view-based selection with exact payoff comparisons:
    ``improving_moves`` + ``payoff_after_move`` answer identically on
    both backends, so the ranking (and therefore the trajectory) does
    too.
    """

    name = "second-best"

    def choose_view(self, view, miner, rng):
        moves = view.improving_moves(miner)
        if not moves:
            return None
        if len(moves) == 1:
            return moves[0]
        ranked = sorted(
            moves, key=lambda coin: (view.payoff_after_move(miner, coin), coin.name)
        )
        return ranked[-2]


class PowerWeightedScheduler(ActivationScheduler):
    """Activate unstable miners with probability proportional to power.

    Demonstrates a custom RNG-consuming scheduler: the float weights
    are derived from the same exact powers on both backends, so the
    draw sequence — and hence every later decision — stays identical.
    """

    name = "power-weighted"

    def pick_view(self, view, unstable, rng):
        weights = [float(miner.power) for miner in unstable]
        threshold = rng.random() * sum(weights)
        acc = 0.0
        for miner, weight in zip(unstable, weights):
            acc += weight
            if threshold <= acc:
                return miner
        return unstable[-1]


__all__ = ["PowerWeightedScheduler", "SecondBestPolicy"]
