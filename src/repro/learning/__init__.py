"""Better-response learning: policies × schedulers × one view-driven engine (+ MWU baseline)."""

from repro.learning.engine import (
    DEFAULT_MAX_STEPS,
    LearningEngine,
    converge,
    run_better_response,
)
from repro.learning.view import ExactView, GameView, make_view
from repro.learning.policies import (
    STANDARD_POLICIES,
    BestResponsePolicy,
    BetterResponsePolicy,
    EpsilonGreedyPolicy,
    FirstImprovingPolicy,
    MaxRpuPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.learning.regret import MultiplicativeWeightsLearner, MwuResult
from repro.learning.restricted_engine import RestrictedLearningEngine
from repro.learning.simultaneous import (
    SimultaneousResult,
    cycling_fraction,
    run_simultaneous,
)
from repro.learning.schedulers import (
    STANDARD_SCHEDULERS,
    ActivationScheduler,
    LargestFirstScheduler,
    RoundRobinScheduler,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)
from repro.learning.trajectory import Step, Trajectory

__all__ = [
    "DEFAULT_MAX_STEPS",
    "ExactView",
    "GameView",
    "LearningEngine",
    "converge",
    "make_view",
    "run_better_response",
    "STANDARD_POLICIES",
    "BetterResponsePolicy",
    "BestResponsePolicy",
    "EpsilonGreedyPolicy",
    "FirstImprovingPolicy",
    "MaxRpuPolicy",
    "MinimalGainPolicy",
    "RandomImprovingPolicy",
    "MultiplicativeWeightsLearner",
    "MwuResult",
    "RestrictedLearningEngine",
    "SimultaneousResult",
    "cycling_fraction",
    "run_simultaneous",
    "STANDARD_SCHEDULERS",
    "ActivationScheduler",
    "LargestFirstScheduler",
    "RoundRobinScheduler",
    "SmallestFirstScheduler",
    "UniformRandomScheduler",
    "Step",
    "Trajectory",
]
