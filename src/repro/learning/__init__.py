"""Better-response learning: policies × schedulers × engine (+ MWU baseline)."""

from repro.learning.engine import DEFAULT_MAX_STEPS, LearningEngine, converge
from repro.learning.policies import (
    STANDARD_POLICIES,
    BestResponsePolicy,
    BetterResponsePolicy,
    EpsilonGreedyPolicy,
    FirstImprovingPolicy,
    MaxRpuPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.learning.regret import MultiplicativeWeightsLearner, MwuResult
from repro.learning.restricted_engine import RestrictedLearningEngine
from repro.learning.simultaneous import (
    SimultaneousResult,
    cycling_fraction,
    run_simultaneous,
)
from repro.learning.schedulers import (
    STANDARD_SCHEDULERS,
    ActivationScheduler,
    LargestFirstScheduler,
    RoundRobinScheduler,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)
from repro.learning.trajectory import Step, Trajectory

__all__ = [
    "DEFAULT_MAX_STEPS",
    "LearningEngine",
    "converge",
    "STANDARD_POLICIES",
    "BetterResponsePolicy",
    "BestResponsePolicy",
    "EpsilonGreedyPolicy",
    "FirstImprovingPolicy",
    "MaxRpuPolicy",
    "MinimalGainPolicy",
    "RandomImprovingPolicy",
    "MultiplicativeWeightsLearner",
    "MwuResult",
    "RestrictedLearningEngine",
    "SimultaneousResult",
    "cycling_fraction",
    "run_simultaneous",
    "STANDARD_SCHEDULERS",
    "ActivationScheduler",
    "LargestFirstScheduler",
    "RoundRobinScheduler",
    "SmallestFirstScheduler",
    "UniformRandomScheduler",
    "Step",
    "Trajectory",
]
