"""Better-response policies: *where* an activated miner moves.

The paper's convergence result (Theorem 1) holds for *arbitrary*
better-response learning — any sequence of individual improving steps.
A policy is the "where" half of that arbitrariness: given a miner with
at least one improving move, it picks one. The "who moves" half lives in
:mod:`repro.learning.schedulers`.

Every policy must return an *improving* coin (or ``None`` when the
miner is stable); the learning engine verifies this contract, so a
buggy custom policy fails loudly instead of corrupting convergence
measurements.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner


class BetterResponsePolicy(abc.ABC):
    """Strategy interface: choose an improving coin for an active miner."""

    #: Short name used in experiment tables.
    name: str = "abstract"

    @abc.abstractmethod
    def choose(
        self,
        game: Game,
        config: Configuration,
        miner: Miner,
        rng: np.random.Generator,
    ) -> Optional[Coin]:
        """An improving coin for *miner*, or ``None`` if it has none."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BestResponsePolicy(BetterResponsePolicy):
    """Move to the payoff-maximizing coin (classic best response)."""

    name = "best-response"

    def choose(self, game, config, miner, rng):
        return game.best_response(miner, config)


class RandomImprovingPolicy(BetterResponsePolicy):
    """Move to a uniformly random improving coin.

    The canonical "arbitrary better response" instance used by the
    convergence experiments.
    """

    name = "random-improving"

    def choose(self, game, config, miner, rng):
        moves = game.better_response_moves(miner, config)
        if not moves:
            return None
        return moves[int(rng.integers(0, len(moves)))]


class MinimalGainPolicy(BetterResponsePolicy):
    """Move to the improving coin with the *smallest* payoff gain.

    An adversarially slow learner: it takes the least useful improving
    step available, which stress-tests convergence-time results and the
    reward design mechanism's "any better response learning" guarantee.
    """

    name = "minimal-gain"

    def choose(self, game, config, miner, rng):
        moves = game.better_response_moves(miner, config)
        if not moves:
            return None
        current = game.payoff(miner, config)
        return min(
            moves,
            key=lambda coin: (game.payoff_after_move(miner, coin, config) - current, coin.name),
        )


class FirstImprovingPolicy(BetterResponsePolicy):
    """Move to the first improving coin in the game's coin order.

    Deterministic; useful for regression tests that need repeatable
    trajectories without a seed.
    """

    name = "first-improving"

    def choose(self, game, config, miner, rng):
        moves = game.better_response_moves(miner, config)
        return moves[0] if moves else None


class MaxRpuPolicy(BetterResponsePolicy):
    """Move to the improving coin with the highest *post-move* RPU.

    Mirrors how profit-switching dashboards (the paper cites
    whattomine.com) rank coins: by revenue per unit of hashpower after
    you join.
    """

    name = "max-rpu"

    def choose(self, game, config, miner, rng):
        moves = game.better_response_moves(miner, config)
        if not moves:
            return None
        return max(
            moves,
            key=lambda coin: (
                game.rewards[coin] / (game.coin_power(coin, config) + miner.power),
                coin.name,
            ),
        )


class EpsilonGreedyPolicy(BetterResponsePolicy):
    """Best response with probability ``1−ε``, random improving otherwise.

    A noisy learner between the two extremes; still a valid
    better-response policy because both branches return improving moves.
    """

    name = "epsilon-greedy"

    def __init__(self, epsilon: float = 0.2):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self.name = f"epsilon-greedy({epsilon})"
        self._best = BestResponsePolicy()
        self._random = RandomImprovingPolicy()

    def choose(self, game, config, miner, rng):
        if rng.random() < self.epsilon:
            return self._random.choose(game, config, miner, rng)
        return self._best.choose(game, config, miner, rng)


#: The named policies experiments sweep over.
STANDARD_POLICIES = (
    BestResponsePolicy(),
    RandomImprovingPolicy(),
    MinimalGainPolicy(),
    MaxRpuPolicy(),
)
