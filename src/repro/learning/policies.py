"""Better-response policies: *where* an activated miner moves.

The paper's convergence result (Theorem 1) holds for *arbitrary*
better-response learning — any sequence of individual improving steps.
A policy is the "where" half of that arbitrariness: given a miner with
at least one improving move, it picks one. The "who moves" half lives in
:mod:`repro.learning.schedulers`.

Policies are written against the strategy-view API
(:class:`~repro.learning.view.GameView`): override

    ``choose_view(self, view, miner, rng) -> Optional[Coin]``

and query the view (``view.improving_moves(miner)``,
``view.payoff_after_move(miner, coin)``, …). Because the view protocol
answers identically on both numeric backends, a policy written this way
runs on the integer kernel (``backend="fast"``) with trajectories and
RNG draws bit-identical to the Fraction backend — custom subclasses
included; there is no slow-path fallback anymore.

The pre-view signature ``choose(self, game, config, miner, rng)`` keeps
working: subclasses that override it are driven through a thin adapter
that materializes the view's configuration each step (exact semantics,
still kernel-backed stability scans). Override whichever is
convenient; the engine always honors the most-derived one.

Every policy must return an *improving* coin (or ``None`` when the
miner is stable); the learning engine verifies this contract, so a
buggy custom policy fails loudly instead of corrupting convergence
measurements.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.learning.view import ExactView, GameView

#: Engine-facing callable driving one policy decision on a view.
ViewChooser = Callable[[GameView, Miner, np.random.Generator], Optional[Coin]]


class BetterResponsePolicy(abc.ABC):
    """Strategy interface: choose an improving coin for an active miner.

    Subclasses override :meth:`choose_view` (preferred — runs natively
    on both backends) or the legacy :meth:`choose`; each default
    implementation delegates to the other, so either override serves
    both entry points.
    """

    #: Short name used in experiment tables.
    name: str = "abstract"

    def choose(
        self,
        game: Game,
        config: Configuration,
        miner: Miner,
        rng: np.random.Generator,
    ) -> Optional[Coin]:
        """An improving coin for *miner* in *config*, or ``None``.

        Pre-view entry point; the default wraps the arguments in an
        :class:`~repro.learning.view.ExactView` snapshot and runs
        :meth:`choose_view`.
        """
        if type(self).choose_view is BetterResponsePolicy.choose_view:
            raise TypeError(
                f"{type(self).__name__} must override choose_view() or choose()"
            )
        return self.choose_view(ExactView(game, config), miner, rng)

    def choose_view(
        self,
        view: GameView,
        miner: Miner,
        rng: np.random.Generator,
    ) -> Optional[Coin]:
        """An improving coin for *miner* at the view's state, or ``None``.

        The engine-facing entry point; the default adapts to a legacy
        :meth:`choose` override.
        """
        if type(self).choose is BetterResponsePolicy.choose:
            raise TypeError(
                f"{type(self).__name__} must override choose_view() or choose()"
            )
        return self.choose(view.game, view.configuration(), miner, rng)

    def view_chooser(self) -> ViewChooser:
        """The callable the trajectory loop drives, resolved once per run.

        Walks the MRO for the most-derived override so that a subclass
        of a standard policy that overrides only the legacy
        :meth:`choose` is honored (its inherited ``choose_view`` would
        otherwise shadow the override).
        """
        for klass in type(self).__mro__:
            if klass is BetterResponsePolicy:
                break
            if "choose_view" in vars(klass):
                return self.choose_view
            if "choose" in vars(klass):
                return lambda view, miner, rng: self.choose(
                    view.game, view.configuration(), miner, rng
                )
        raise TypeError(
            f"{type(self).__name__} must override choose_view() or choose()"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BestResponsePolicy(BetterResponsePolicy):
    """Move to the payoff-maximizing coin (classic best response)."""

    name = "best-response"

    def choose_view(self, view, miner, rng):
        return view.best_response(miner)


class RandomImprovingPolicy(BetterResponsePolicy):
    """Move to a uniformly random improving coin.

    The canonical "arbitrary better response" instance used by the
    convergence experiments.
    """

    name = "random-improving"

    def choose_view(self, view, miner, rng):
        moves = view.improving_moves(miner)
        if not moves:
            return None
        return moves[int(rng.integers(0, len(moves)))]


class MinimalGainPolicy(BetterResponsePolicy):
    """Move to the improving coin with the *smallest* payoff gain.

    An adversarially slow learner: it takes the least useful improving
    step available, which stress-tests convergence-time results and the
    reward design mechanism's "any better response learning" guarantee.
    """

    name = "minimal-gain"

    def choose_view(self, view, miner, rng):
        moves = view.improving_moves(miner)
        if not moves:
            return None
        return view.minimal_gain_move(miner, moves)


class FirstImprovingPolicy(BetterResponsePolicy):
    """Move to the first improving coin in the game's coin order.

    Deterministic; useful for regression tests that need repeatable
    trajectories without a seed.
    """

    name = "first-improving"

    def choose_view(self, view, miner, rng):
        moves = view.improving_moves(miner)
        return moves[0] if moves else None


class MaxRpuPolicy(BetterResponsePolicy):
    """Move to the improving coin with the highest *post-move* RPU.

    Mirrors how profit-switching dashboards (the paper cites
    whattomine.com) rank coins: by revenue per unit of hashpower after
    you join.
    """

    name = "max-rpu"

    def choose_view(self, view, miner, rng):
        moves = view.improving_moves(miner)
        if not moves:
            return None
        return view.max_rpu_move(miner, moves)


class EpsilonGreedyPolicy(BetterResponsePolicy):
    """Best response with probability ``1−ε``, random improving otherwise.

    A noisy learner between the two extremes; still a valid
    better-response policy because both branches return improving moves.
    """

    name = "epsilon-greedy"

    def __init__(self, epsilon: float = 0.2):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self.name = f"epsilon-greedy({epsilon})"
        self._best = BestResponsePolicy()
        self._random = RandomImprovingPolicy()

    def choose_view(self, view, miner, rng):
        if rng.random() < self.epsilon:
            return self._random.choose_view(view, miner, rng)
        return self._best.choose_view(view, miner, rng)


#: The named policies experiments sweep over.
STANDARD_POLICIES = (
    BestResponsePolicy(),
    RandomImprovingPolicy(),
    MinimalGainPolicy(),
    MaxRpuPolicy(),
)
