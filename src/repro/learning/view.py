"""The strategy-view API: one evaluation protocol for every dynamic.

A :class:`GameView` is a *mutable cursor* over one configuration of one
game: it answers the handful of evaluation queries every better-response
dynamic is built from —

* ``payoff(miner)`` / ``payoff_after_move(miner, coin)``,
* ``improving_moves(miner)`` / ``best_response(miner)``,
* ``unstable_miners()`` / ``is_stable()``,
* ``apply(miner, coin)`` (advance the cursor one move),
* ``configuration()`` (materialize the current state),

plus two selection helpers the standard policies need
(``minimal_gain_move`` / ``max_rpu_move``). Policies and schedulers are
written against this protocol, and the *single* trajectory loop in
:mod:`repro.learning.engine` drives them — so there is exactly one loop
to audit, and the numeric backend is chosen by picking a view:

:class:`ExactView`
    Wraps :class:`repro.core.game.Game` directly; every quantity is a
    :class:`fractions.Fraction`. The audit backend.
:class:`~repro.kernel.engine.KernelView`
    Wraps :class:`repro.kernel.core.KernelGame`; state is an integer
    coin index per miner plus an incrementally maintained integer mass
    per coin (O(1) update per step), and every verdict is an integer
    cross-multiplication. Decision-for-decision (and RNG-draw-for-draw)
    identical to :class:`ExactView` — for *every* strategy, including
    custom subclasses, since the same strategy code runs on both.

Both views accept an optional per-miner *allowed-coin* mask, which is
how :class:`~repro.core.restricted.RestrictedGame` dynamics run on the
integer kernel: the restriction only filters candidate moves, so it
pushes down into the views instead of needing its own loop.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.core.restricted import normalize_mask

#: The backend strings :func:`make_view` (and every engine) accepts.
BACKENDS = ("fast", "exact", "class")


class GameView(abc.ABC):
    """Evaluation protocol over one mutable configuration of one game.

    Implementations must answer every query with *identical decisions*
    (same values where Fractions leave the view, same tuple orders,
    same tie-breaks) so that a strategy consuming the view draws the
    same RNG sequence on every backend. ``tests/test_view_parity.py``
    asserts this for custom strategies, ``tests/test_kernel_parity.py``
    for the standard ones.
    """

    #: The wrapped game (strategies may read miners/coins/rewards).
    game: Game

    __slots__ = ()

    # -- read-only structure -------------------------------------------

    @property
    def miners(self) -> Tuple[Miner, ...]:
        """The game's miners, in game order."""
        return self.game.miners

    @property
    def coins(self) -> Tuple[Coin, ...]:
        """The game's coins, in game order."""
        return self.game.coins

    @abc.abstractmethod
    def allowed_coins(self, miner: Miner) -> Tuple[Coin, ...]:
        """The coins *miner* may mine (all coins when unrestricted)."""

    @abc.abstractmethod
    def coin_of(self, miner: Miner) -> Coin:
        """The coin *miner* currently mines."""

    # -- evaluation ----------------------------------------------------

    @abc.abstractmethod
    def payoff(self, miner: Miner) -> Fraction:
        """``u_p(s)`` at the current state, exact."""

    @abc.abstractmethod
    def payoff_after_move(self, miner: Miner, coin: Coin) -> Fraction:
        """``u_p((s_{-p}, c))`` without applying the move, exact."""

    @abc.abstractmethod
    def improving_moves(self, miner: Miner) -> Tuple[Coin, ...]:
        """Allowed coins that strictly improve *miner*, in coin order."""

    @abc.abstractmethod
    def best_response(self, miner: Miner) -> Optional[Coin]:
        """The payoff-maximizing allowed improving coin, or ``None``.

        Ties resolve to the earliest coin in game order, matching
        :meth:`repro.core.game.Game.best_response`.
        """

    @abc.abstractmethod
    def unstable_miners(self) -> Tuple[Miner, ...]:
        """Miners with at least one improving move, in miner order."""

    def is_stable(self) -> bool:
        """Whether the current state is a (restricted) equilibrium."""
        return not self.unstable_miners()

    # -- selection helpers (standard policies' hot paths) --------------

    @abc.abstractmethod
    def minimal_gain_move(self, miner: Miner, moves: Sequence[Coin]) -> Coin:
        """Of *moves*, the one with the smallest post-move payoff.

        Ties break to the smaller coin name — the
        :class:`~repro.learning.policies.MinimalGainPolicy` ordering.
        *moves* may be any non-empty candidate list; "moving" to the
        miner's current coin means staying (its mass already includes
        the miner), exactly as :meth:`payoff_after_move` defines it.
        """

    @abc.abstractmethod
    def max_rpu_move(self, miner: Miner, moves: Sequence[Coin]) -> Coin:
        """Of *moves*, the one with the highest post-move RPU.

        Ties break to the larger coin name. For a fixed miner the
        post-move RPU ordering equals the post-move payoff ordering,
        so this is also "best move, ties to the larger name" — the
        restricted engine's ``best`` mode. The current coin counts as
        staying, as in :meth:`minimal_gain_move`.
        """

    # -- state ---------------------------------------------------------

    @abc.abstractmethod
    def apply(self, miner: Miner, coin: Coin) -> None:
        """Move *miner* to *coin*, updating incremental state in O(1)."""

    @abc.abstractmethod
    def configuration(self) -> Configuration:
        """The current state as an immutable :class:`Configuration`.

        Repeated calls between moves return the same object; the miner
        order is the initial configuration's, so materialized states
        compare equal across backends.
        """


# The mask normalizer lives with the restricted-game model in core;
# the legacy private name is kept for this layer's existing importers.
_normalize_mask = normalize_mask


class ExactView(GameView):
    """The Fraction backend: a game, a configuration, a live power map."""

    __slots__ = ("game", "_config", "_powers", "_allowed")

    def __init__(
        self,
        game: Game,
        initial: Configuration,
        *,
        allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
    ):
        self.game = game
        self._config = initial
        # Incrementally maintained {coin: M_c(s)}; keeps every query at
        # O(k) per miner instead of O(n·k).
        self._powers: Dict[Coin, Fraction] = game.coin_power_map(initial)
        self._allowed = _normalize_mask(game, allowed)

    # -- structure -----------------------------------------------------

    def allowed_coins(self, miner: Miner) -> Tuple[Coin, ...]:
        if self._allowed is None:
            return self.game.coins
        return self._allowed[miner]

    def coin_of(self, miner: Miner) -> Coin:
        return self._config.coin_of(miner)

    # -- evaluation ----------------------------------------------------

    def payoff(self, miner: Miner) -> Fraction:
        coin = self._config.coin_of(miner)
        return miner.power * self.game.rewards[coin] / self._powers[coin]

    def payoff_after_move(self, miner: Miner, coin: Coin) -> Fraction:
        if self._config.coin_of(miner) == coin:
            return self.payoff(miner)
        return miner.power * self.game.rewards[coin] / (self._powers[coin] + miner.power)

    def improving_moves(self, miner: Miner) -> Tuple[Coin, ...]:
        if self._allowed is None:
            return self.game.better_response_moves_given(
                miner, self._config, self._powers
            )
        rewards = self.game.rewards
        powers = self._powers
        current = self._config.coin_of(miner)
        current_reward = rewards[current]
        current_mass = powers[current]
        return tuple(
            coin
            for coin in self._allowed[miner]
            if coin != current
            and rewards[coin] * current_mass > current_reward * (powers[coin] + miner.power)
        )

    def best_response(self, miner: Miner) -> Optional[Coin]:
        rewards = self.game.rewards
        powers = self._powers
        current = self._config.coin_of(miner)
        candidates = self.game.coins if self._allowed is None else self._allowed[miner]
        # Best-so-far as the pair (reward, mass-denominator); strict
        # improvement only, so ties resolve to the earliest coin —
        # exactly Game.best_response.
        best_reward = rewards[current]
        best_mass = powers[current]
        best: Optional[Coin] = None
        for coin in candidates:
            if coin == current:
                continue
            mass = powers[coin] + miner.power
            if rewards[coin] * best_mass > best_reward * mass:
                best_reward = rewards[coin]
                best_mass = mass
                best = coin
        return best

    def unstable_miners(self) -> Tuple[Miner, ...]:
        if self._allowed is None:
            return self.game.unstable_miners_given(self._config, self._powers)
        return tuple(
            miner for miner in self.game.miners if self.improving_moves(miner)
        )

    # -- selection helpers ---------------------------------------------

    def minimal_gain_move(self, miner: Miner, moves: Sequence[Coin]) -> Coin:
        return min(
            moves,
            key=lambda coin: (self.payoff_after_move(miner, coin), coin.name),
        )

    def max_rpu_move(self, miner: Miner, moves: Sequence[Coin]) -> Coin:
        rewards = self.game.rewards
        powers = self._powers
        current = self._config.coin_of(miner)

        def post_move_rpu(coin: Coin) -> Fraction:
            if coin == current:
                return rewards[coin] / powers[coin]
            return rewards[coin] / (powers[coin] + miner.power)

        return max(moves, key=lambda coin: (post_move_rpu(coin), coin.name))

    # -- state ---------------------------------------------------------

    def apply(self, miner: Miner, coin: Coin) -> None:
        source = self._config.coin_of(miner)
        self._config = self._config.move(miner, coin)
        self._powers[source] -= miner.power
        self._powers[coin] += miner.power

    def configuration(self) -> Configuration:
        return self._config

    def __repr__(self) -> str:
        return f"ExactView({self.game!r})"


def make_view(
    game: Game,
    initial: Configuration,
    *,
    backend: str = "fast",
    allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
) -> GameView:
    """The view for *backend*: ``"fast"`` → KernelView, ``"exact"`` →
    ExactView, ``"class"`` → the population-compressed
    :class:`~repro.kernel.classes.ClassView` (identical decisions, scans
    memoized per (power, alphabet) class).

    The single seam every engine goes through; *allowed* is the
    restricted-game mask (``None`` = unrestricted).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be 'fast', 'exact' or 'class', got {backend!r}"
        )
    if backend == "exact":
        return ExactView(game, initial, allowed=allowed)
    # Imported lazily so this module (which every strategy imports)
    # never pulls the kernel package in at import time.
    if backend == "class":
        from repro.kernel.classes import ClassView

        return ClassView(game, initial, allowed=allowed)
    from repro.kernel.engine import KernelView

    return KernelView(game, initial, allowed=allowed)


__all__ = ["BACKENDS", "ExactView", "GameView", "make_view"]
