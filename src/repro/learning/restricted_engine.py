"""Better-response learning for restricted (asymmetric) games.

A thin engine mirroring :class:`repro.learning.engine.LearningEngine`
for :class:`repro.core.restricted.RestrictedGame`. Kept separate so the
symmetric hot path stays lean; the restricted engine reuses the policy
idea (where to move) but consults the restriction for legal moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.restricted import RestrictedGame
from repro.exceptions import ConvergenceError
from repro.kernel.engine import run_restricted_fast
from repro.learning.trajectory import Step, Trajectory
from repro.util.rng import RngLike, make_rng


@dataclass
class RestrictedLearningEngine:
    """Arbitrary better-response learning under hardware restrictions.

    Policies are expressed as a mode string rather than the policy
    objects of the unrestricted engine, because restricted move sets
    must be computed here anyway:

    * ``"random"`` — uniformly random legal improving move,
    * ``"best"`` — legal payoff-maximizing move,
    * ``"minimal"`` — legal move with the smallest gain (adversarial).

    ``backend="fast"`` (default) runs the :mod:`repro.kernel` integer
    loop; ``"exact"`` keeps the Fraction loop. Both produce identical
    trajectories for identical seeds.
    """

    mode: str = "random"
    max_steps: int = 1_000_000
    backend: str = "fast"

    def __post_init__(self) -> None:
        if self.mode not in ("random", "best", "minimal"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if self.backend not in ("fast", "exact"):
            raise ValueError(f"backend must be 'fast' or 'exact', got {self.backend!r}")

    def run(
        self,
        restricted: RestrictedGame,
        initial: Configuration,
        *,
        seed: RngLike = None,
    ) -> Trajectory:
        """Run legal better-response learning to a restricted equilibrium."""
        restricted.validate_configuration(initial)
        rng = make_rng(seed)
        # Exact-type check: a subclass may override _select, which the
        # kernel loop never calls — only the Fraction loop honors it.
        if self.backend == "fast" and type(self) is RestrictedLearningEngine:
            return run_restricted_fast(
                restricted,
                initial,
                mode=self.mode,
                rng=rng,
                max_steps=self.max_steps,
            )
        game = restricted.game
        trajectory = Trajectory(configurations=[initial])
        config = initial
        for index in range(self.max_steps):
            unstable = restricted.unstable_miners(config)
            if not unstable:
                trajectory.converged = True
                return trajectory
            miner = unstable[int(rng.integers(0, len(unstable)))]
            moves = restricted.better_response_moves(miner, config)
            target = self._select(game, miner, config, moves, rng)
            before = game.payoff(miner, config)
            source = config.coin_of(miner)
            config = config.move(miner, target)
            after = game.payoff(miner, config)
            if after <= before:
                raise ConvergenceError(
                    "restricted engine produced a non-improving step; bug"
                )
            trajectory.steps.append(
                Step(
                    index=index,
                    miner=miner,
                    source=source,
                    target=target,
                    payoff_before=before,
                    payoff_after=after,
                )
            )
            trajectory.configurations.append(config)
        if restricted.is_stable(config):
            trajectory.converged = True
            return trajectory
        raise ConvergenceError(
            f"restricted learning did not converge within {self.max_steps} steps"
        )

    def _select(self, game, miner, config, moves, rng):
        if self.mode == "random":
            return moves[int(rng.integers(0, len(moves)))]
        gains = {
            coin: game.payoff_after_move(miner, coin, config) for coin in moves
        }
        if self.mode == "best":
            return max(moves, key=lambda c: (gains[c], c.name))
        return min(moves, key=lambda c: (gains[c], c.name))
