"""Better-response learning for restricted (asymmetric) games.

A thin wrapper over the shared trajectory stepper
(:func:`repro.learning.engine.run_better_response`): the hardware
restriction is expressed as a per-miner allowed-coin mask pushed into
the :class:`~repro.learning.view.GameView`, so restricted games run on
the same loop — and the same integer kernel — as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.restricted import RestrictedGame
from repro.learning.engine import run_better_response
from repro.learning.policies import BetterResponsePolicy
from repro.learning.schedulers import UniformRandomScheduler
from repro.learning.trajectory import Trajectory
from repro.learning.view import make_view
from repro.util.rng import RngLike, make_rng


@dataclass
class RestrictedLearningEngine:
    """Arbitrary better-response learning under hardware restrictions.

    Policies are expressed as a mode string rather than the policy
    objects of the unrestricted engine, because restricted move sets
    must be computed against the mask anyway:

    * ``"random"`` — uniformly random legal improving move,
    * ``"best"`` — legal payoff-maximizing move,
    * ``"minimal"`` — legal move with the smallest gain (adversarial).

    ``backend="fast"`` (default) runs the mask-aware integer kernel
    view; ``"exact"`` the Fraction view. Both produce identical
    trajectories for identical seeds — also for subclasses that
    override :meth:`_select`, which the unified loop honors on either
    backend.
    """

    mode: str = "random"
    max_steps: int = 1_000_000
    backend: str = "fast"

    def __post_init__(self) -> None:
        if self.mode not in ("random", "best", "minimal"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if self.backend not in ("fast", "exact"):
            raise ValueError(f"backend must be 'fast' or 'exact', got {self.backend!r}")

    def run(
        self,
        restricted: RestrictedGame,
        initial: Configuration,
        *,
        seed: RngLike = None,
    ) -> Trajectory:
        """Run legal better-response learning to a restricted equilibrium."""
        restricted.validate_configuration(initial)
        rng = make_rng(seed)
        allowed = {
            miner: restricted.allowed_coins(miner) for miner in restricted.miners
        }
        view = make_view(
            restricted.game, initial, backend=self.backend, allowed=allowed
        )
        return run_better_response(
            view,
            _RestrictedModePolicy(self),
            UniformRandomScheduler(),
            rng,
            max_steps=self.max_steps,
            record_configurations=True,
            raise_on_budget=True,
            what="restricted learning",
        )

    def _select(self, game, miner, config, moves, rng):
        """Pick one of the legal improving *moves* (subclass hook).

        Overrides are honored on both backends; the default dispatches
        on :attr:`mode`.
        """
        if self.mode == "random":
            return moves[int(rng.integers(0, len(moves)))]
        gains = {
            coin: game.payoff_after_move(miner, coin, config) for coin in moves
        }
        if self.mode == "best":
            return max(moves, key=lambda c: (gains[c], c.name))
        return min(moves, key=lambda c: (gains[c], c.name))


class _RestrictedModePolicy(BetterResponsePolicy):
    """Adapter presenting a :class:`RestrictedLearningEngine` as a policy.

    The view already filters moves to the restriction mask, so the
    policy only realizes the engine's mode — through the view's integer
    selection helpers, or through a subclass's overridden
    :meth:`RestrictedLearningEngine._select` (which receives the exact
    game/config arguments it always did).
    """

    def __init__(self, engine: RestrictedLearningEngine):
        self._engine = engine
        self.name = f"restricted-{engine.mode}"
        self._custom_select = (
            type(engine)._select is not RestrictedLearningEngine._select
        )

    def choose_view(self, view, miner, rng):
        moves = view.improving_moves(miner)
        if not moves:
            return None
        if self._custom_select:
            return self._engine._select(
                view.game, miner, view.configuration(), moves, rng
            )
        mode = self._engine.mode
        if mode == "random":
            return moves[int(rng.integers(0, len(moves)))]
        if mode == "best":
            # max by (post-move payoff, name) — the same ordering as the
            # max-RPU selection, since payoff = power · RPU.
            return view.max_rpu_move(miner, moves)
        return view.minimal_gain_move(miner, moves)
