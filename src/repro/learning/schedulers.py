"""Activation schedulers: *who* takes the next better-response step.

The paper allows improvement steps "in any order"; a scheduler realizes
one such order. Together with a policy
(:mod:`repro.learning.policies`) a scheduler instantiates one concrete
better-response learning process out of the arbitrary family that
Theorem 1 quantifies over.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner


class ActivationScheduler(abc.ABC):
    """Strategy interface: pick which unstable miner moves next."""

    name: str = "abstract"

    @abc.abstractmethod
    def pick(
        self,
        game: Game,
        config: Configuration,
        unstable: Sequence[Miner],
        rng: np.random.Generator,
    ) -> Miner:
        """One miner out of the (non-empty) unstable set."""

    def reset(self) -> None:
        """Clear any internal state before a new run (default: none)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UniformRandomScheduler(ActivationScheduler):
    """Activate a uniformly random unstable miner."""

    name = "uniform"

    def pick(self, game, config, unstable, rng):
        return unstable[int(rng.integers(0, len(unstable)))]


class RoundRobinScheduler(ActivationScheduler):
    """Cycle through miners in fixed order, skipping stable ones.

    Models synchronized periodic re-evaluation (e.g. miners re-checking
    profitability once per difficulty epoch).
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def pick(self, game, config, unstable, rng):
        order = game.miners
        unstable_set = set(unstable)
        for offset in range(len(order)):
            candidate = order[(self._cursor + offset) % len(order)]
            if candidate in unstable_set:
                self._cursor = (self._cursor + offset + 1) % len(order)
                return candidate
        raise AssertionError("pick() called with no unstable miner; engine bug")


class LargestFirstScheduler(ActivationScheduler):
    """Always activate the most powerful unstable miner.

    Big pools react fastest in practice (dedicated strategy teams,
    automated switching); this scheduler models that.
    """

    name = "largest-first"

    def pick(self, game, config, unstable, rng):
        return max(unstable, key=lambda miner: (miner.power, miner.name))


class SmallestFirstScheduler(ActivationScheduler):
    """Always activate the least powerful unstable miner.

    The adversarial order for the reward design mechanism, whose stage
    invariants are proved against arbitrary orders — small miners
    ping-ponging is the worst case for stage length.
    """

    name = "smallest-first"

    def pick(self, game, config, unstable, rng):
        return min(unstable, key=lambda miner: (miner.power, miner.name))


#: The named schedulers experiments sweep over.
STANDARD_SCHEDULERS = (
    UniformRandomScheduler(),
    RoundRobinScheduler(),
    LargestFirstScheduler(),
    SmallestFirstScheduler(),
)
