"""Activation schedulers: *who* takes the next better-response step.

The paper allows improvement steps "in any order"; a scheduler realizes
one such order. Together with a policy
(:mod:`repro.learning.policies`) a scheduler instantiates one concrete
better-response learning process out of the arbitrary family that
Theorem 1 quantifies over.

Like policies, schedulers are written against the strategy-view API:
override

    ``pick_view(self, view, unstable, rng) -> Miner``

and read whatever the view exposes (``view.miners`` for a fixed
activation order, payoffs for priority rules, …). View-based
schedulers run on the integer kernel with RNG draws identical to the
Fraction backend. The pre-view signature
``pick(self, game, config, unstable, rng)`` keeps working through the
same adapter scheme as policies; the engine honors the most-derived
override.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.learning.view import ExactView, GameView

#: Engine-facing callable driving one scheduler decision on a view.
ViewPicker = Callable[[GameView, Sequence[Miner], np.random.Generator], Miner]


class ActivationScheduler(abc.ABC):
    """Strategy interface: pick which unstable miner moves next.

    Subclasses override :meth:`pick_view` (preferred) or the legacy
    :meth:`pick`; each default delegates to the other.
    """

    name: str = "abstract"

    def pick(
        self,
        game: Game,
        config: Configuration,
        unstable: Sequence[Miner],
        rng: np.random.Generator,
    ) -> Miner:
        """One miner out of the (non-empty) unstable set.

        Pre-view entry point; the default wraps the arguments in an
        :class:`~repro.learning.view.ExactView` snapshot and runs
        :meth:`pick_view`.
        """
        if type(self).pick_view is ActivationScheduler.pick_view:
            raise TypeError(
                f"{type(self).__name__} must override pick_view() or pick()"
            )
        return self.pick_view(ExactView(game, config), unstable, rng)

    def pick_view(
        self,
        view: GameView,
        unstable: Sequence[Miner],
        rng: np.random.Generator,
    ) -> Miner:
        """One miner out of the (non-empty) unstable set, given the view.

        The engine-facing entry point; the default adapts to a legacy
        :meth:`pick` override.
        """
        if type(self).pick is ActivationScheduler.pick:
            raise TypeError(
                f"{type(self).__name__} must override pick_view() or pick()"
            )
        return self.pick(view.game, view.configuration(), unstable, rng)

    def view_picker(self) -> ViewPicker:
        """The callable the trajectory loop drives (most-derived override)."""
        for klass in type(self).__mro__:
            if klass is ActivationScheduler:
                break
            if "pick_view" in vars(klass):
                return self.pick_view
            if "pick" in vars(klass):
                return lambda view, unstable, rng: self.pick(
                    view.game, view.configuration(), unstable, rng
                )
        raise TypeError(
            f"{type(self).__name__} must override pick_view() or pick()"
        )

    def reset(self) -> None:
        """Clear any internal state before a new run (default: none)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UniformRandomScheduler(ActivationScheduler):
    """Activate a uniformly random unstable miner."""

    name = "uniform"

    def pick_view(self, view, unstable, rng):
        return unstable[int(rng.integers(0, len(unstable)))]


class RoundRobinScheduler(ActivationScheduler):
    """Cycle through miners in fixed order, skipping stable ones.

    Models synchronized periodic re-evaluation (e.g. miners re-checking
    profitability once per difficulty epoch).
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def pick_view(self, view, unstable, rng):
        order = view.miners
        unstable_set = set(unstable)
        for offset in range(len(order)):
            candidate = order[(self._cursor + offset) % len(order)]
            if candidate in unstable_set:
                self._cursor = (self._cursor + offset + 1) % len(order)
                return candidate
        raise AssertionError("pick() called with no unstable miner; engine bug")


class LargestFirstScheduler(ActivationScheduler):
    """Always activate the most powerful unstable miner.

    Big pools react fastest in practice (dedicated strategy teams,
    automated switching); this scheduler models that.
    """

    name = "largest-first"

    def pick_view(self, view, unstable, rng):
        return max(unstable, key=lambda miner: (miner.power, miner.name))


class SmallestFirstScheduler(ActivationScheduler):
    """Always activate the least powerful unstable miner.

    The adversarial order for the reward design mechanism, whose stage
    invariants are proved against arbitrary orders — small miners
    ping-ponging is the worst case for stage length.
    """

    name = "smallest-first"

    def pick_view(self, view, unstable, rng):
        return min(unstable, key=lambda miner: (miner.power, miner.name))


#: The named schedulers experiments sweep over.
STANDARD_SCHEDULERS = (
    UniformRandomScheduler(),
    RoundRobinScheduler(),
    LargestFirstScheduler(),
    SmallestFirstScheduler(),
)
