"""Trajectories: the recorded history of one better-response learning run."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.miner import Miner


@dataclass(frozen=True)
class Step:
    """One better-response step: who moved, from where, to where, gaining what."""

    index: int
    miner: Miner
    source: Coin
    target: Coin
    payoff_before: Fraction
    payoff_after: Fraction

    @property
    def gain(self) -> Fraction:
        return self.payoff_after - self.payoff_before


@dataclass
class Trajectory:
    """A full better-response learning run.

    ``configurations[0]`` is the initial state; ``configurations[i+1]``
    results from ``steps[i]``. ``converged`` is ``True`` when the run
    ended in a stable configuration (as Theorem 1 guarantees it must,
    given enough budget).
    """

    configurations: List[Configuration] = field(default_factory=list)
    steps: List[Step] = field(default_factory=list)
    converged: bool = False
    #: Step count for runs recorded in ``record="summary"`` mode, where no
    #: :class:`Step` objects are kept. ``None`` whenever ``steps`` is
    #: authoritative.
    step_count: Optional[int] = None

    @property
    def initial(self) -> Configuration:
        return self.configurations[0]

    @property
    def final(self) -> Configuration:
        return self.configurations[-1]

    @property
    def length(self) -> int:
        """Number of better-response steps taken."""
        if self.step_count is not None:
            return self.step_count
        return len(self.steps)

    def moves_per_miner(self) -> Dict[Miner, int]:
        """How many times each miner moved."""
        counts: Dict[Miner, int] = {}
        for step in self.steps:
            counts[step.miner] = counts.get(step.miner, 0) + 1
        return counts

    def total_gain(self) -> Fraction:
        """Sum of per-step payoff gains (each strictly positive)."""
        return sum((step.gain for step in self.steps), Fraction(0))

    def coin_flow(self) -> Dict[Tuple[Coin, Coin], int]:
        """Move counts keyed by (source coin, target coin)."""
        flows: Dict[Tuple[Coin, Coin], int] = {}
        for step in self.steps:
            key = (step.source, step.target)
            flows[key] = flows.get(key, 0) + 1
        return flows

    def summary(self) -> str:
        state = "converged" if self.converged else "budget exhausted"
        return f"Trajectory({self.length} steps, {state})"
