"""Multiplicative-weights (Hedge) learning baseline.

The paper's related work contrasts its minimal-rationality model
(arbitrary better-response steps) with regret-minimizing learning
[Heliou et al. 2017; Palaiopanos et al. 2017]. This module implements
that comparator: each miner keeps a mixed strategy over coins and
updates it with multiplicative weights on observed RPU payoffs. E9 uses
it to compare convergence speed and limit behaviour against
better-response learning.

Unlike the exact core, this learner works in floats — mixed strategies
are inherently approximate and the MWU trajectory is a simulation
artifact, not a correctness-critical object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.util.rng import RngLike, make_rng


@dataclass
class MwuResult:
    """Outcome of a multiplicative-weights run."""

    #: Per-round realized configurations (sampled from mixed strategies).
    configurations: List[Configuration]
    #: Per-miner final mixed strategy over coins (row-stochastic matrix).
    final_strategies: np.ndarray
    #: Rounds until the empirical play stabilized (or None if it never did).
    stabilized_at: Optional[int]

    @property
    def rounds(self) -> int:
        return len(self.configurations)

    @property
    def final(self) -> Configuration:
        return self.configurations[-1]


class MultiplicativeWeightsLearner:
    """Hedge over coins, one weight vector per miner.

    Each round every miner samples a coin from its mixed strategy, the
    realized configuration determines RPUs, and each miner reweights
    *all* coins by the counterfactual payoff it would have received
    there (full-information Hedge).
    """

    def __init__(self, step_size: float = 0.2, *, stability_window: int = 25):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if stability_window < 1:
            raise ValueError(f"stability_window must be ≥ 1, got {stability_window}")
        self.step_size = step_size
        self.stability_window = stability_window

    def run(
        self,
        game: Game,
        rounds: int,
        *,
        seed: RngLike = None,
        initial: Optional[Configuration] = None,
    ) -> MwuResult:
        """Run *rounds* rounds of full-information Hedge."""
        if rounds < 1:
            raise ValueError(f"rounds must be ≥ 1, got {rounds}")
        rng = make_rng(seed)
        n, k = len(game.miners), len(game.coins)
        powers = np.array([float(m.power) for m in game.miners])
        rewards = np.array([float(game.rewards[c]) for c in game.coins])

        weights = np.ones((n, k))
        if initial is not None:
            # Bias the starting mixture toward the given configuration.
            game.validate_configuration(initial)
            for i, miner in enumerate(game.miners):
                j = game.coins.index(initial.coin_of(miner))
                weights[i, j] = 10.0
        reward_scale = rewards.max() / max(powers.min(), 1e-12)

        configurations: List[Configuration] = []
        stabilized_at: Optional[int] = None
        last_choice: Optional[np.ndarray] = None
        stable_run = 0

        for round_index in range(rounds):
            probabilities = weights / weights.sum(axis=1, keepdims=True)
            choices = np.array(
                [rng.choice(k, p=probabilities[i]) for i in range(n)], dtype=int
            )
            configurations.append(
                Configuration(game.miners, [game.coins[j] for j in choices])
            )

            # Counterfactual payoff of miner i on coin j: join j (leaving
            # its current coin), everyone else fixed.
            coin_power = np.zeros(k)
            np.add.at(coin_power, choices, powers)
            payoff_matrix = np.empty((n, k))
            for i in range(n):
                others = coin_power.copy()
                others[choices[i]] -= powers[i]
                payoff_matrix[i] = powers[i] * rewards / (others + powers[i])
            normalized = payoff_matrix / (reward_scale * powers[:, None])
            weights *= np.exp(self.step_size * normalized)
            weights /= weights.max(axis=1, keepdims=True)  # numerical hygiene

            if last_choice is not None and np.array_equal(choices, last_choice):
                stable_run += 1
                if stable_run >= self.stability_window and stabilized_at is None:
                    stabilized_at = round_index - self.stability_window + 1
            else:
                stable_run = 0
                stabilized_at = None
            last_choice = choices

        probabilities = weights / weights.sum(axis=1, keepdims=True)
        return MwuResult(
            configurations=configurations,
            final_strategies=probabilities,
            stabilized_at=stabilized_at,
        )
