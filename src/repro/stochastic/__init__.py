"""Monte Carlo realization layer: sampled lotteries, noisy learning, risk.

Everything above this package reasons about *expected* payoffs; this
package realizes the randomness those expectations integrate over and
asks which of the paper's predictions survive sampling noise:

``repro.stochastic.lottery``
    Exact-rational block-win sampler (integer cumulative thresholds
    over a shared RNG draw; bit-identical wherever it runs).
``repro.stochastic.estimator``
    Empirical payoff estimators with confidence intervals and
    pluggable per-decision sample budgets.
``repro.stochastic.noisy_engine``
    Sample-based better-response learning (estimated improvements,
    optional inertia/exploration) with a batch runner whose serial,
    threaded, multi-process and vectorized-lockstep
    (:func:`~repro.stochastic.noisy_engine.run_noisy_population`)
    results are identical.
``repro.stochastic.risk``
    Closed-form and sampled reward variance, ruin-style tail bounds,
    time-to-equilibrium distributions, and misconvergence rates
    cross-checked against the exact ConfigSpace equilibrium set.
``repro.stochastic.bridge``
    Drives the event-driven chain simulator from a game and reconciles
    its realized fiat shares with the round lottery and the model.

E15 (misconvergence vs. sample budget) and E16 (risk profiles at and
off equilibrium) surface this layer in the experiment suite.
"""

from repro.stochastic.bridge import (
    ReconciliationReport,
    reconcile,
    simulation_from_game,
    specs_from_game,
)
from repro.stochastic.estimator import (
    FixedBudget,
    GeometricBudget,
    PayoffEstimate,
    SampleBudget,
    as_budget,
    estimate_payoffs,
    estimation_error,
)
from repro.stochastic.lottery import (
    LotterySample,
    draw_below,
    realized_rewards,
    sample_block_wins,
    sample_win_count,
    sample_wins_state,
)
from repro.stochastic.noisy_engine import (
    NoisyBatchRunner,
    NoisyLearningEngine,
    NoisyRunResult,
    run_noisy_batch,
    run_noisy_population,
)
from repro.stochastic.risk import (
    BudgetOutcome,
    MinerRisk,
    MisconvergenceReport,
    RiskProfile,
    misconvergence_profile,
    per_round_variance,
    reward_risk,
    ruin_bound,
    time_to_equilibrium,
)

__all__ = [
    "ReconciliationReport",
    "reconcile",
    "simulation_from_game",
    "specs_from_game",
    "FixedBudget",
    "GeometricBudget",
    "PayoffEstimate",
    "SampleBudget",
    "as_budget",
    "estimate_payoffs",
    "estimation_error",
    "LotterySample",
    "draw_below",
    "realized_rewards",
    "sample_block_wins",
    "sample_win_count",
    "sample_wins_state",
    "NoisyBatchRunner",
    "NoisyLearningEngine",
    "NoisyRunResult",
    "run_noisy_batch",
    "run_noisy_population",
    "BudgetOutcome",
    "MinerRisk",
    "MisconvergenceReport",
    "RiskProfile",
    "misconvergence_profile",
    "per_round_variance",
    "reward_risk",
    "ruin_bound",
    "time_to_equilibrium",
]
