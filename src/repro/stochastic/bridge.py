"""Bridge between the game layer and the event-driven chain simulator.

:mod:`repro.chainsim` simulates PoW mining physically (exponential
block races, difficulty rules, Poisson re-evaluation); the stochastic
layer samples the same randomness at the game layer (one block per
occupied coin per round). This module drives
:class:`~repro.chainsim.miningsim.MiningSimulation` *from a game* and
reconciles the two realizations against each other and against the
model's expectation:

* every game coin becomes a :class:`~repro.market.coins.CoinSpec` whose
  per-block value equals the coin's reward ``F(c)`` (flat unit exchange
  rate), all sharing one target block interval — so when difficulty is
  calibrated to the initial occupants, every occupied coin produces
  blocks at the same rate and the simulator's long-run fiat shares
  match the game's payoff shares, exactly the DESIGN.md §4 substitution
  argument;
* :func:`reconcile` freezes strategic switching (a vanishing
  re-evaluation rate), runs both realizations, and reports each
  miner's fiat share from the chain simulator, from the round lottery,
  and from the exact model — the integration-level check that the two
  stochastic substrates agree about what they are approximating.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.chainsim.miningsim import MiningSimulation, SimMiner
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.exceptions import SimulationError
from repro.market.coins import CoinSpec
from repro.stochastic.lottery import realized_rewards, sample_block_wins
from repro.util.rng import RngLike


def specs_from_game(
    game: Game,
    *,
    block_interval_s: float = 600.0,
    algorithm: str = "sha256d",
) -> List[CoinSpec]:
    """One :class:`CoinSpec` per game coin, paying ``F(c)`` per block.

    The reward lands in ``block_subsidy`` (fees zero) so that under a
    flat unit exchange rate one block is worth exactly the game-layer
    reward.
    """
    return [
        CoinSpec(
            name=coin.name,
            block_interval_s=block_interval_s,
            block_subsidy=float(game.rewards[coin]),
            fees_per_block=0.0,
            algorithm=algorithm,
        )
        for coin in game.coins
    ]


def simulation_from_game(
    game: Game,
    *,
    reevaluation_rate_per_h: float = 2.0,
    switch_threshold: float = 0.0,
    block_interval_s: float = 600.0,
    seed: RngLike = None,
) -> MiningSimulation:
    """A :class:`MiningSimulation` over the game's miners and coins.

    Powers become floats (the chain layer trades exactness for event
    throughput); the exchange rate is flat 1.0 because the specs
    already denominate blocks in reward units.
    """
    miners = [SimMiner(miner.name, float(miner.power)) for miner in game.miners]
    return MiningSimulation(
        specs_from_game(game, block_interval_s=block_interval_s),
        miners,
        lambda _t, _coin: 1.0,
        reevaluation_rate_per_h=reevaluation_rate_per_h,
        switch_threshold=switch_threshold,
        seed=seed,
    )


@dataclass(frozen=True)
class ReconciliationReport:
    """Per-miner fiat shares from three views of the same configuration."""

    #: Exact model share: ``u_p(s) / Σ_occupied F(c)``.
    expected_share: Dict[str, float]
    #: Realized share from the event-driven chain simulation.
    chain_share: Dict[str, float]
    #: Realized share from the round-lottery sampler.
    lottery_share: Dict[str, float]
    blocks_by_coin: Dict[str, int]
    lottery_rounds: int
    horizon_h: float

    def max_deviation(self, which: str = "chain") -> float:
        """Largest |realized − expected| share across miners.

        *which* selects the realization: ``"chain"`` or ``"lottery"``.
        """
        if which == "chain":
            realized = self.chain_share
        elif which == "lottery":
            realized = self.lottery_share
        else:
            raise ValueError(f"which must be 'chain' or 'lottery', got {which!r}")
        return max(
            abs(realized[name] - self.expected_share[name])
            for name in self.expected_share
        )


def reconcile(
    game: Game,
    config: Configuration,
    *,
    horizon_h: float = 500.0,
    lottery_rounds: int = 2_000,
    block_interval_s: float = 600.0,
    seed: Optional[int] = None,
) -> ReconciliationReport:
    """Run both stochastic substrates at *config* and compare shares.

    Strategic switching is frozen (vanishing re-evaluation rate) so the
    chain simulation realizes exactly the configuration under test.
    Both realizations should concentrate on the model's payoff shares
    as the horizon grows; the report quantifies how closely.
    """
    game.validate_configuration(config)
    if horizon_h <= 0:
        raise SimulationError("horizon must be positive")

    total_reward = sum(
        (game.rewards[coin] for coin in config.occupied_coins()), Fraction(0)
    )
    expected = {
        miner.name: float(game.payoff(miner, config) / total_reward)
        for miner in game.miners
    }

    sim = simulation_from_game(
        game,
        reevaluation_rate_per_h=1e-9,
        block_interval_s=block_interval_s,
        seed=seed,
    )
    result = sim.run(horizon_h, initial_assignment=config.as_dict())
    chain_total = sum(result.fiat_by_miner.values())
    chain_share = {
        name: (value / chain_total if chain_total else 0.0)
        for name, value in result.fiat_by_miner.items()
    }

    sample = sample_block_wins(
        game, config, rounds=lottery_rounds, seed=None if seed is None else seed + 1
    )
    rewards = realized_rewards(game, config, sample)
    lottery_total = sum(rewards.values(), Fraction(0))
    lottery_share = {
        miner.name: (float(rewards[miner] / lottery_total) if lottery_total else 0.0)
        for miner in game.miners
    }

    return ReconciliationReport(
        expected_share=expected,
        chain_share=chain_share,
        lottery_share=lottery_share,
        blocks_by_coin={name: chain.height for name, chain in result.chains.items()},
        lottery_rounds=lottery_rounds,
        horizon_h=horizon_h,
    )
