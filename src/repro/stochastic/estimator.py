"""Empirical payoff estimation from sampled block lotteries.

Bridges the realized layer back to the model: a miner's per-round
payoff estimate after ``T`` lottery rounds is ``wins/T · F(c)`` — an
unbiased, *exact-rational* estimator of ``u_p(s)`` whose error bar is
the Binomial normal approximation. The noisy learning engine consumes
these estimates; its sample budget per decision is pluggable through
the :class:`SampleBudget` protocol so experiments can sweep fixed
budgets against schedules that grow with time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Union

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.obs.recorder import get_recorder
from repro.stochastic.lottery import sample_block_wins
from repro.util.rng import RngLike


@dataclass(frozen=True)
class PayoffEstimate:
    """One miner's empirical per-round payoff with a confidence interval.

    ``mean`` is exact (``wins/rounds · F(c)``); the interval is the
    normal approximation to the Binomial win count, scaled by the block
    reward — a float, because it only guides interpretation, never a
    strategic comparison.
    """

    mean: Fraction
    wins: int
    rounds: int
    stderr: float
    ci_low: float
    ci_high: float

    def covers(self, value: Fraction) -> bool:
        """Whether *value* lies inside the confidence interval."""
        return self.ci_low <= float(value) <= self.ci_high


def estimate_payoffs(
    game: Game,
    config: Configuration,
    *,
    rounds: int,
    seed: RngLike = None,
    z: float = 1.96,
) -> Dict[Miner, PayoffEstimate]:
    """Estimate every miner's payoff from *rounds* sampled lotteries.

    All miners share one lottery run (each round every occupied coin
    races one block), so the estimates are the realized co-movement a
    miner would actually observe, not independent per-miner draws.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be ≥ 1, got {rounds}")
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("stochastic.estimates")
    sample = sample_block_wins(game, config, rounds=rounds, seed=seed)
    estimates: Dict[Miner, PayoffEstimate] = {}
    for index, miner in enumerate(game.miners):
        wins = sample.wins[index]
        reward = game.rewards[config.coin_of(miner)]
        mean = Fraction(wins, rounds) * reward
        rate = wins / rounds
        stderr = float(reward) * math.sqrt(rate * (1.0 - rate) / rounds)
        estimates[miner] = PayoffEstimate(
            mean=mean,
            wins=wins,
            rounds=rounds,
            stderr=stderr,
            ci_low=float(mean) - z * stderr,
            ci_high=float(mean) + z * stderr,
        )
    return estimates


def estimation_error(
    game: Game,
    config: Configuration,
    estimates: Dict[Miner, PayoffEstimate],
) -> Dict[Miner, Fraction]:
    """Exact signed error ``estimate − u_p(s)`` per miner."""
    return {
        miner: estimate.mean - game.payoff(miner, config)
        for miner, estimate in estimates.items()
    }


# ----------------------------------------------------------------------
# Sample budgets
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FixedBudget:
    """The same number of lottery rounds for every decision."""

    rounds: int

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be ≥ 1, got {self.rounds}")

    def rounds_at(self, step: int) -> int:
        return self.rounds


@dataclass(frozen=True)
class GeometricBudget:
    """A budget that multiplies by *growth* every *period* decisions.

    Models learners that sample more carefully as the system calms
    down; capping keeps per-decision cost bounded.
    """

    base: int
    growth: float = 2.0
    period: int = 1
    cap: int = 1_000_000

    def __post_init__(self) -> None:
        if self.base < 1:
            raise ValueError(f"base must be ≥ 1, got {self.base}")
        if self.growth < 1.0:
            raise ValueError(f"growth must be ≥ 1, got {self.growth}")
        if self.period < 1:
            raise ValueError(f"period must be ≥ 1, got {self.period}")
        if self.cap < self.base:
            raise ValueError(f"cap must be ≥ base, got cap={self.cap}, base={self.base}")

    def rounds_at(self, step: int) -> int:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        exponent = step // self.period
        # Avoid overflowing float exponentiation once the cap is reached.
        if self.growth > 1.0 and exponent * math.log(self.growth) > math.log(
            self.cap / self.base
        ):
            return self.cap
        return min(self.cap, int(self.base * self.growth**exponent))


#: Anything with a ``rounds_at(step) -> int`` method, or a plain int
#: (treated as a :class:`FixedBudget`).
SampleBudget = Union[FixedBudget, GeometricBudget]


def as_budget(budget: Union[int, SampleBudget]) -> SampleBudget:
    """Normalize an ``int | SampleBudget`` argument to a budget object."""
    if isinstance(budget, int):
        return FixedBudget(budget)
    if hasattr(budget, "rounds_at"):
        return budget
    raise TypeError(
        f"budget must be an int or expose rounds_at(step), got {type(budget).__name__}"
    )


__all__ = [
    "PayoffEstimate",
    "estimate_payoffs",
    "estimation_error",
    "FixedBudget",
    "GeometricBudget",
    "SampleBudget",
    "as_budget",
]
