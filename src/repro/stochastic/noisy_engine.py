"""Sample-based better-response learning with noisy payoff estimates.

The exact engines (:mod:`repro.learning.engine`) assume miners observe
expected payoffs; Theorem 1 then guarantees convergence to a pure
equilibrium. Real miners observe *sampled block wins*. This engine asks
whether the theorem's prediction survives that noise:

* at each activation a uniformly random miner (there is no exact
  stability oracle to schedule from — that is the point) estimates its
  payoff on every coin by running the integer block lottery for
  ``budget.rounds_at(t)`` rounds per coin, then moves to the estimated
  best coin if the *estimated* improvement is strict; state lives in
  the same incrementally maintained
  :class:`~repro.kernel.engine.KernelView` every exact dynamic uses
  (integer masses, O(1) per move);
* estimate comparisons are exact: ``wins_j · R[j] > wins_cur · R[cur]``
  in kernel-scaled integers (the round counts are equal), so noise
  enters only through the Binomial win counts, never through float
  arithmetic;
* optional ``inertia`` (probability of ignoring an improving estimate)
  and ``exploration`` (trembling-hand random move) model sluggish and
  restless miners;
* the run *settles* when ``patience`` consecutive activations produced
  no move — the only stopping rule available to an agent that cannot
  verify stability exactly. Whether the settled state actually is a
  pure equilibrium is recorded afterwards through the exact kernel
  check, which is what the risk layer's misconvergence metrics count.

:class:`NoisyBatchRunner` fans replications out over threads or
processes with the same pre-spawned-stream scheme as
:class:`repro.kernel.batch.BatchRunner`, so a fixed seed yields
bit-identical results in serial, threaded and multi-process execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

import numpy as np

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.kernel.batch import PooledRunner
from repro.kernel.engine import KernelView
from repro.obs.recorder import get_recorder
from repro.stochastic.estimator import SampleBudget, as_budget
from repro.stochastic.lottery import sample_win_count
from repro.util.rng import RngLike, make_rng


@dataclass(frozen=True)
class NoisyRunResult:
    """Picklable outcome of one noisy learning run."""

    run_index: int
    #: Final coin name per miner, in ``game.miners`` order.
    final_coins: Tuple[str, ...]
    #: Activations consumed (settled runs stop early).
    activations: int
    #: Coin switches actually applied.
    moves: int
    #: Whether ``patience`` quiet activations were reached in budget.
    settled: bool
    #: Exact kernel verdict on the final state (the misconvergence bit).
    reached_equilibrium: bool
    #: Total lottery rounds sampled across all estimates.
    rounds_sampled: int

    def final_configuration(self, game: Game) -> Configuration:
        """Materialize the final configuration against *game*."""
        return game.configuration(self.final_coins)


@dataclass
class NoisyLearningEngine:
    """A better-response learner that only sees sampled rewards.

    Parameters
    ----------
    budget:
        Lottery rounds per per-coin estimate at each activation — an
        ``int`` (fixed) or a :class:`~repro.stochastic.estimator`
        budget object (e.g. :class:`GeometricBudget`). Larger budgets
        mean sharper estimates; as the budget grows the dynamics
        converge to exact better response and Theorem 1 takes over.
    max_activations:
        Hard stop; runs that neither settle nor exhaust this budget do
        not exist (the loop always terminates).
    patience:
        Consecutive quiet activations before the run settles. ``None``
        (default) resolves to ``4·n_miners`` at run time, enough for
        every miner to be activated a few times in expectation.
    inertia:
        Probability of ignoring an improving estimate and staying put.
    exploration:
        Probability of a trembling-hand move to a uniformly random
        other coin, bypassing estimation entirely. Nonzero exploration
        keeps resetting the quiet counter, so settled runs become rare
        by design.
    """

    budget: Union[int, SampleBudget] = 64
    max_activations: int = 10_000
    patience: Optional[int] = None
    inertia: float = 0.0
    exploration: float = 0.0

    def __post_init__(self) -> None:
        as_budget(self.budget)  # validate eagerly
        if self.max_activations < 1:
            raise ValueError(
                f"max_activations must be ≥ 1, got {self.max_activations}"
            )
        if self.patience is not None and self.patience < 1:
            raise ValueError(f"patience must be ≥ 1, got {self.patience}")
        if not 0.0 <= self.inertia < 1.0:
            raise ValueError(f"inertia must be in [0, 1), got {self.inertia}")
        if not 0.0 <= self.exploration < 1.0:
            raise ValueError(f"exploration must be in [0, 1), got {self.exploration}")

    def run(
        self,
        game: Game,
        initial: Configuration,
        *,
        seed: RngLike = None,
        run_index: int = 0,
    ) -> NoisyRunResult:
        """Run noisy learning from *initial* until settled or out of budget."""
        game.validate_configuration(initial)
        rng = make_rng(seed)
        # The same incremental integer state every other dynamic runs
        # on: a KernelView maintains assign/mass in O(1) per move.
        view = KernelView(game, initial)
        kernel = view.kernel
        budget = as_budget(self.budget)
        patience = self.patience if self.patience is not None else 4 * kernel.n_miners

        assign = view.assign
        mass = view.mass
        powers = kernel.powers
        rewards = kernel.rewards
        n, k = kernel.n_miners, kernel.n_coins

        quiet = 0
        moves = 0
        rounds_sampled = 0
        activations = 0
        settled = False
        for t in range(self.max_activations):
            if quiet >= patience:
                settled = True
                break
            activations = t + 1
            i = int(rng.integers(0, n))
            cur = assign[i]
            power = powers[i]

            if self.exploration > 0.0 and k > 1 and rng.random() < self.exploration:
                target = int(rng.integers(0, k - 1))
                if target >= cur:
                    target += 1
                view.apply_index(i, target)
                moves += 1
                quiet = 0
                continue

            rounds = budget.rounds_at(t)
            wins_cur = sample_win_count(rng, power, mass[cur], rounds)
            rounds_sampled += rounds
            best = cur
            best_score = wins_cur * rewards[cur]
            for j in range(k):
                if j == cur:
                    continue
                wins_j = sample_win_count(rng, power, mass[j] + power, rounds)
                rounds_sampled += rounds
                score = wins_j * rewards[j]
                if score > best_score:
                    best = j
                    best_score = score
            if best == cur:
                quiet += 1
                continue
            if self.inertia > 0.0 and rng.random() < self.inertia:
                quiet += 1
                continue
            view.apply_index(i, best)
            moves += 1
            quiet = 0
        else:
            # Budget exhausted exactly as patience ran out still counts.
            settled = quiet >= patience

        coin_names = kernel.coin_names
        result = NoisyRunResult(
            run_index=run_index,
            final_coins=tuple(coin_names[j] for j in assign),
            activations=activations,
            moves=moves,
            settled=settled,
            reached_equilibrium=view.is_stable(),
            rounds_sampled=rounds_sampled,
        )
        recorder = get_recorder()
        if recorder.enabled:
            # Totals once per run, same contract as the trajectory engine.
            recorder.count("noisy.runs")
            recorder.count("noisy.activations", activations)
            recorder.count("noisy.moves", moves)
            recorder.count("noisy.rounds_sampled", rounds_sampled)
            if settled:
                recorder.count("noisy.settled")
        return result


def run_noisy_population(
    game: Game,
    engine: NoisyLearningEngine,
    seed_pairs: Sequence[Tuple[Any, Any]],
) -> List[NoisyRunResult]:
    """All replications in lockstep, with one batched final verdict.

    Replications are independent streams, so advancing them
    activation-major instead of replication-major changes no draw: each
    replication's generator is consumed in exactly the scalar order
    (activated-miner pick, optional exploration test, per-coin win
    counts, optional inertia test). State lives in shared
    ``(replications × miners)`` / ``(replications × coins)`` int64
    arrays, settled replications retire from the loop, and the final
    ``reached_equilibrium`` verdicts come from one batched
    :func:`~repro.kernel.tensor.stable_mask` call instead of a per-run
    scalar stability scan. Bit-identical to :meth:`NoisyLearningEngine.run`
    over the same streams.
    """
    from repro.core.factories import random_configuration
    from repro.kernel.core import KernelGame
    from repro.kernel.tensor import stable_mask
    from repro.stochastic.lottery import sample_win_count

    kernel = KernelGame(game)
    reps = len(seed_pairs)
    n, k = kernel.n_miners, kernel.n_coins
    budget = as_budget(engine.budget)
    patience = engine.patience if engine.patience is not None else 4 * n

    rngs: List[np.random.Generator] = []
    assign = np.empty((reps, n), dtype=np.int64)
    for r, (start_seed, run_seed) in enumerate(seed_pairs):
        start = random_configuration(game, seed=np.random.default_rng(start_seed))
        assign[r] = kernel.assignment_of(start)
        rngs.append(np.random.default_rng(run_seed))
    powers = np.asarray(kernel.powers, dtype=np.int64)
    mass = np.zeros((reps, k), dtype=np.int64)
    np.add.at(mass, (np.arange(reps)[:, None], assign), powers[None, :])

    quiet = np.zeros(reps, dtype=np.int64)
    moves = np.zeros(reps, dtype=np.int64)
    rounds_sampled = np.zeros(reps, dtype=np.int64)
    activations = np.zeros(reps, dtype=np.int64)
    settled = np.zeros(reps, dtype=bool)
    live = list(range(reps))
    for t in range(engine.max_activations):
        if not live:
            break
        rounds = budget.rounds_at(t)
        still = []
        for r in live:
            if quiet[r] >= patience:
                settled[r] = True
                continue
            still.append(r)
            rng = rngs[r]
            activations[r] = t + 1
            i = int(rng.integers(0, n))
            cur = int(assign[r, i])
            power = int(powers[i])

            if engine.exploration > 0.0 and k > 1 and rng.random() < engine.exploration:
                target = int(rng.integers(0, k - 1))
                if target >= cur:
                    target += 1
                mass[r, cur] -= power
                mass[r, target] += power
                assign[r, i] = target
                moves[r] += 1
                quiet[r] = 0
                continue

            wins_cur = sample_win_count(rng, power, int(mass[r, cur]), rounds)
            rounds_sampled[r] += rounds
            best = cur
            best_score = wins_cur * kernel.rewards[cur]
            for j in range(k):
                if j == cur:
                    continue
                wins_j = sample_win_count(rng, power, int(mass[r, j]) + power, rounds)
                rounds_sampled[r] += rounds
                score = wins_j * kernel.rewards[j]
                if score > best_score:
                    best = j
                    best_score = score
            if best == cur:
                quiet[r] += 1
                continue
            if engine.inertia > 0.0 and rng.random() < engine.inertia:
                quiet[r] += 1
                continue
            mass[r, cur] -= power
            mass[r, best] += power
            assign[r, i] = best
            moves[r] += 1
            quiet[r] = 0
        live = still
    else:
        # Budget exhausted exactly as patience ran out still counts.
        for r in live:
            settled[r] = quiet[r] >= patience

    stable = stable_mask(kernel, assign)
    coin_names = kernel.coin_names
    recorder = get_recorder()
    if recorder.enabled:
        # Same totals the scalar noisy loop emits per run, so counter
        # sums agree across executors.
        recorder.count("noisy.runs", reps)
        recorder.count("noisy.activations", int(activations.sum()))
        recorder.count("noisy.moves", int(moves.sum()))
        recorder.count("noisy.rounds_sampled", int(rounds_sampled.sum()))
        recorder.count("noisy.settled", int(np.count_nonzero(settled)))
    return [
        NoisyRunResult(
            run_index=r,
            final_coins=tuple(coin_names[j] for j in assign[r]),
            activations=int(activations[r]),
            moves=int(moves[r]),
            settled=bool(settled[r]),
            reached_equilibrium=bool(stable[r]),
            rounds_sampled=int(rounds_sampled[r]),
        )
        for r in range(reps)
    ]


def _run_noisy_chunk(payload: Tuple[Any, ...]) -> List[NoisyRunResult]:
    """Worker: run a contiguous chunk of noisy replications for one game.

    Module-level so process pools can pickle it; mirrors
    :func:`repro.kernel.batch._run_chunk`.
    """
    from repro.core.factories import random_configuration

    game, engine, first_index, seed_pairs = payload
    results: List[NoisyRunResult] = []
    for offset, (start_seed, run_seed) in enumerate(seed_pairs):
        start = random_configuration(game, seed=np.random.default_rng(start_seed))
        results.append(
            engine.run(
                game,
                start,
                seed=np.random.default_rng(run_seed),
                run_index=first_index + offset,
            )
        )
    return results


@dataclass
class NoisyBatchRunner(PooledRunner):
    """Run many independent noisy replications, optionally in parallel.

    Seeding matches :class:`repro.kernel.batch.BatchRunner`: stream
    ``2i`` draws replication *i*'s start, stream ``2i+1`` drives its
    engine, all spawned up front from one ``SeedSequence(seed)`` — so
    the result list is identical whether the batch runs serially, on
    threads, or across processes. Pool management and the
    degrade-quietly fallback are the shared
    :class:`~repro.kernel.batch.PooledRunner` plumbing; noisy
    replications are heavier than exact trajectories, so ``auto``
    reaches for processes at a lower replication count.
    """

    executor: str = "auto"
    max_workers: Optional[int] = None
    auto_process_threshold = 16

    pool_modes = ("auto", "serial", "thread", "process", "vectorized")

    def __post_init__(self) -> None:
        self._init_pool()
        self._validate_pool_args()

    def run(
        self,
        game: Game,
        *,
        replications: int,
        engine: Optional[NoisyLearningEngine] = None,
        seed: Optional[Any] = None,
    ) -> List[NoisyRunResult]:
        """*replications* noisy runs from random starts, in index order.

        ``seed`` may be an int or an existing ``SeedSequence`` (as
        :func:`repro.run_many` hands out per-cell).
        ``executor="vectorized"`` runs the replications through the
        lockstep population stepper (:func:`run_noisy_population`) —
        noisy draws are RNG-bound so the win is modest, but the final
        stability verdicts batch through the tensor kernel and the
        results are bit-identical.
        """
        if replications < 1:
            raise ValueError(f"replications must be ≥ 1, got {replications}")
        if engine is None:
            engine = NoisyLearningEngine()
        root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        streams = root.spawn(2 * replications)
        seed_pairs = [(streams[2 * i], streams[2 * i + 1]) for i in range(replications)]

        if self.executor == "vectorized":
            return run_noisy_population(game, engine, seed_pairs)

        def make_chunks(chunk_size: int):
            return [
                (game, engine, start, seed_pairs[start : start + chunk_size])
                for start in range(0, replications, chunk_size)
            ]

        return self._execute_chunked(
            _run_noisy_chunk, (game, engine, 0, seed_pairs), make_chunks, replications
        )


def run_noisy_batch(
    game: Game,
    *,
    replications: int,
    engine: Optional[NoisyLearningEngine] = None,
    seed: Optional[int] = None,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> List[NoisyRunResult]:
    """Functional one-shot form of :meth:`NoisyBatchRunner.run`."""
    with NoisyBatchRunner(executor=executor, max_workers=max_workers) as runner:
        return runner.run(game, replications=replications, engine=engine, seed=seed)
