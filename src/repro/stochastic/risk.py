"""Risk analysis of realized mining rewards and noisy learning.

Three questions the expected-payoff model cannot answer:

1. **Reward risk** — at a given configuration, how far do *realized*
   rewards spread around the model payoff over a finite horizon? The
   per-round win of miner ``p`` on coin ``c`` is Bernoulli(``m_p/M_c``)
   paying ``F(c)``, so one round has exact variance
   ``F(c)² · q(1−q)`` with ``q = m_p/M_c``; over ``H`` independent
   rounds the variance is ``H`` times that. :func:`reward_risk`
   computes this closed form exactly and checks it against sampled
   replications, alongside a ruin-style tail probability (realized
   total below a fraction of the expectation).
2. **Misconvergence** — does sample-based better response still reach
   a pure equilibrium, and how does the failure rate fall with the
   per-decision sample budget? :func:`misconvergence_profile` sweeps
   budgets through :class:`~repro.stochastic.noisy_engine.NoisyBatchRunner`
   replications and cross-checks every landing against the exact
   equilibrium set from
   :class:`~repro.kernel.space.ConfigSpace` enumeration.
3. **Time to equilibrium** — the distribution (not just the mean) of
   activations noisy runs need before settling.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.configuration import Configuration
from repro.core.equilibrium import enumerate_equilibria
from repro.core.game import Game
from repro.core.miner import Miner
from repro.kernel.core import KernelGame
from repro.stochastic.estimator import SampleBudget
from repro.stochastic.lottery import realized_rewards, sample_block_wins
from repro.stochastic.noisy_engine import (
    NoisyBatchRunner,
    NoisyLearningEngine,
    NoisyRunResult,
)


# ----------------------------------------------------------------------
# Reward risk at a fixed configuration
# ----------------------------------------------------------------------


def per_round_variance(game: Game, config: Configuration) -> Dict[Miner, Fraction]:
    """Exact variance of each miner's one-round realized reward.

    ``Var = F(c)² · q(1−q)`` with ``q = m_p / M_c(s)`` — closed-form,
    all Fractions, no sampling.
    """
    variances: Dict[Miner, Fraction] = {}
    for miner in game.miners:
        coin = config.coin_of(miner)
        q = miner.power / game.coin_power(coin, config)
        reward = game.rewards[coin]
        variances[miner] = reward * reward * q * (1 - q)
    return variances


@dataclass(frozen=True)
class MinerRisk:
    """Risk summary of one miner's realized reward over a horizon."""

    name: str
    #: ``H · u_p(s)`` — the model's expected total.
    expected_total: Fraction
    #: Exact empirical mean of sampled totals (Fraction, replication avg).
    realized_mean: Fraction
    #: √(H · per-round variance), the closed-form standard deviation.
    exact_std: float
    #: Sample standard deviation of the replication totals.
    realized_std: float
    #: Empirical P(total < ruin_fraction · expected_total).
    ruin_probability: float

    @property
    def relative_bias(self) -> float:
        """|realized mean − expectation| / expectation (0 if expectation 0)."""
        if self.expected_total == 0:
            return 0.0
        return abs(float(self.realized_mean - self.expected_total)) / float(
            self.expected_total
        )

    @property
    def coefficient_of_variation(self) -> float:
        """Exact σ over the expected total (the scale-free risk number)."""
        if self.expected_total == 0:
            return 0.0
        return self.exact_std / float(self.expected_total)


@dataclass(frozen=True)
class RiskProfile:
    """Per-miner reward risk at one configuration."""

    horizon_rounds: int
    replications: int
    ruin_fraction: float
    miners: Tuple[MinerRisk, ...]

    def max_relative_bias(self) -> float:
        return max(entry.relative_bias for entry in self.miners)

    def by_name(self, name: str) -> MinerRisk:
        for entry in self.miners:
            if entry.name == name:
                return entry
        raise KeyError(f"no miner named {name!r} in this profile")


def reward_risk(
    game: Game,
    config: Configuration,
    *,
    horizon_rounds: int,
    replications: int = 30,
    ruin_fraction: float = 0.5,
    seed: Optional[int] = None,
) -> RiskProfile:
    """Measure realized-reward risk at *config* over a finite horizon.

    Each replication runs an independent *horizon_rounds*-round block
    lottery (own pre-spawned stream); totals are exact Fractions. The
    exact closed-form standard deviation rides along so callers can
    verify the sampler against the model — the acceptance tests do.
    """
    if horizon_rounds < 1:
        raise ValueError(f"horizon_rounds must be ≥ 1, got {horizon_rounds}")
    if replications < 2:
        raise ValueError(f"replications must be ≥ 2, got {replications}")
    if not 0.0 < ruin_fraction < 1.0:
        raise ValueError(f"ruin_fraction must be in (0, 1), got {ruin_fraction}")
    kernel = KernelGame(game)
    streams = np.random.SeedSequence(seed).spawn(replications)
    totals: List[Dict[Miner, Fraction]] = []
    for stream in streams:
        sample = sample_block_wins(
            kernel, config, rounds=horizon_rounds, seed=np.random.default_rng(stream)
        )
        totals.append(realized_rewards(game, config, sample))
    variances = per_round_variance(game, config)
    entries: List[MinerRisk] = []
    for miner in game.miners:
        expected = game.payoff(miner, config) * horizon_rounds
        draws = [total[miner] for total in totals]
        mean = sum(draws, Fraction(0)) / replications
        floats = np.array([float(value) for value in draws])
        ruin_threshold = ruin_fraction * float(expected)
        entries.append(
            MinerRisk(
                name=miner.name,
                expected_total=expected,
                realized_mean=mean,
                exact_std=math.sqrt(horizon_rounds * float(variances[miner])),
                realized_std=float(floats.std(ddof=1)),
                ruin_probability=float(np.mean(floats < ruin_threshold)),
            )
        )
    return RiskProfile(
        horizon_rounds=horizon_rounds,
        replications=replications,
        ruin_fraction=ruin_fraction,
        miners=tuple(entries),
    )


# ----------------------------------------------------------------------
# Misconvergence of noisy learning vs. the exact equilibrium set
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BudgetOutcome:
    """Noisy-learning statistics at one per-decision sample budget."""

    budget_label: str
    replications: int
    #: Fraction of replications whose final state is NOT an exact
    #: pure equilibrium (the headline number).
    misconvergence_rate: float
    #: Fraction of replications that settled within the activation cap.
    settled_rate: float
    mean_activations: float
    p95_activations: float
    mean_moves: float
    #: Landing counts over *exact* equilibria actually reached.
    landing_counts: Dict[Configuration, int]

    @property
    def distinct_equilibria_reached(self) -> int:
        return len(self.landing_counts)


@dataclass(frozen=True)
class MisconvergenceReport:
    """Budget sweep of noisy learning, cross-checked against enumeration."""

    #: The game's full exact equilibrium set (ConfigSpace enumeration).
    equilibria: Tuple[Configuration, ...]
    outcomes: Tuple[BudgetOutcome, ...]

    def rates(self) -> List[float]:
        return [outcome.misconvergence_rate for outcome in self.outcomes]


def misconvergence_profile(
    game: Game,
    *,
    budgets: Sequence[Union[int, SampleBudget]],
    replications: int = 40,
    max_activations: int = 5_000,
    patience: Optional[int] = None,
    inertia: float = 0.0,
    exploration: float = 0.0,
    seed: Optional[int] = None,
    executor: str = "auto",
    max_workers: Optional[int] = None,
    runner: Optional[NoisyBatchRunner] = None,
) -> MisconvergenceReport:
    """Sweep per-decision sample budgets and measure misconvergence.

    Every budget gets an independent child seed (adding budgets never
    changes another budget's replications); the budget cells execute
    through :func:`repro.run_many` with *executor* (identical results
    in every mode). Final states are judged against the exact
    equilibrium set: the per-run kernel verdict and set membership must
    agree — a mismatch raises, because it would mean the sampler and
    the enumeration engine disagree about the same game.

    .. deprecated:: 1.2
        ``runner=`` — pass ``executor=`` / ``max_workers=`` instead.
    """
    if not budgets:
        raise ValueError("need at least one sample budget")
    equilibria = tuple(enumerate_equilibria(game))
    equilibrium_set = frozenset(equilibria)
    children = np.random.SeedSequence(seed).spawn(len(budgets))
    engines = [
        NoisyLearningEngine(
            budget=budget,
            max_activations=max_activations,
            patience=patience,
            inertia=inertia,
            exploration=exploration,
        )
        for budget in budgets
    ]
    if runner is not None:
        warnings.warn(
            "runner= is deprecated; pass executor= (and max_workers=) instead — "
            "execution now routes through repro.run_many",
            DeprecationWarning,
            stacklevel=2,
        )
        per_budget = [
            runner.run(
                game,
                replications=replications,
                engine=engine,
                seed=int(child.generate_state(1)[0]),
            )
            for engine, child in zip(engines, children)
        ]
    else:
        from repro.run import RunSpec, run_many

        per_budget = run_many(
            [
                RunSpec(
                    game=game,
                    runs=replications,
                    kind="noisy",
                    engine=engine,
                    seed=int(child.generate_state(1)[0]),
                    label=_budget_label(budget),
                )
                for budget, engine, child in zip(budgets, engines, children)
            ],
            executor=executor,
            max_workers=max_workers,
        )
    outcomes = [
        _summarize_budget(game, _budget_label(budget), results, equilibrium_set)
        for budget, results in zip(budgets, per_budget)
    ]
    return MisconvergenceReport(equilibria=equilibria, outcomes=tuple(outcomes))


def _budget_label(budget: Union[int, SampleBudget]) -> str:
    if isinstance(budget, int):
        return str(budget)
    return repr(budget)


def _summarize_budget(
    game: Game,
    label: str,
    results: Sequence[NoisyRunResult],
    equilibrium_set: frozenset,
) -> BudgetOutcome:
    landing_counts: Dict[Configuration, int] = {}
    missed = 0
    activations = np.array([result.activations for result in results], dtype=float)
    for result in results:
        final = result.final_configuration(game)
        in_set = final in equilibrium_set
        if in_set != result.reached_equilibrium:
            raise AssertionError(
                "kernel stability verdict disagrees with ConfigSpace enumeration "
                f"for {final!r}; sampler/enumeration bug"
            )
        if in_set:
            landing_counts[final] = landing_counts.get(final, 0) + 1
        else:
            missed += 1
    return BudgetOutcome(
        budget_label=label,
        replications=len(results),
        misconvergence_rate=missed / len(results),
        settled_rate=sum(result.settled for result in results) / len(results),
        mean_activations=float(activations.mean()),
        p95_activations=float(np.percentile(activations, 95)),
        mean_moves=float(np.mean([result.moves for result in results])),
        landing_counts=landing_counts,
    )


def time_to_equilibrium(
    results: Sequence[NoisyRunResult],
) -> Dict[str, float]:
    """Distribution summary of activations for runs that found an equilibrium.

    Returns mean/median/p95/max over the converged runs plus the
    converged fraction; all-NaN summaries mean no run converged.
    """
    converged = [
        result.activations for result in results if result.reached_equilibrium
    ]
    fraction = len(converged) / len(results) if results else 0.0
    if not converged:
        nan = float("nan")
        return {
            "converged_fraction": fraction,
            "mean": nan,
            "median": nan,
            "p95": nan,
            "max": nan,
        }
    array = np.array(converged, dtype=float)
    return {
        "converged_fraction": fraction,
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "p95": float(np.percentile(array, 95)),
        "max": float(array.max()),
    }


def ruin_bound(
    game: Game,
    config: Configuration,
    miner: Miner,
    *,
    horizon_rounds: int,
    ruin_fraction: float = 0.5,
) -> float:
    """Chebyshev upper bound on P(total < ruin_fraction · expectation).

    A closed-form, sampling-free companion to the empirical ruin
    probability: ``Var / (H · (1−f)² · u²)`` clipped to [0, 1].
    """
    if horizon_rounds < 1:
        raise ValueError(f"horizon_rounds must be ≥ 1, got {horizon_rounds}")
    if not 0.0 < ruin_fraction < 1.0:
        raise ValueError(f"ruin_fraction must be in (0, 1), got {ruin_fraction}")
    payoff = game.payoff(miner, config)
    if payoff == 0:
        return 1.0
    variance = per_round_variance(game, config)[miner]
    gap = (1.0 - ruin_fraction) * float(payoff)
    bound = float(variance) / (horizon_rounds * gap * gap)
    return min(1.0, bound)
