"""Exact-rational block lottery over the game layer.

The paper's payoff ``u_p(s) = m_p · F(s.p) / M_{s.p}(s)`` is the
*expectation* of a physical process: each coin repeatedly races a block,
and the winner — drawn with probability proportional to power — takes
the whole block reward. This module realizes that process at the game
layer, one *round* at a time (every occupied coin finds exactly one
block per round), with the repo's determinism idiom:

* winners are decided by **integer cumulative thresholds** over a
  shared RNG draw — one uniform integer ``r ∈ [0, M_c)`` per block,
  compared against the cumulative (kernel-scaled, exact) integer powers
  of the miners on the coin. No float enters the decision, so a win is
  exactly the Bernoulli event the model's expectation integrates over;
* all draws come from a caller-provided ``numpy`` generator, so runs
  with the same stream are bit-identical regardless of where they
  execute (serial / thread / process — the batch runners pre-spawn one
  stream per run).

Realized rewards stay exact: a miner that wins ``w`` of ``T`` rounds on
coin ``c`` earned ``w · F(c)`` (a :class:`~fractions.Fraction`), whose
per-round average ``w/T · F(c)`` is an unbiased estimator of the model
payoff. The estimator/risk layers build on these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.kernel.core import KernelGame
from repro.obs.recorder import get_recorder
from repro.util.rng import RngLike, make_rng

#: Largest threshold bound the vectorized int64 path may draw against.
#: Above it (games with astronomically fine rational grids) the sampler
#: falls back to exact arbitrary-precision rejection sampling.
_INT64_SAFE = 2**62


def draw_below(rng: np.random.Generator, bound: int) -> int:
    """One exact uniform integer in ``[0, bound)`` for any ``bound ≥ 1``.

    Bounds within the int64 range use a single generator call. Larger
    bounds are sampled by rejection on ``bit_length(bound)``-bit chunks
    (32 bits per draw), which is exact for arbitrary-precision masses.
    """
    if bound < 1:
        raise ValueError(f"bound must be ≥ 1, got {bound}")
    if bound <= _INT64_SAFE:
        return int(rng.integers(0, bound))
    bits = bound.bit_length()
    while True:
        value = 0
        remaining = bits
        while remaining > 0:
            take = min(remaining, 32)
            value = (value << take) | int(rng.integers(0, 1 << take))
            remaining -= take
        if value < bound:
            return value


def sample_win_count(
    rng: np.random.Generator, weight: int, mass: int, rounds: int
) -> int:
    """How many of *rounds* blocks a ``weight``-power miner wins.

    The coin carries total integer ``mass`` (the miner's own weight
    included). Each block is one threshold draw ``r ∈ [0, mass)``; the
    miner wins iff ``r < weight`` — exactly Bernoulli(weight/mass) —
    so the count is Binomial(rounds, weight/mass) with no float in the
    decision. This is the marginal the noisy engine estimates payoffs
    from.
    """
    if rounds < 0:
        raise ValueError(f"rounds must be non-negative, got {rounds}")
    if not 0 < weight <= mass:
        raise ValueError(f"need 0 < weight ≤ mass, got weight={weight}, mass={mass}")
    if rounds == 0:
        return 0
    recorder = get_recorder()
    if recorder.enabled:
        recorder.count("stochastic.budget_rounds", rounds)
    if mass <= _INT64_SAFE:
        draws = rng.integers(0, mass, size=rounds)
        return int(np.count_nonzero(draws < weight))
    return sum(1 for _ in range(rounds) if draw_below(rng, mass) < weight)


@dataclass(frozen=True)
class LotterySample:
    """Realized block wins of one lottery run (picklable).

    ``wins[i]`` is how many of the ``rounds`` rounds miner *i* (in
    ``game.miners`` order) won on its coin; per round every occupied
    coin finds exactly one block.
    """

    wins: Tuple[int, ...]
    rounds: int

    def win_frequency(self, index: int) -> Fraction:
        """Exact empirical win rate of miner *index*."""
        if self.rounds == 0:
            return Fraction(0)
        return Fraction(self.wins[index], self.rounds)


def sample_wins_state(
    kernel: KernelGame,
    assign: Sequence[int],
    mass: Sequence[int],
    rounds: int,
    rng: np.random.Generator,
) -> List[int]:
    """Index-level sampler: per-miner win counts for an assignment.

    Coins race in coin-index order; within a coin the cumulative
    thresholds follow miner order, so the draw sequence — and therefore
    the whole sample — is a pure function of the RNG stream.
    """
    if rounds < 0:
        raise ValueError(f"rounds must be non-negative, got {rounds}")
    wins = [0] * kernel.n_miners
    if rounds == 0:
        return wins
    powers = kernel.powers
    occupied = 0
    for j in range(kernel.n_coins):
        total = mass[j]
        if total == 0:
            continue
        occupied += 1
        members = [i for i in range(kernel.n_miners) if assign[i] == j]
        if len(members) == 1:
            wins[members[0]] += rounds
            continue
        if total <= _INT64_SAFE:
            cumulative = np.cumsum([powers[i] for i in members], dtype=np.int64)
            draws = rng.integers(0, total, size=rounds)
            winners = np.searchsorted(cumulative, draws, side="right")
            for position, count in zip(*np.unique(winners, return_counts=True)):
                wins[members[int(position)]] += int(count)
        else:
            cumulative_py: List[int] = []
            running = 0
            for i in members:
                running += powers[i]
                cumulative_py.append(running)
            for _ in range(rounds):
                r = draw_below(rng, total)
                for position, threshold in enumerate(cumulative_py):
                    if r < threshold:
                        wins[members[position]] += 1
                        break
    recorder = get_recorder()
    if recorder.enabled:
        # Every occupied coin finds one block per round.
        recorder.count("stochastic.races", rounds * occupied)
        recorder.count("stochastic.lottery_rounds", rounds)
    return wins


def sample_block_wins(
    game_or_kernel: Union[Game, KernelGame],
    config: Configuration,
    *,
    rounds: int,
    seed: RngLike = None,
) -> LotterySample:
    """Sample *rounds* rounds of block lotteries under *config*."""
    kernel = (
        game_or_kernel
        if isinstance(game_or_kernel, KernelGame)
        else KernelGame(game_or_kernel)
    )
    assign = kernel.assignment_of(config)
    mass = kernel.mass_of(assign)
    wins = sample_wins_state(kernel, assign, mass, rounds, make_rng(seed))
    return LotterySample(wins=tuple(wins), rounds=rounds)


def realized_rewards(
    game: Game, config: Configuration, sample: LotterySample
) -> Dict[Miner, Fraction]:
    """Exact total reward per miner implied by a lottery sample.

    A miner that won ``w`` rounds on coin ``c`` earned ``w · F(c)``;
    dividing by ``sample.rounds`` gives the per-round average whose
    expectation is the model payoff.
    """
    if len(sample.wins) != len(game.miners):
        raise ValueError(
            f"sample covers {len(sample.wins)} miners but the game has "
            f"{len(game.miners)}"
        )
    return {
        miner: sample.wins[i] * game.rewards[config.coin_of(miner)]
        for i, miner in enumerate(game.miners)
    }
