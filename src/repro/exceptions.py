"""Exception hierarchy for the Game of Coins library.

Every error raised by the library derives from :class:`GameOfCoinsError`
so callers can catch library failures with a single ``except`` clause
while still distinguishing finer-grained conditions.
"""

from __future__ import annotations


class GameOfCoinsError(Exception):
    """Base class for all errors raised by this library."""


class InvalidModelError(GameOfCoinsError):
    """A model object (miner, coin, reward function, game) is malformed.

    Examples: non-positive mining power, empty coin set, a reward
    function that does not cover every coin.
    """


class InvalidConfigurationError(GameOfCoinsError):
    """A configuration is inconsistent with its game.

    Examples: a configuration that assigns a miner to a coin outside the
    game's coin set, or that misses a miner entirely.
    """


class NotAnEquilibriumError(GameOfCoinsError):
    """An operation required a stable configuration but got an unstable one.

    The reward design mechanism (Algorithm 2 of the paper) is defined
    only between *stable* configurations; passing an unstable endpoint
    raises this error instead of silently producing garbage.
    """


class ConvergenceError(GameOfCoinsError):
    """Better-response learning failed to converge within the step budget.

    Theorem 1 guarantees finite convergence, so hitting this error on a
    well-formed game means the budget was too small (or a custom policy
    violated the better-response contract).
    """


class AssumptionViolatedError(GameOfCoinsError):
    """A game does not satisfy an assumption a result depends on.

    Section 4 of the paper requires Assumption 1 (never alone) and
    Assumption 2 (generic game); helpers that rely on them raise this
    error when the precondition fails.
    """


class RewardDesignError(GameOfCoinsError):
    """The dynamic reward design mechanism was used outside its contract.

    Examples: target configuration not stable under the base rewards,
    duplicate mining powers where Section 5 requires strict ordering.
    """


class SimulationError(GameOfCoinsError):
    """A market or chain simulation was configured inconsistently."""
