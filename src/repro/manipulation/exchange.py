"""Exchange-rate manipulation: the second reward lever (Section 1).

Instead of stuffing fees, a manipulator can push a coin's fiat price
(the paper cites the Bitfinex/Tether literature). Price impact costs
are convex — moving a market by x% costs roughly quadratically in x —
so the same reward boost is cheaper via fees for small boosts and via
price for sustained ones. E8 compares the two levers.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro._numeric import Number, to_fraction
from repro.exceptions import SimulationError


@dataclass(frozen=True)
class PriceImpactModel:
    """Square-root/quadratic market-impact cost model.

    Pushing the price by a factor ``f ≥ 1`` for one round costs
    ``depth · (f − 1)²`` — the standard convex impact approximation
    with ``depth`` the market's resilience (fiat units).
    """

    depth: Fraction

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise SimulationError("market depth must be positive")

    def cost_of_factor(self, factor: Number) -> Fraction:
        """Cost of holding a price multiple *factor* for one round."""
        f = to_fraction(factor, name="factor")
        if f < 1:
            raise SimulationError(
                "price manipulation can only push rates up in this model "
                f"(factor ≥ 1), got {factor!r}"
            )
        return self.depth * (f - 1) ** 2


def boost_factor_needed(base_reward: Number, designed_reward: Number) -> Fraction:
    """The price multiple that realizes a designed reward via the rate.

    A coin's weight is proportional to its fiat rate, so the multiple
    is simply ``designed / base`` (floored at 1 — the design never needs
    to *lower* a price in feasible mode).
    """
    base = to_fraction(base_reward, name="base_reward")
    designed = to_fraction(designed_reward, name="designed_reward")
    if base <= 0:
        raise SimulationError("base reward must be positive")
    return max(designed / base, Fraction(1))


def exchange_cost_of_phase(
    base_reward: Number,
    designed_reward: Number,
    rounds: int,
    model: PriceImpactModel,
) -> Fraction:
    """Total price-impact cost of holding one designed reward for *rounds*."""
    if rounds < 0:
        raise SimulationError("rounds must be non-negative")
    factor = boost_factor_needed(base_reward, designed_reward)
    return model.cost_of_factor(factor) * rounds
