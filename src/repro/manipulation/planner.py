"""The manipulation planner: which equilibrium is worth buying?

Proposition 2 guarantees *some* miner has *some* better equilibrium;
the planner answers the operational question for a *specific* miner:
among all reachable equilibria, which target maximizes net value —
payoff gain per round against the mechanism's one-off cost — and is it
better than doing nothing (the basin-weighted status quo)?

The planner prices each candidate by actually executing the mechanism
in simulation (costs depend on the path, not just the endpoints), so
its output is an executable plan, not an estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence

from repro.analysis.basins import BasinProfile, expected_payoff_from_luck
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.design.mechanism import DynamicRewardDesign
from repro.manipulation.whale import manipulation_roi
from repro.util.rng import RngLike


@dataclass(frozen=True)
class ManipulationPlan:
    """One priced manipulation option for a beneficiary."""

    target: Configuration
    gain_per_round: Fraction
    cost: Fraction
    break_even_rounds: Optional[float]
    mechanism_steps: int

    def net_value_at(self, horizon_rounds: int) -> Fraction:
        """Gain minus cost over a payoff horizon."""
        return self.gain_per_round * horizon_rounds - self.cost


@dataclass
class PlannerReport:
    """All evaluated options, best first, plus the do-nothing baseline."""

    beneficiary: str
    current_payoff: Fraction
    luck_baseline: Optional[Fraction]
    plans: List[ManipulationPlan]

    @property
    def best(self) -> Optional[ManipulationPlan]:
        return self.plans[0] if self.plans else None

    def worth_buying(self, horizon_rounds: int) -> bool:
        """Is the best plan strictly better than staying put?"""
        if self.best is None:
            return False
        return self.best.net_value_at(horizon_rounds) > 0


def plan_manipulation(
    game: Game,
    beneficiary: Miner,
    current: Configuration,
    candidates: Sequence[Configuration],
    *,
    basin: Optional[BasinProfile] = None,
    seed: RngLike = None,
) -> PlannerReport:
    """Price every candidate equilibrium for *beneficiary*.

    Only candidates where the beneficiary strictly gains are executed
    and priced; they are returned sorted by break-even horizon (fastest
    payback first). ``basin`` adds the luck baseline to the report.
    """
    current_payoff = game.payoff(beneficiary, current)
    plans: List[ManipulationPlan] = []
    for candidate in candidates:
        if candidate == current:
            continue
        gain = game.payoff(beneficiary, candidate) - current_payoff
        if gain <= 0:
            continue
        mechanism = DynamicRewardDesign()
        result = mechanism.run(game, current, candidate, seed=seed)
        roi = manipulation_roi(game, beneficiary, current, candidate, result.ledger)
        plans.append(
            ManipulationPlan(
                target=candidate,
                gain_per_round=gain,
                cost=roi.cost,
                break_even_rounds=roi.break_even_rounds,
                mechanism_steps=result.total_steps,
            )
        )
    plans.sort(
        key=lambda plan: (
            plan.break_even_rounds if plan.break_even_rounds is not None else float("inf")
        )
    )
    luck = (
        expected_payoff_from_luck(game, beneficiary, basin) if basin is not None else None
    )
    return PlannerReport(
        beneficiary=beneficiary.name,
        current_payoff=current_payoff,
        luck_baseline=luck,
        plans=plans,
    )
