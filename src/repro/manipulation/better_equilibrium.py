"""Proposition 2 machinery: finding the better equilibrium (Section 4).

Under Assumptions 1 and 2, for *every* stable configuration there is a
miner and another stable configuration where that miner earns strictly
more. This module finds such witnesses:

* :func:`find_better_equilibrium_exhaustive` — scan all equilibria
  (small games; exact).
* :func:`find_better_equilibrium_sampled` — sample equilibria via
  learning from random starts (any scale; sound but incomplete).
* :func:`improvement_opportunities` — the full list of (miner, target
  equilibrium, gain) pairs, the raw material for deciding *which*
  manipulation to buy with the Section 5 mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence

from repro.core.configuration import Configuration
from repro.core.equilibrium import iter_equilibria
from repro.core.factories import random_configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.learning.engine import LearningEngine
from repro.util.rng import RngLike, spawn_rngs


@dataclass(frozen=True)
class Improvement:
    """A Proposition 2 witness: miner *miner* prefers *target* to the start."""

    miner: Miner
    target: Configuration
    payoff_before: Fraction
    payoff_after: Fraction

    @property
    def gain(self) -> Fraction:
        return self.payoff_after - self.payoff_before

    @property
    def gain_ratio(self) -> float:
        return float(self.payoff_after / self.payoff_before)


def find_better_equilibrium_exhaustive(
    game: Game, current: Configuration
) -> Optional[Improvement]:
    """The largest-gain Proposition 2 witness, by exhaustive enumeration.

    Returns ``None`` only when no miner improves in any other
    equilibrium — impossible under Assumptions 1 and 2 with more than
    one equilibrium (Claim 4), so a ``None`` on a supposedly-generic
    game is itself a red flag worth investigating.
    """
    best: Optional[Improvement] = None
    for equilibrium in iter_equilibria(game):
        if equilibrium == current:
            continue
        for miner in game.miners:
            before = game.payoff(miner, current)
            after = game.payoff(miner, equilibrium)
            if after > before and (best is None or after - before > best.gain):
                best = Improvement(
                    miner=miner,
                    target=equilibrium,
                    payoff_before=before,
                    payoff_after=after,
                )
    return best


def find_better_equilibrium_sampled(
    game: Game,
    current: Configuration,
    *,
    samples: int = 50,
    seed: RngLike = None,
) -> Optional[Improvement]:
    """A Proposition 2 witness found by sampling equilibria via learning.

    Runs better-response learning from *samples* random starts; every
    endpoint is a genuine equilibrium (Theorem 1), so any witness found
    is exact — but absence of a witness proves nothing.
    """
    rngs = spawn_rngs(seed if isinstance(seed, int) else None, 2 * samples)
    engine = LearningEngine(record_configurations=False)
    best: Optional[Improvement] = None
    for index in range(samples):
        start = random_configuration(game, seed=rngs[2 * index])
        equilibrium = engine.run(game, start, seed=rngs[2 * index + 1]).final
        if equilibrium == current:
            continue
        for miner in game.miners:
            before = game.payoff(miner, current)
            after = game.payoff(miner, equilibrium)
            if after > before and (best is None or after - before > best.gain):
                best = Improvement(
                    miner=miner,
                    target=equilibrium,
                    payoff_before=before,
                    payoff_after=after,
                )
    return best


def improvement_opportunities(
    game: Game,
    current: Configuration,
    equilibria: Sequence[Configuration],
) -> List[Improvement]:
    """All (miner, equilibrium) pairs that strictly beat *current*."""
    opportunities: List[Improvement] = []
    for equilibrium in equilibria:
        if equilibrium == current:
            continue
        for miner in game.miners:
            before = game.payoff(miner, current)
            after = game.payoff(miner, equilibrium)
            if after > before:
                opportunities.append(
                    Improvement(
                        miner=miner,
                        target=equilibrium,
                        payoff_before=before,
                        payoff_after=after,
                    )
                )
    opportunities.sort(key=lambda imp: imp.gain, reverse=True)
    return opportunities
