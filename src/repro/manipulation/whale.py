"""Whale-transaction economics: what a reward boost costs in fees.

The paper's manipulation lever is "creating additional transactions
with high fees (sometimes called whale transactions)". The reward
design mechanism expresses manipulations as abstract reward excesses
per round (:mod:`repro.design.cost`); this module converts them to a
concrete fee budget given a coin's block cadence, and computes the
manipulator's return on investment over a payoff horizon — the E8
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro._numeric import Number, to_fraction
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.design.cost import CostLedger
from repro.exceptions import SimulationError


@dataclass(frozen=True)
class WhaleBudget:
    """Fee spend needed to realize a mechanism run's reward boosts."""

    #: Total extra reward paid, in game reward units.
    total_excess: Fraction
    #: Equivalent fee spend assuming one learning round per block.
    fee_spend: Fraction
    #: Rounds (blocks) the boosts were held in total.
    rounds: int


def budget_from_ledger(
    ledger: CostLedger,
    *,
    rounds_per_block: Number = 1,
) -> WhaleBudget:
    """Convert a mechanism cost ledger to a whale fee budget.

    ``rounds_per_block`` scales abstract learning rounds to blocks: if
    miners re-evaluate faster than once per block, a round is cheaper
    than a block's worth of fees. The scale converts exactly — ints and
    Fractions pass through, floats via their dyadic expansion — so the
    fee budget stays an exact rational.
    """
    scale = to_fraction(rounds_per_block, name="rounds_per_block")
    if scale <= 0:
        raise SimulationError("rounds_per_block must be positive")
    total = ledger.total()
    return WhaleBudget(
        total_excess=total,
        fee_spend=total * scale,
        rounds=ledger.total_rounds(),
    )


@dataclass(frozen=True)
class RoiReport:
    """Manipulator return-on-investment for one executed manipulation."""

    miner: str
    cost: Fraction
    gain_per_round: Fraction
    #: Rounds until cumulative gain covers cost (None = never).
    break_even_rounds: Optional[float]

    def roi_at(self, horizon_rounds: int) -> float:
        """Net return after *horizon_rounds* rounds, as a multiple of cost."""
        if self.cost == 0:
            return float("inf")
        net = self.gain_per_round * horizon_rounds - self.cost
        return float(net / self.cost)


def manipulation_roi(
    game: Game,
    beneficiary: Miner,
    before: Configuration,
    after: Configuration,
    ledger: CostLedger,
    *,
    rounds_per_block: float = 1.0,
) -> RoiReport:
    """ROI of moving the system from *before* to *after* for *beneficiary*.

    The gain per round is the payoff difference between the two
    equilibria; the cost is the whale budget of the mechanism run that
    produced the move. The paper's headline — "pay a finite cost while
    gaining an advantage indefinitely" — corresponds to a finite
    ``break_even_rounds``.
    """
    gain = game.payoff(beneficiary, after) - game.payoff(beneficiary, before)
    budget = budget_from_ledger(ledger, rounds_per_block=rounds_per_block)
    if gain <= 0:
        break_even = None
    elif budget.fee_spend == 0:
        break_even = 0.0
    else:
        break_even = float(budget.fee_spend / gain)
    return RoiReport(
        miner=beneficiary.name,
        cost=budget.fee_spend,
        gain_per_round=gain,
        break_even_rounds=break_even,
    )
