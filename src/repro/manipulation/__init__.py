"""Manipulation economics: Proposition 2 witnesses, whale and price levers."""

from repro.manipulation.better_equilibrium import (
    Improvement,
    find_better_equilibrium_exhaustive,
    find_better_equilibrium_sampled,
    improvement_opportunities,
)
from repro.manipulation.exchange import (
    PriceImpactModel,
    boost_factor_needed,
    exchange_cost_of_phase,
)
from repro.manipulation.planner import (
    ManipulationPlan,
    PlannerReport,
    plan_manipulation,
)
from repro.manipulation.whale import (
    RoiReport,
    WhaleBudget,
    budget_from_ledger,
    manipulation_roi,
)

__all__ = [
    "Improvement",
    "find_better_equilibrium_exhaustive",
    "find_better_equilibrium_sampled",
    "improvement_opportunities",
    "PriceImpactModel",
    "boost_factor_needed",
    "exchange_cost_of_phase",
    "ManipulationPlan",
    "PlannerReport",
    "plan_manipulation",
    "RoiReport",
    "WhaleBudget",
    "budget_from_ledger",
    "manipulation_roi",
]
