"""Decentralization / 51%-security metrics (paper Discussion, E10).

The paper's discussion warns that reward design can be aimed at a *bad*
configuration "in which a particular miner will have a dominant
position in a coin, killing … the basic guarantee of non-manipulation
(security) for that coin". These metrics quantify that exposure.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner


@dataclass(frozen=True)
class CoinSecurity:
    """Security posture of one coin in one configuration."""

    coin: str
    miners: int
    #: Largest miner's share of the coin's power (1.0 when alone).
    top_share: float
    #: Herfindahl–Hirschman index of power shares (1.0 = monopoly).
    hhi: float

    @property
    def majority_vulnerable(self) -> bool:
        """True when a single miner controls > 50% of the coin."""
        return self.top_share > 0.5


def coin_security(game: Game, config: Configuration, coin: Coin) -> Optional[CoinSecurity]:
    """Security metrics for *coin*, or ``None`` if nobody mines it."""
    occupants = config.miners_on(coin)
    if not occupants:
        return None
    total = sum((miner.power for miner in occupants), Fraction(0))
    shares = [float(miner.power / total) for miner in occupants]
    return CoinSecurity(
        coin=coin.name,
        miners=len(occupants),
        top_share=max(shares),
        hhi=sum(share * share for share in shares),
    )


def security_report(game: Game, config: Configuration) -> List[CoinSecurity]:
    """Per-coin security metrics for every occupied coin."""
    report = []
    for coin in game.coins:
        entry = coin_security(game, config, coin)
        if entry is not None:
            report.append(entry)
    return report


def vulnerable_coins(game: Game, config: Configuration) -> List[str]:
    """Names of coins where one miner holds a strict majority."""
    return [
        entry.coin for entry in security_report(game, config) if entry.majority_vulnerable
    ]


def dominance_target(
    game: Game, attacker: Miner, coin: Coin
) -> Optional[Configuration]:
    """An equilibrium-ish target where *attacker* dominates *coin*.

    Builds the configuration greedily: the attacker is pinned to
    *coin*; every other miner is inserted (largest first) at its best
    response given earlier placements, but *excluded* from *coin*
    whenever joining would keep the attacker's share above 50% anyway —
    i.e. we look for the most natural configuration in which the
    attacker majority-controls the coin. Returns ``None`` when no
    stable such configuration is found, since the attack then needs a
    non-equilibrium (transient) target, which Algorithm 2 cannot pin.
    """
    from repro.core.equilibrium import enumerate_equilibria

    if game.configuration_count() > 2_000_000:
        raise ValueError(
            "dominance_target enumerates equilibria; game too large — "
            "use the greedy scenario construction in experiments.e10 instead"
        )
    best: Optional[Configuration] = None
    best_payoff = None
    for config in enumerate_equilibria(game):
        entry = coin_security(game, config, coin)
        if entry is None:
            continue
        occupants = config.miners_on(coin)
        if attacker not in occupants:
            continue
        total = sum((miner.power for miner in occupants), Fraction(0))
        if attacker.power / total <= Fraction(1, 2):
            continue
        payoff = game.payoff(attacker, config)
        if best_payoff is None or payoff > best_payoff:
            best, best_payoff = config, payoff
    return best
