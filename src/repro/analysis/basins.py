"""Basin-of-attraction analysis: which equilibrium does learning find?

Theorem 1 says learning converges; it does not say *where*. For games
with several equilibria, the reached one depends on the start and on
the improvement path — which is precisely why the reward design
mechanism exists (you cannot rely on luck to land in your favourite
equilibrium). This module measures the empirical landing distribution:

* :func:`basin_profile` — from many random starts, the frequency of
  each reached equilibrium.
* :func:`basin_by_policy` — how much the landing distribution shifts
  across learning policies (same starts, different paths).

E13 reports these; the manipulation planner
(:mod:`repro.manipulation.planner`) uses them to price "wait for luck"
against "pay for the mechanism".
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.kernel.batch import BatchRunner
from repro.learning.policies import BetterResponsePolicy
from repro.util.rng import RngLike


@dataclass(frozen=True)
class BasinProfile:
    """Landing distribution of equilibria from random starts.

    The raw integer landing counts are the source of truth; float
    frequencies are derived views, so exact consumers (the manipulation
    planner's luck baseline) never round-trip through floats.
    """

    #: equilibrium → number of starts that converged to it.
    counts: Dict[Configuration, int]
    samples: int

    @property
    def frequencies(self) -> Dict[Configuration, float]:
        """equilibrium → fraction of starts that converged to it."""
        return {config: count / self.samples for config, count in self.counts.items()}

    @property
    def distinct_equilibria(self) -> int:
        return len(self.counts)

    def count_of(self, equilibrium: Configuration) -> int:
        """Number of starts that landed on *equilibrium* (0 if unseen)."""
        return self.counts.get(equilibrium, 0)

    def probability_of(self, equilibrium: Configuration) -> float:
        """Empirical probability of landing on *equilibrium* (0 if unseen)."""
        count = self.counts.get(equilibrium, 0)
        return count / self.samples if count else 0.0

    def dominant(self) -> Tuple[Configuration, float]:
        """The most likely equilibrium and its frequency."""
        equilibrium = max(self.counts, key=lambda c: self.counts[c])
        return equilibrium, self.counts[equilibrium] / self.samples

    def entropy(self) -> float:
        """Shannon entropy (bits) of the landing distribution.

        0 means learning is effectively deterministic about where it
        ends; log2(#equilibria) means all basins are equally likely.
        """
        import math

        samples = self.samples
        return -sum(
            (count / samples) * math.log2(count / samples)
            for count in self.counts.values()
            if count > 0
        )


def basin_profile(
    game: Game,
    *,
    samples: int = 50,
    policy: Optional[BetterResponsePolicy] = None,
    seed: RngLike = None,
    backend: str = "fast",
    executor: str = "auto",
    max_workers: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> BasinProfile:
    """Estimate the landing distribution from uniform random starts.

    Sampling routes through :func:`repro.run_many` — *executor* picks
    the mechanism (``"vectorized"`` tensor kernel, pooled workers, or
    ``"auto"``); the seeding scheme is the library-wide convention
    (stream ``2i`` draws start *i*, stream ``2i+1`` drives its engine),
    so the counts are identical in every mode.

    .. deprecated:: 1.2
        ``runner=`` — pass ``executor=`` / ``max_workers=`` instead.
    """
    if samples < 1:
        raise ValueError(f"samples must be ≥ 1, got {samples}")
    counts: Dict[Configuration, int] = {}
    if runner is not None:
        warnings.warn(
            "runner= is deprecated; pass executor= (and max_workers=) instead — "
            "execution now routes through repro.run_many",
            DeprecationWarning,
            stacklevel=2,
        )
        if runner.backend != backend:
            raise ValueError(
                f"backend={backend!r} conflicts with runner.backend="
                f"{runner.backend!r}; configure the backend on one of them"
            )
        summaries = runner.run(
            game,
            runs=samples,
            policy=policy,
            seed=seed if isinstance(seed, int) else None,
        )
    else:
        from repro.run import RunSpec, run_many

        summaries = run_many(
            [
                RunSpec(
                    game=game,
                    runs=samples,
                    policy=policy,
                    backend=backend,
                    seed=seed if isinstance(seed, int) else None,
                )
            ],
            executor=executor,
            max_workers=max_workers,
        )[0]
    for summary in summaries:
        final = summary.final_configuration(game)
        counts[final] = counts.get(final, 0) + 1
    return BasinProfile(counts=counts, samples=samples)


def basin_by_policy(
    game: Game,
    policies: Sequence[BetterResponsePolicy],
    *,
    samples: int = 30,
    seed: int = 0,
    backend: str = "fast",
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> Dict[str, BasinProfile]:
    """Landing distributions per policy (shared starting points)."""
    return {
        policy.name: basin_profile(
            game,
            samples=samples,
            policy=policy,
            seed=seed,
            backend=backend,
            executor=executor,
            max_workers=max_workers,
        )
        for policy in policies
    }


def expected_payoff_from_luck(
    game: Game, miner, profile: BasinProfile
):
    """A miner's expected payoff if the market just 'falls' somewhere.

    The baseline a rational manipulator compares the design mechanism
    against: do nothing and take the basin-weighted average payoff.
    Exact: the weights are the profile's raw integer landing counts
    over its sample total, not float frequencies.
    """
    from fractions import Fraction

    total = Fraction(0)
    for equilibrium, count in profile.counts.items():
        total += game.payoff(miner, equilibrium) * Fraction(count, profile.samples)
    return total
