"""Basin-of-attraction analysis: which equilibrium does learning find?

Theorem 1 says learning converges; it does not say *where*. For games
with several equilibria, the reached one depends on the start and on
the improvement path — which is precisely why the reward design
mechanism exists (you cannot rely on luck to land in your favourite
equilibrium). This module measures the empirical landing distribution:

* :func:`basin_profile` — from many random starts, the frequency of
  each reached equilibrium.
* :func:`basin_by_policy` — how much the landing distribution shifts
  across learning policies (same starts, different paths).

E13 reports these; the manipulation planner
(:mod:`repro.manipulation.planner`) uses them to price "wait for luck"
against "pay for the mechanism".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.configuration import Configuration
from repro.core.factories import random_configuration
from repro.core.game import Game
from repro.learning.engine import LearningEngine
from repro.learning.policies import BetterResponsePolicy
from repro.util.rng import RngLike, spawn_rngs


@dataclass(frozen=True)
class BasinProfile:
    """Landing frequencies of equilibria from random starts."""

    #: equilibrium → fraction of starts that converged to it.
    frequencies: Dict[Configuration, float]
    samples: int

    @property
    def distinct_equilibria(self) -> int:
        return len(self.frequencies)

    def probability_of(self, equilibrium: Configuration) -> float:
        """Empirical probability of landing on *equilibrium* (0 if unseen)."""
        return self.frequencies.get(equilibrium, 0.0)

    def dominant(self) -> Tuple[Configuration, float]:
        """The most likely equilibrium and its frequency."""
        equilibrium = max(self.frequencies, key=lambda c: self.frequencies[c])
        return equilibrium, self.frequencies[equilibrium]

    def entropy(self) -> float:
        """Shannon entropy (bits) of the landing distribution.

        0 means learning is effectively deterministic about where it
        ends; log2(#equilibria) means all basins are equally likely.
        """
        import math

        return -sum(
            p * math.log2(p) for p in self.frequencies.values() if p > 0
        )


def basin_profile(
    game: Game,
    *,
    samples: int = 50,
    policy: Optional[BetterResponsePolicy] = None,
    seed: RngLike = None,
    backend: str = "fast",
) -> BasinProfile:
    """Estimate the landing distribution from uniform random starts."""
    if samples < 1:
        raise ValueError(f"samples must be ≥ 1, got {samples}")
    rngs = spawn_rngs(seed if isinstance(seed, int) else None, 2 * samples)
    engine = LearningEngine(policy=policy, record_configurations=False, backend=backend)
    counts: Dict[Configuration, int] = {}
    for index in range(samples):
        start = random_configuration(game, seed=rngs[2 * index])
        final = engine.run(game, start, seed=rngs[2 * index + 1]).final
        counts[final] = counts.get(final, 0) + 1
    return BasinProfile(
        frequencies={config: count / samples for config, count in counts.items()},
        samples=samples,
    )


def basin_by_policy(
    game: Game,
    policies: Sequence[BetterResponsePolicy],
    *,
    samples: int = 30,
    seed: int = 0,
    backend: str = "fast",
) -> Dict[str, BasinProfile]:
    """Landing distributions per policy (shared starting points)."""
    return {
        policy.name: basin_profile(
            game, samples=samples, policy=policy, seed=seed, backend=backend
        )
        for policy in policies
    }


def expected_payoff_from_luck(
    game: Game, miner, profile: BasinProfile
):
    """A miner's expected payoff if the market just 'falls' somewhere.

    The baseline a rational manipulator compares the design mechanism
    against: do nothing and take the basin-weighted average payoff.
    """
    from fractions import Fraction

    total = Fraction(0)
    for equilibrium, frequency in profile.frequencies.items():
        total += game.payoff(miner, equilibrium) * Fraction(frequency).limit_denominator(
            10**9
        )
    return total
