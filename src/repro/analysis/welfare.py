"""Welfare accounting (Observation 3 and around it).

Observation 3: under Assumption 1, every stable configuration is
globally optimal — the miners' payoffs sum to ``Σ_c F(c)`` because no
coin is left unmined. These helpers measure welfare, the welfare gap of
arbitrary configurations (unmined coins burn reward), and distributional
statistics used by the experiment tables.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Sequence

from repro.core.configuration import Configuration
from repro.core.game import Game


def social_welfare(game: Game, config: Configuration) -> Fraction:
    """``Σ_p u_p(s)`` — total payoff actually collected."""
    return game.social_welfare(config)


def max_welfare(game: Game) -> Fraction:
    """``Σ_c F(c)`` — the welfare bound of Observation 3."""
    return game.rewards.total()


def welfare_gap(game: Game, config: Configuration) -> Fraction:
    """Reward left on the table: ``Σ_c F(c) − Σ_p u_p(s)``.

    Equals the summed rewards of unmined coins; zero exactly when every
    coin has at least one miner.
    """
    return max_welfare(game) - social_welfare(game, config)


def verifies_observation3(game: Game, config: Configuration) -> bool:
    """Whether *config* attains the Observation 3 optimum exactly."""
    return welfare_gap(game, config) == 0


def payoff_distribution(game: Game, config: Configuration) -> Dict[str, Fraction]:
    """Payoffs keyed by miner name (report-friendly)."""
    return {miner.name: game.payoff(miner, config) for miner in game.miners}


def gini_coefficient(values: Sequence[Fraction]) -> float:
    """Gini index of a payoff vector (0 = equal, →1 = concentrated).

    Used to compare how different equilibria distribute the same total
    welfare across miners.
    """
    if not values:
        raise ValueError("gini of an empty sequence is undefined")
    floats = sorted(float(v) for v in values)
    if any(v < 0 for v in floats):
        raise ValueError("gini is defined for non-negative values")
    total = sum(floats)
    if total == 0:
        return 0.0
    n = len(floats)
    weighted = sum((index + 1) * value for index, value in enumerate(floats))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def reward_per_unit_spread(game: Game, config: Configuration) -> float:
    """Max/min RPU ratio over occupied coins (1.0 = perfectly even).

    In equilibrium RPUs are nearly even (big miners equalize them);
    this measures how far a configuration is from that state.
    """
    rpus = [game.rpu(coin, config) for coin in game.coins]
    occupied = [float(r) for r in rpus if r is not None]
    if not occupied:
        raise ValueError("configuration occupies no coin")
    low = min(occupied)
    if low == 0:
        return float("inf")
    return max(occupied) / low
