"""Analysis tools: welfare, efficiency, convergence stats, security, risk.

The risk names re-exported here live in :mod:`repro.stochastic.risk`;
they are surfaced alongside the exact analyses because they answer the
same kind of question (what does learning/equilibrium look like?) from
the sampled side.
"""

from repro.analysis.basins import (
    BasinProfile,
    basin_by_policy,
    basin_profile,
    expected_payoff_from_luck,
)
from repro.analysis.classes import (
    ClassBasinProfile,
    class_basin_profile,
    measure_class_convergence,
)
from repro.analysis.convergence import (
    ConvergenceStats,
    convergence_sweep,
    measure_convergence,
)
from repro.analysis.paths import (
    DagAnalysis,
    analyze_improvement_dag,
    improvement_graph,
    is_acyclic,
    longest_improvement_path,
    reachable_equilibria,
    sink_configurations,
)
from repro.analysis.efficiency import (
    EfficiencyReport,
    PayoffEnvelope,
    efficiency_report,
    payoff_envelopes,
)
from repro.analysis.security import (
    CoinSecurity,
    coin_security,
    dominance_target,
    security_report,
    vulnerable_coins,
)
from repro.analysis.welfare import (
    gini_coefficient,
    max_welfare,
    payoff_distribution,
    reward_per_unit_spread,
    social_welfare,
    verifies_observation3,
    welfare_gap,
)
from repro.stochastic.risk import (
    BudgetOutcome,
    MinerRisk,
    MisconvergenceReport,
    RiskProfile,
    misconvergence_profile,
    per_round_variance,
    reward_risk,
    ruin_bound,
    time_to_equilibrium,
)

__all__ = [
    "BasinProfile",
    "basin_by_policy",
    "basin_profile",
    "expected_payoff_from_luck",
    "ClassBasinProfile",
    "class_basin_profile",
    "measure_class_convergence",
    "ConvergenceStats",
    "convergence_sweep",
    "measure_convergence",
    "DagAnalysis",
    "analyze_improvement_dag",
    "improvement_graph",
    "is_acyclic",
    "longest_improvement_path",
    "reachable_equilibria",
    "sink_configurations",
    "EfficiencyReport",
    "PayoffEnvelope",
    "efficiency_report",
    "payoff_envelopes",
    "CoinSecurity",
    "coin_security",
    "dominance_target",
    "security_report",
    "vulnerable_coins",
    "gini_coefficient",
    "max_welfare",
    "payoff_distribution",
    "reward_per_unit_spread",
    "social_welfare",
    "verifies_observation3",
    "welfare_gap",
    "BudgetOutcome",
    "MinerRisk",
    "MisconvergenceReport",
    "RiskProfile",
    "misconvergence_profile",
    "per_round_variance",
    "reward_risk",
    "ruin_bound",
    "time_to_equilibrium",
]
