"""Population-level analysis over the compressed class kernel.

The per-miner analyses (:mod:`repro.analysis.basins`,
:mod:`repro.analysis.convergence`) identify a trajectory's endpoint by
its :class:`~repro.core.configuration.Configuration`. At population
scale that object does not exist — a million-miner game never
materializes miners — so these helpers speak the class kernel's native
currency instead: a *count profile*, the tuple-of-tuples count matrix
of :class:`~repro.kernel.classes.ClassGame` (miners per class × coin).

* :func:`measure_class_convergence` — macro-step statistics of the
  chunked class stepper over seeded multinomial starts, folded into
  the same :class:`~repro.analysis.convergence.ConvergenceStats` shape
  the E2 grid uses.
* :func:`class_basin_profile` — the landing distribution over stable
  count profiles, with orbit weights available exactly (how many
  per-miner equilibria each profile represents).

Execution routes through :func:`repro.run_many` with
``kind="classes"`` cells, so the seeding convention (stream ``2i``
draws start *i*, ``2i+1`` drives its stepper) matches every other
batch lane in the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.core.game import Game
from repro.core.restricted import RestrictedGame
from repro.kernel.classes import ClassGame, Profile
from repro.analysis.convergence import ConvergenceStats, stats_from_steps
from repro.util.rng import RngLike

GameLike = Union[Game, RestrictedGame, ClassGame]


def _as_class_game(game: GameLike, allowed) -> ClassGame:
    if isinstance(game, ClassGame):
        if allowed is not None:
            raise ValueError(
                "allowed= cannot be combined with a ClassGame; the spec "
                "already fixes each class's alphabet"
            )
        return game
    return ClassGame.from_game(game, allowed=allowed)


@dataclass(frozen=True)
class ClassBasinProfile:
    """Landing distribution over stable *count profiles*.

    The compressed sibling of
    :class:`~repro.analysis.basins.BasinProfile`: keys are count
    matrices (one per equilibrium *orbit*), not per-miner
    configurations. ``orbit_sizes`` maps each reached profile to the
    exact number of per-miner equilibria it represents, so expanding
    ``counts`` by ``orbit_sizes`` recovers per-miner multiplicities
    without ever enumerating miners.
    """

    #: stable count profile → number of starts that converged to it.
    counts: Dict[Profile, int]
    samples: int
    #: stable count profile → exact per-miner orbit size (multinomial).
    orbit_sizes: Dict[Profile, int]

    @property
    def frequencies(self) -> Dict[Profile, float]:
        """count profile → fraction of starts that converged to it."""
        return {profile: count / self.samples for profile, count in self.counts.items()}

    @property
    def distinct_equilibria(self) -> int:
        """Number of distinct equilibrium *orbits* reached."""
        return len(self.counts)

    def count_of(self, profile: Profile) -> int:
        """Number of starts that landed on *profile* (0 if unseen)."""
        return self.counts.get(profile, 0)

    def dominant(self) -> Tuple[Profile, float]:
        """The most likely landing profile and its frequency."""
        profile = max(self.counts, key=lambda p: self.counts[p])
        return profile, self.counts[profile] / self.samples

    def entropy(self) -> float:
        """Shannon entropy (bits) of the landing distribution."""
        samples = self.samples
        return -sum(
            (count / samples) * math.log2(count / samples)
            for count in self.counts.values()
            if count > 0
        )


def _run_class_cells(
    cgame: ClassGame,
    *,
    runs: int,
    policy: Optional[str],
    scheduler: Optional[str],
    max_steps: Optional[int],
    seed: RngLike,
):
    from repro.run import RunSpec, run_many

    return run_many(
        [
            RunSpec(
                game=cgame,
                runs=runs,
                kind="classes",
                policy=policy,
                scheduler=scheduler,
                max_steps=max_steps,
                seed=seed if isinstance(seed, int) else None,
            )
        ]
    )[0]


def measure_class_convergence(
    game: GameLike,
    *,
    runs: int = 20,
    policy: Optional[str] = None,
    scheduler: Optional[str] = None,
    max_steps: Optional[int] = None,
    seed: RngLike = None,
    allowed=None,
) -> ConvergenceStats:
    """Macro-step statistics of the chunked class stepper.

    Accepts a per-miner :class:`Game`/:class:`RestrictedGame` (compressed
    on entry, optionally with an ``allowed=`` mask) or a ready
    :class:`ClassGame` built ``from_spec`` — the only route when the
    population is too large to materialize. Steps here are *macro*
    steps (one chunked class move each), so the numbers measure the
    compressed dynamic itself, not a per-miner path length. Every step
    of the class stepper is an exact better-response move, so the
    potential-monotone invariant holds by construction and the
    returned fraction is 1.
    """
    if runs < 1:
        raise ValueError(f"runs must be ≥ 1, got {runs}")
    cgame = _as_class_game(game, allowed)
    results = _run_class_cells(
        cgame,
        runs=runs,
        policy=policy,
        scheduler=scheduler,
        max_steps=max_steps,
        seed=seed,
    )
    return stats_from_steps([result.steps for result in results], monotone=runs)


def class_basin_profile(
    game: GameLike,
    *,
    samples: int = 50,
    policy: Optional[str] = None,
    scheduler: Optional[str] = None,
    max_steps: Optional[int] = None,
    seed: RngLike = None,
    allowed=None,
) -> ClassBasinProfile:
    """Landing distribution over stable count profiles.

    Each sample draws a uniform-multinomial start per class (stream
    ``2i``) and runs the chunked class stepper (stream ``2i+1``); the
    reached stable profile is tallied. ``orbit_sizes`` carries the
    exact per-miner multiplicity of every reached profile, computed
    from the multinomial closed form — no per-miner enumeration.
    """
    if samples < 1:
        raise ValueError(f"samples must be ≥ 1, got {samples}")
    cgame = _as_class_game(game, allowed)
    results = _run_class_cells(
        cgame,
        runs=samples,
        policy=policy,
        scheduler=scheduler,
        max_steps=max_steps,
        seed=seed,
    )
    counts: Dict[Profile, int] = {}
    for result in results:
        counts[result.final] = counts.get(result.final, 0) + 1
    orbit_sizes = {profile: cgame.orbit_size(profile) for profile in counts}
    return ClassBasinProfile(counts=counts, samples=samples, orbit_sizes=orbit_sizes)
