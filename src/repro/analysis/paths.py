"""Exact improvement-graph analysis (small games).

Theorem 1 is equivalent to a graph statement: the *improvement graph* —
configurations as nodes, better-response steps as edges — is acyclic,
and its sinks are exactly the pure equilibria. This module extracts the
exact quantities no sampling can give:

* :func:`analyze_improvement_dag` — one pass over the whole space:
  acyclicity (Theorem 1), the exact longest improving path (the tight
  worst case over every scheduler, policy and start), and all sinks.
  The default ``backend="space"`` runs on
  :class:`repro.kernel.space.ConfigSpace` — integer configuration
  codes walked in Gray-code order with O(1) mass updates, flat
  successor arrays, iterative DFS, and equal-power symmetry reduction
  — which raises the practical size frontier by orders of magnitude
  over the Fraction brute force (kept as ``backend="exact"``).
* :func:`reachable_equilibria` — which equilibria a given start can
  end at (the exact version of basin analysis), also int-code based by
  default.
* :func:`improvement_graph` / :func:`is_acyclic` /
  :func:`longest_improvement_path` / :func:`sink_configurations` — the
  original Configuration-keyed graph API, used by the ``exact``
  backend and the parity suite.

Every function accepts a plain :class:`~repro.core.game.Game`, a
:class:`~repro.core.restricted.RestrictedGame` (the paper's asymmetric
case), or a game plus an ``allowed=`` per-miner coin mask; restricted
analyses cover only mask-valid nodes and legal edges, on both backends.

Everything here is exponential in ``n`` and guarded accordingly; the
space backend's guard counts *scanned* nodes, i.e. symmetry orbits when
reduction applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.coin import Coin
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.core.restricted import RestrictedGame, as_restricted
from repro.exceptions import InvalidModelError

#: Adjacency: configuration → better-response successors.
ImprovementGraph = Dict[Configuration, Tuple[Configuration, ...]]

#: Node cap for the Fraction (Configuration-object) graph.
_DEFAULT_LIMIT = 100_000

#: Node cap for the integer-code space backend — two orders of
#: magnitude more headroom; at this size the full analysis still runs
#: in well under a minute (~2M nodes ≈ 21 miners × 2 coins).
_SPACE_LIMIT = 2_000_000


@dataclass(frozen=True)
class DagAnalysis:
    """Exact improvement-DAG facts for one game.

    ``longest_path`` is ``None`` only when ``acyclic`` is ``False``
    (which Theorem 1 forbids and would indicate a payoff-model bug).
    ``sinks`` always lists *all* pure equilibria, in the enumeration
    (product) order, with symmetry orbits expanded.
    """

    acyclic: bool
    longest_path: Optional[int]
    sinks: Tuple[Configuration, ...]
    nodes_scanned: int
    total_configurations: int
    symmetry_reduced: bool


def analyze_improvement_dag(
    game: Union[Game, RestrictedGame],
    *,
    limit: int = _SPACE_LIMIT,
    backend: str = "space",
    symmetry: bool = True,
    allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
) -> DagAnalysis:
    """Acyclicity, exact longest path and all sinks, in one pass.

    With ``backend="space"`` the scan runs at the integer-code level
    (no Configuration or Fraction per node); when ``symmetry`` is on
    and the game has interchangeable miners, only canonical orbit
    representatives are scanned and ``limit`` guards that (much
    smaller) count. ``backend="exact"`` materializes the
    Configuration-keyed graph — same answers, for audits and parity.

    *game* may be a :class:`~repro.core.restricted.RestrictedGame` (or
    a plain game plus an ``allowed=`` per-miner coin mask): the
    analysis then covers the *restricted* improvement DAG — mask-valid
    nodes, legal better-response edges only — whose sinks are exactly
    the restricted equilibria, and symmetry merges only miners with
    equal power *and* equal allowed set.
    """
    base, restricted = as_restricted(game, allowed)
    source = base if restricted is None else restricted
    if backend == "exact":
        graph = improvement_graph(source, limit=limit)
        acyclic = is_acyclic(graph)
        return DagAnalysis(
            acyclic=acyclic,
            longest_path=longest_improvement_path(graph) if acyclic else None,
            sinks=tuple(sink_configurations(graph)),
            nodes_scanned=len(graph),
            total_configurations=source.configuration_count(),
            symmetry_reduced=False,
        )
    if backend != "space":
        raise InvalidModelError(
            f"unknown DAG backend {backend!r}; expected 'space' or 'exact'"
        )
    from repro.kernel.space import ConfigSpace

    space = ConfigSpace(source, symmetry=symmetry)
    scanned = space.orbit_count() if space.symmetry else space.size
    if scanned > limit:
        raise InvalidModelError(
            f"improvement DAG has {scanned} nodes to scan, above the limit {limit}"
        )
    report = space.dag_report(max_sinks=limit)
    return DagAnalysis(
        acyclic=report.acyclic,
        longest_path=report.longest_path,
        sinks=tuple(space.config_of(code) for code in report.sink_codes),
        nodes_scanned=report.nodes_scanned,
        total_configurations=report.total_configurations,
        symmetry_reduced=report.symmetry_reduced,
    )


def improvement_graph(
    game: Union[Game, RestrictedGame],
    *,
    limit: int = _DEFAULT_LIMIT,
    allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
) -> ImprovementGraph:
    """The full better-response graph of *game*, Configuration-keyed.

    Raises :class:`InvalidModelError` when the configuration space
    exceeds *limit* (the graph has ``|C|^n`` nodes — ``Π_p
    |allowed(p)|`` under a restriction). This is the Fraction path;
    scans that only need the derived quantities should use
    :func:`analyze_improvement_dag` instead. For a
    :class:`RestrictedGame` (or an ``allowed=`` mask) the nodes are the
    mask-valid configurations and the edges the *legal* better-response
    moves.
    """
    base, restricted = as_restricted(game, allowed)
    # RestrictedGame mirrors the Game scan surface, so one loop serves
    # both: its all_configurations/better_response_moves are the
    # mask-valid subsets in the same orders.
    source = base if restricted is None else restricted
    count = source.configuration_count()
    if count > limit:
        raise InvalidModelError(
            f"improvement graph has {count} nodes, above the limit {limit}"
        )
    graph: ImprovementGraph = {}
    for config in source.all_configurations():
        successors: List[Configuration] = []
        for miner in base.miners:
            for coin in source.better_response_moves(miner, config):
                successors.append(config.move(miner, coin))
        graph[config] = tuple(successors)
    return graph


def sink_configurations(graph: ImprovementGraph) -> List[Configuration]:
    """Nodes with no outgoing edge — the pure equilibria."""
    return [config for config, successors in graph.items() if not successors]


def is_acyclic(graph: ImprovementGraph) -> bool:
    """Whether the improvement graph has no directed cycle.

    Theorem 1 implies ``True`` for every game; this decides it exactly
    by iterative DFS with colors.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Configuration, int] = {node: WHITE for node in graph}
    for root in graph:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[Configuration, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, index = stack[-1]
            successors = graph[node]
            if index < len(successors):
                stack[-1] = (node, index + 1)
                child = successors[index]
                if color[child] == GRAY:
                    return False
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return True


def longest_improvement_path(graph: ImprovementGraph) -> int:
    """The maximum number of steps any improving path can take.

    Computed by memoized longest-path on the DAG (raises if the graph
    is cyclic, which Theorem 1 forbids). This is the exact worst case
    over *all* schedulers, policies and starts.
    """
    if not is_acyclic(graph):
        raise InvalidModelError(
            "improvement graph is cyclic; this contradicts Theorem 1 and "
            "indicates a payoff-model bug"
        )
    # One pass over all nodes fills the memo (iterative post-order — a
    # node is finalized only once every successor has an entry); the
    # answer is the maximum entry.
    memo: Dict[Configuration, int] = {}
    for node in graph:
        if node in memo:
            continue
        stack = [node]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            pending = [child for child in graph[current] if child not in memo]
            if pending:
                stack.extend(pending)
            else:
                memo[current] = max(
                    (1 + memo[child] for child in graph[current]), default=0
                )
                stack.pop()
    return max(memo.values()) if memo else 0


def reachable_equilibria(
    game: Union[Game, RestrictedGame],
    start: Configuration,
    *,
    limit: int = _SPACE_LIMIT,
    backend: str = "space",
    allowed: Optional[Mapping[Miner, Sequence[Coin]]] = None,
) -> List[Configuration]:
    """All equilibria some improving path from *start* can reach.

    The exact counterpart of :func:`repro.analysis.basins.basin_profile`
    (which samples one path per start). DFS over better-response
    successors restricted to nodes reachable from *start*; the space
    backend runs it over integer codes with the identical traversal
    order, so results — including list order — match the Fraction path.
    For a :class:`RestrictedGame` (or an ``allowed=`` mask) only legal
    moves are followed; a mask-invalid *start* raises.
    """
    base, restricted = as_restricted(game, allowed)
    source = base if restricted is None else restricted
    count = source.configuration_count()
    if backend == "space":
        if count > limit:
            raise InvalidModelError(
                f"reachability needs the improvement DAG ({count} nodes > {limit})"
            )
        from repro.kernel.space import ConfigSpace

        space = ConfigSpace(source, symmetry=False)
        return [
            space.config_of(code)
            for code in space.reachable_sink_codes(space.code_of(start))
        ]
    if backend != "exact":
        raise InvalidModelError(
            f"unknown reachability backend {backend!r}; expected 'space' or 'exact'"
        )
    if count > limit:
        raise InvalidModelError(
            f"reachability needs the improvement graph ({count} nodes > {limit})"
        )
    if restricted is not None:
        restricted.validate_configuration(start)
    frontier = [start]
    seen: Set[Configuration] = {start}
    sinks: List[Configuration] = []
    while frontier:
        config = frontier.pop()
        successors: List[Configuration] = []
        for miner in base.miners:
            for coin in source.better_response_moves(miner, config):
                successors.append(config.move(miner, coin))
        if not successors:
            sinks.append(config)
            continue
        for child in successors:
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return sinks
