"""Exact improvement-graph analysis (small games).

Theorem 1 is equivalent to a graph statement: the *improvement graph* —
configurations as nodes, better-response steps as edges — is acyclic,
and its sinks are exactly the pure equilibria. For small games this
module materializes that graph and extracts exact quantities no
sampling can give:

* :func:`improvement_graph` — the full directed graph,
* :func:`is_acyclic` — Theorem 1, decided exactly,
* :func:`longest_improvement_path` — the *worst-case* number of
  better-response steps any learning process can ever take (the tight
  version of E2's empirical step counts),
* :func:`sink_configurations` — equilibria as graph sinks (must agree
  with :func:`repro.core.equilibrium.enumerate_equilibria`),
* :func:`reachable_equilibria` — which equilibria a given start can
  end at (the exact version of basin analysis).

Everything here is exponential in ``n`` and guarded accordingly.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.exceptions import InvalidModelError

#: Adjacency: configuration → better-response successors.
ImprovementGraph = Dict[Configuration, Tuple[Configuration, ...]]

_DEFAULT_LIMIT = 100_000


def improvement_graph(game: Game, *, limit: int = _DEFAULT_LIMIT) -> ImprovementGraph:
    """The full better-response graph of *game*.

    Raises :class:`InvalidModelError` when the configuration space
    exceeds *limit* (the graph has ``|C|^n`` nodes).
    """
    count = game.configuration_count()
    if count > limit:
        raise InvalidModelError(
            f"improvement graph has {count} nodes, above the limit {limit}"
        )
    graph: ImprovementGraph = {}
    for config in game.all_configurations():
        successors: List[Configuration] = []
        for miner in game.miners:
            for coin in game.better_response_moves(miner, config):
                successors.append(config.move(miner, coin))
        graph[config] = tuple(successors)
    return graph


def sink_configurations(graph: ImprovementGraph) -> List[Configuration]:
    """Nodes with no outgoing edge — the pure equilibria."""
    return [config for config, successors in graph.items() if not successors]


def is_acyclic(graph: ImprovementGraph) -> bool:
    """Whether the improvement graph has no directed cycle.

    Theorem 1 implies ``True`` for every game; this decides it exactly
    by iterative DFS with colors.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Configuration, int] = {node: WHITE for node in graph}
    for root in graph:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[Configuration, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, index = stack[-1]
            successors = graph[node]
            if index < len(successors):
                stack[-1] = (node, index + 1)
                child = successors[index]
                if color[child] == GRAY:
                    return False
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return True


def longest_improvement_path(graph: ImprovementGraph) -> int:
    """The maximum number of steps any improving path can take.

    Computed by memoized longest-path on the DAG (raises if the graph
    is cyclic, which Theorem 1 forbids). This is the exact worst case
    over *all* schedulers, policies and starts.
    """
    if not is_acyclic(graph):
        raise InvalidModelError(
            "improvement graph is cyclic; this contradicts Theorem 1 and "
            "indicates a payoff-model bug"
        )
    memo: Dict[Configuration, int] = {}

    def depth(node: Configuration) -> int:
        if node in memo:
            return memo[node]
        # Iterative post-order (avoids recursion limits on long chains):
        # a node is finalized only once every successor has a memo entry.
        stack = [node]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            pending = [child for child in graph[current] if child not in memo]
            if pending:
                stack.extend(pending)
            else:
                memo[current] = max(
                    (1 + memo[child] for child in graph[current]), default=0
                )
                stack.pop()
        return memo[node]

    return max(depth(node) for node in graph) if graph else 0


def reachable_equilibria(
    game: Game,
    start: Configuration,
    *,
    limit: int = _DEFAULT_LIMIT,
) -> List[Configuration]:
    """All equilibria some improving path from *start* can reach.

    The exact counterpart of :func:`repro.analysis.basins.basin_profile`
    (which samples one path per start). BFS over the improvement graph
    restricted to nodes reachable from *start*.
    """
    count = game.configuration_count()
    if count > limit:
        raise InvalidModelError(
            f"reachability needs the improvement graph ({count} nodes > {limit})"
        )
    frontier = [start]
    seen: Set[Configuration] = {start}
    sinks: List[Configuration] = []
    while frontier:
        config = frontier.pop()
        successors: List[Configuration] = []
        for miner in game.miners:
            for coin in game.better_response_moves(miner, config):
                successors.append(config.move(miner, coin))
        if not successors:
            sinks.append(config)
            continue
        for child in successors:
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return sinks
