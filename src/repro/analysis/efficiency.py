"""Price of anarchy / stability for the Game of Coins.

Because Observation 3 pins every equilibrium's welfare to the optimum
(under Assumption 1), the interesting inefficiency is *per-miner*
variation across equilibria, not total-welfare loss. Both classical
ratios and the per-miner payoff envelope are provided; E5/E6 report
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence

from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.analysis.welfare import max_welfare, social_welfare
from repro.exceptions import InvalidModelError


@dataclass(frozen=True)
class EfficiencyReport:
    """Welfare ratios over a set of equilibria of one game."""

    #: worst equilibrium welfare / optimal welfare.
    price_of_anarchy: float
    #: best equilibrium welfare / optimal welfare.
    price_of_stability: float
    equilibria_count: int


def efficiency_report(game: Game, equilibria: Sequence[Configuration]) -> EfficiencyReport:
    """Compute PoA/PoS over the provided equilibria."""
    if not equilibria:
        raise InvalidModelError("need at least one equilibrium")
    optimum = float(max_welfare(game))
    welfares = [float(social_welfare(game, config)) for config in equilibria]
    return EfficiencyReport(
        price_of_anarchy=min(welfares) / optimum,
        price_of_stability=max(welfares) / optimum,
        equilibria_count=len(equilibria),
    )


@dataclass(frozen=True)
class PayoffEnvelope:
    """Per-miner payoff range across equilibria."""

    miner: str
    lowest: Fraction
    highest: Fraction

    @property
    def ratio(self) -> float:
        """How much the miner's fate varies across equilibria (≥ 1)."""
        if self.lowest == 0:
            return float("inf")
        return float(self.highest / self.lowest)


def payoff_envelopes(
    game: Game, equilibria: Sequence[Configuration]
) -> List[PayoffEnvelope]:
    """The payoff range of every miner across the given equilibria.

    A miner with ``ratio > 1`` is exactly a miner for whom Section 4's
    manipulation is worth paying for.
    """
    if not equilibria:
        raise InvalidModelError("need at least one equilibrium")
    envelopes = []
    for miner in game.miners:
        payoffs = [game.payoff(miner, config) for config in equilibria]
        envelopes.append(
            PayoffEnvelope(miner=miner.name, lowest=min(payoffs), highest=max(payoffs))
        )
    return envelopes
