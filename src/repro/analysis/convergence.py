"""Convergence statistics for better-response learning (E2, E9).

Theorem 1 says every improving path is finite; these helpers measure
*how* finite — the empirical step counts across random games, policies
and schedulers — and audit the potential argument on live trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.core.potential import is_strictly_increasing_along
from repro.kernel.batch import BatchRunner
from repro.learning.engine import LearningEngine
from repro.learning.policies import BetterResponsePolicy
from repro.learning.schedulers import ActivationScheduler
from repro.util.rng import RngLike, spawn_rngs


@dataclass(frozen=True)
class ConvergenceStats:
    """Summary of step counts over repeated learning runs."""

    runs: int
    mean_steps: float
    median_steps: float
    p95_steps: float
    max_steps: int
    #: Fraction of runs whose potential trace was strictly increasing
    #: (should be 1.0; anything else is a bug witness).
    potential_monotone_fraction: float

    def as_row(self) -> List[float]:
        return [
            self.runs,
            self.mean_steps,
            self.median_steps,
            self.p95_steps,
            self.max_steps,
            self.potential_monotone_fraction,
        ]


def measure_convergence(
    game: Game,
    *,
    runs: int = 20,
    policy: Optional[BetterResponsePolicy] = None,
    scheduler: Optional[ActivationScheduler] = None,
    audit_potential: bool = False,
    seed: RngLike = None,
    backend: str = "fast",
    runner: Optional[BatchRunner] = None,
) -> ConvergenceStats:
    """Run learning *runs* times from random starts and summarize steps.

    *backend* selects the numeric loop (``"fast"`` kernel vs
    ``"exact"`` Fractions — identical step counts either way). Passing
    a :class:`~repro.kernel.batch.BatchRunner` as *runner* executes the
    runs through it (possibly across worker processes); its seeding
    scheme matches the serial loop, so the statistics are identical.
    Potential audits need full trajectories and therefore always run
    serially in-process.
    """
    if runs < 1:
        raise ValueError(f"runs must be ≥ 1, got {runs}")
    if runner is not None and runner.backend != backend:
        raise ValueError(
            f"backend={backend!r} conflicts with runner.backend={runner.backend!r}; "
            "configure the backend on one of them"
        )
    root_seed = seed if isinstance(seed, int) else None
    steps: List[int] = []
    monotone = 0
    if runner is not None and not audit_potential:
        summaries = runner.run(
            game, runs=runs, policy=policy, scheduler=scheduler, seed=root_seed
        )
        steps = [summary.steps for summary in summaries]
        monotone = runs
    else:
        rngs = spawn_rngs(root_seed, 2 * runs)
        engine = LearningEngine(
            policy=policy,
            scheduler=scheduler,
            record_configurations=audit_potential,
            backend=backend,
        )
        for run_index in range(runs):
            start = random_configuration(game, seed=rngs[2 * run_index])
            trajectory = engine.run(game, start, seed=rngs[2 * run_index + 1])
            steps.append(trajectory.length)
            if audit_potential:
                if is_strictly_increasing_along(game, trajectory.configurations):
                    monotone += 1
            else:
                monotone += 1
    array = np.array(steps, dtype=float)
    return ConvergenceStats(
        runs=runs,
        mean_steps=float(array.mean()),
        median_steps=float(np.median(array)),
        p95_steps=float(np.percentile(array, 95)),
        max_steps=int(array.max()),
        potential_monotone_fraction=monotone / runs,
    )


def convergence_sweep(
    *,
    miner_counts: Sequence[int],
    coin_counts: Sequence[int],
    runs_per_cell: int = 10,
    policy: Optional[BetterResponsePolicy] = None,
    scheduler: Optional[ActivationScheduler] = None,
    power_distribution: str = "uniform",
    seed: int = 0,
    backend: str = "fast",
    runner: Optional[BatchRunner] = None,
) -> Dict[tuple, ConvergenceStats]:
    """The E2 grid: convergence stats per (n miners, k coins) cell."""
    results: Dict[tuple, ConvergenceStats] = {}
    cell_rngs = spawn_rngs(seed, len(miner_counts) * len(coin_counts))
    index = 0
    for n in miner_counts:
        for k in coin_counts:
            rng = cell_rngs[index]
            index += 1
            game = random_game(
                n, k, power_distribution=power_distribution, seed=rng
            )
            results[(n, k)] = measure_convergence(
                game,
                runs=runs_per_cell,
                policy=policy,
                scheduler=scheduler,
                seed=int(rng.integers(0, 2**31)),
                backend=backend,
                runner=runner,
            )
    return results
