"""Convergence statistics for better-response learning (E2, E9).

Theorem 1 says every improving path is finite; these helpers measure
*how* finite — the empirical step counts across random games, policies
and schedulers — and audit the potential argument on live trajectories.

Execution routes through :func:`repro.run_many` (one
:class:`~repro.run.RunSpec` cell per measurement): pass ``executor=``
to pick the mechanism — ``"vectorized"`` for the tensor population
kernel, ``"process"``/``"thread"`` for pools, ``"auto"`` (default) to
let the library choose. Statistics are identical across every mode.
The old ``runner=`` kwarg still works but is deprecated.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.core.potential import is_strictly_increasing_along
from repro.kernel.batch import BatchRunner
from repro.learning.engine import LearningEngine
from repro.learning.policies import BetterResponsePolicy
from repro.learning.schedulers import ActivationScheduler
from repro.util.rng import RngLike, spawn_rngs


@dataclass(frozen=True)
class ConvergenceStats:
    """Summary of step counts over repeated learning runs."""

    runs: int
    mean_steps: float
    median_steps: float
    p95_steps: float
    max_steps: int
    #: Fraction of runs whose potential trace was strictly increasing
    #: (should be 1.0; anything else is a bug witness).
    potential_monotone_fraction: float

    def as_row(self) -> List[float]:
        return [
            self.runs,
            self.mean_steps,
            self.median_steps,
            self.p95_steps,
            self.max_steps,
            self.potential_monotone_fraction,
        ]


def stats_from_steps(steps: Sequence[int], *, monotone: int) -> ConvergenceStats:
    """Fold raw per-run step counts into a :class:`ConvergenceStats`."""
    array = np.array(steps, dtype=float)
    return ConvergenceStats(
        runs=len(steps),
        mean_steps=float(array.mean()),
        median_steps=float(np.median(array)),
        p95_steps=float(np.percentile(array, 95)),
        max_steps=int(array.max()),
        potential_monotone_fraction=monotone / len(steps),
    )


def _deprecated_runner(runner: Optional[BatchRunner]) -> None:
    if runner is not None:
        warnings.warn(
            "runner= is deprecated; pass executor= (and max_workers=) instead — "
            "execution now routes through repro.run_many",
            DeprecationWarning,
            stacklevel=3,
        )


def measure_convergence(
    game: Game,
    *,
    runs: int = 20,
    policy: Optional[BetterResponsePolicy] = None,
    scheduler: Optional[ActivationScheduler] = None,
    audit_potential: bool = False,
    seed: RngLike = None,
    backend: str = "fast",
    executor: str = "auto",
    max_workers: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> ConvergenceStats:
    """Run learning *runs* times from random starts and summarize steps.

    *backend* selects the numeric loop (``"fast"`` kernel vs
    ``"exact"`` Fractions — identical step counts either way);
    *executor* selects the mechanism (see :func:`repro.run_many` —
    identical statistics in every mode). Potential audits need full
    trajectories and therefore always run serially in-process.

    .. deprecated:: 1.2
        ``runner=`` — pass ``executor=`` / ``max_workers=`` instead.
    """
    if runs < 1:
        raise ValueError(f"runs must be ≥ 1, got {runs}")
    _deprecated_runner(runner)
    if runner is not None and runner.backend != backend:
        raise ValueError(
            f"backend={backend!r} conflicts with runner.backend={runner.backend!r}; "
            "configure the backend on one of them"
        )
    root_seed = seed if isinstance(seed, int) else None
    if audit_potential:
        rngs = spawn_rngs(root_seed, 2 * runs)
        engine = LearningEngine(
            policy=policy,
            scheduler=scheduler,
            record_configurations=True,
            backend=backend,
        )
        steps: List[int] = []
        monotone = 0
        for run_index in range(runs):
            start = random_configuration(game, seed=rngs[2 * run_index])
            trajectory = engine.run(game, start, seed=rngs[2 * run_index + 1])
            steps.append(trajectory.length)
            if is_strictly_increasing_along(game, trajectory.configurations):
                monotone += 1
        return stats_from_steps(steps, monotone=monotone)
    if runner is not None:
        summaries = runner.run(
            game, runs=runs, policy=policy, scheduler=scheduler, seed=root_seed
        )
        return stats_from_steps([summary.steps for summary in summaries], monotone=runs)
    # One-cell ephemeral sweep in streaming mode: the fabric resolves
    # the seed (explicit ints pass through untouched, so numbers match
    # the pre-fabric route exactly) and the workers fold step counts
    # without materializing per-run summaries.
    from repro.sweep import SweepGrid, labeled, run_sweep

    grid = SweepGrid(
        {"game": [labeled("game", game)]},
        base=dict(
            runs=runs,
            policy=policy,
            scheduler=scheduler,
            backend=backend,
            seed=root_seed,
            stream=True,
        ),
    )
    cell_stats = run_sweep(grid, executor=executor, max_workers=max_workers).in_order()[0]
    return stats_from_steps(list(cell_stats.steps), monotone=runs)


def convergence_sweep(
    *,
    miner_counts: Sequence[int],
    coin_counts: Sequence[int],
    runs_per_cell: int = 10,
    policy: Optional[BetterResponsePolicy] = None,
    scheduler: Optional[ActivationScheduler] = None,
    power_distribution: str = "uniform",
    seed: int = 0,
    backend: str = "fast",
    executor: str = "auto",
    max_workers: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> Dict[tuple, ConvergenceStats]:
    """The E2 grid: convergence stats per (n miners, k coins) cell."""
    results: Dict[tuple, ConvergenceStats] = {}
    cell_rngs = spawn_rngs(seed, len(miner_counts) * len(coin_counts))
    index = 0
    for n in miner_counts:
        for k in coin_counts:
            rng = cell_rngs[index]
            index += 1
            game = random_game(
                n, k, power_distribution=power_distribution, seed=rng
            )
            results[(n, k)] = measure_convergence(
                game,
                runs=runs_per_cell,
                policy=policy,
                scheduler=scheduler,
                seed=int(rng.integers(0, 2**31)),
                backend=backend,
                executor=executor,
                max_workers=max_workers,
                runner=runner,
            )
    return results
