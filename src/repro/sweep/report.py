"""Merged sweep reports: deterministic, ``bench.json``-compatible.

A report is one JSON document summarizing every cell of a sweep — the
shape ``benchmarks/compare.py`` already diffs (a ``benchmarks`` list of
``{"fullname", "stats": {"mean", ...}}`` entries plus a
``repro_stamp``), so two sweeps can be compared with the same tool and
the same version-stamp guardrails as benchmark runs.

Determinism is a hard guarantee, not a convenience: the report contains
*no* wall-clock times, hostnames or timestamps — only per-cell
statistics of the deterministic result records (steps for trajectory
and class cells, activations for noisy cells) and content digests. A
sweep that was killed, resumed on another day, and merged from a
mixture of cached and fresh shards is therefore byte-identical to an
uninterrupted run (``tests/test_sweep_resume.py`` asserts exactly
that). Timings belong to the shard manifests, which are receipts, not
results.
"""

from __future__ import annotations

import hashlib
import json
import platform
from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from repro.kernel.batch import CellStats
from repro.sweep.cache import cell_result_to_records
from repro.sweep.grid import SweepCell

__all__ = ["REPORT_FORMAT", "build_report", "cell_entry", "result_stats"]

REPORT_FORMAT = "game-of-coins/sweep-report"
_REPORT_VERSION = 1


def _values_of(result: Any) -> List[int]:
    """The per-run metric of a cell result (steps, or activations)."""
    if isinstance(result, CellStats):
        return list(result.steps)
    values = []
    for record in result:
        if hasattr(record, "steps"):
            values.append(record.steps)
        else:
            values.append(record.activations)
    return values


def result_stats(result: Any) -> Dict[str, Any]:
    """Deterministic summary statistics of one cell result.

    ``mean``/``min``/``max``/``stddev`` over the per-run metric —
    the field names ``compare.py`` reads from pytest-benchmark
    ``bench.json`` stats, so merged reports diff with the same tool.
    """
    values = _values_of(result)
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    stats: Dict[str, Any] = {
        "mean": mean,
        "min": min(values),
        "max": max(values),
        "stddev": variance**0.5,
        "rounds": len(values),
    }
    if isinstance(result, CellStats):
        stats["converged"] = result.converged
    return stats


def _results_digest(result: Any) -> str:
    stream, records = cell_result_to_records(result)
    blob = json.dumps({"stream": stream, "results": records}, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def report_stamp() -> Dict[str, str]:
    """The version stamp embedded in reports (no host/time fields)."""
    from repro import __version__

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def cell_entry(cell: SweepCell, key: str) -> Dict[str, Any]:
    """The receipt row for one cell (what ``grid.json`` persists)."""
    return {
        "id": cell.cell_id,
        "fingerprint": cell.fingerprint,
        "key": key,
        "kind": cell.spec.kind,
        "stream": cell.spec.stream,
        "runs": cell.spec.runs,
    }


def build_report(
    entries: Sequence[Mapping[str, Any]],
    results: Mapping[str, Any],
) -> Dict[str, Any]:
    """Fold per-cell results into one deterministic report document.

    ``entries`` are :func:`cell_entry` rows (live cells or rows read
    back from a ``grid.json`` receipt — merging needs no specs);
    ``results`` maps cell ids to cell results. Every entry must be
    present in ``results`` — merging an incomplete sweep is an error
    surfaced by the caller with the missing ids.
    """
    benchmarks = []
    for entry in entries:
        result = results[entry["id"]]
        benchmarks.append(
            {
                "fullname": f"sweep::{entry['id']}",
                "stats": result_stats(result),
                "cell": entry["fingerprint"],
                "key": entry["key"],
                "kind": entry["kind"],
                "runs": entry["runs"],
                "results_digest": _results_digest(result),
            }
        )
    return {
        "format": REPORT_FORMAT,
        "version": _REPORT_VERSION,
        "units": "steps",
        "cells": len(benchmarks),
        "benchmarks": benchmarks,
        "repro_stamp": report_stamp(),
    }
