"""Declarative sweep grids: axes of ``RunSpec`` fields → deterministic cells.

A :class:`SweepGrid` is the declarative description of an experiment
grid — games × policies × schedulers × budgets × … — as a mapping of
:class:`~repro.run.RunSpec` field names to value lists, plus shared
``base`` fields, an optional ``exclude`` filter and an optional
per-cell ``override`` hook. :meth:`SweepGrid.cells` expands it (axis
order outer-to-inner, like nested loops) into :class:`SweepCell`
records, each carrying:

* a human-readable, path-safe **cell id** (``"game=5x2/policy=best-response"``)
  built from axis labels — strategies label themselves via ``.name``,
  anything can be labeled explicitly with :func:`labeled`;
* a **fingerprint**: the SHA-256 of the cell's canonical JSON form
  (exact game content, strategy identities, backend, budgets —
  everything that determines the distribution of results *except* the
  seed). The fingerprint is pure content: re-declaring the same cell in
  a different grid, order or process yields the same fingerprint.

Fingerprints make the fabric's determinism content-addressed rather
than positional:

* **append-stable seeding** — a cell without an explicit ``seed``
  derives its root ``SeedSequence`` from the sweep root's entropy
  extended with the fingerprint words, so adding, removing or
  reordering cells never changes another cell's randomness (a stronger
  guarantee than :func:`repro.run_many`'s cell-order spawning);
* **stable sharding** — :meth:`SweepCell.shard` places a cell by
  fingerprint modulo the shard count, so every host of a ``--shard
  K/N`` fleet agrees on the partition without coordination;
* **content-addressed caching** — :meth:`SweepCell.cache_key` hashes
  (fingerprint, resolved seed, library version) into the key the
  :class:`~repro.sweep.cache.ResultCache` stores results under, so any
  overlapping grid re-uses completed cells.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, fields as dataclass_fields
from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.game import Game
from repro.run import RunSpec

__all__ = [
    "Labeled",
    "SweepCell",
    "SweepGrid",
    "cell_fingerprint",
    "labeled",
    "parse_shard",
]

#: Seed descriptors are JSON values: an int, a word list, or a mapping.
SeedDescriptor = Union[int, List[int], Dict[str, Any]]


@dataclass(frozen=True)
class Labeled:
    """An axis value with an explicit label for cell ids."""

    label: str
    value: Any


def labeled(label: str, value: Any) -> Labeled:
    """Attach *label* to an axis value (``labeled("5x2", game)``)."""
    return Labeled(label, value)


# ----------------------------------------------------------------------
# Canonical cell form and fingerprints
# ----------------------------------------------------------------------


def _fraction_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _canonical_game(game: Any) -> Dict[str, Any]:
    """A JSON-ready content form of a per-miner or class-compressed game."""
    from repro.kernel.classes import ClassGame

    if isinstance(game, ClassGame):
        return {
            "kind": "classes",
            "classes": [
                [_fraction_str(power), int(count), [int(c) for c in alphabet]]
                for power, count, alphabet in zip(
                    game.power_fractions, game.populations, game.alphabets
                )
            ],
            "rewards": [_fraction_str(reward) for reward in game.reward_fractions],
            "coins": list(game.coin_names),
        }
    from repro.io import game_to_dict

    return game_to_dict(game)


def _strategy_identity(strategy: Any, default_factory: Callable[[], Any]) -> Dict[str, Any]:
    """Class path + ``.name`` of a policy/scheduler (defaults resolved)."""
    resolved = strategy if strategy is not None else default_factory()
    return {
        "class": f"{type(resolved).__module__}.{type(resolved).__qualname__}",
        "name": getattr(resolved, "name", None),
    }


def _engine_identity(engine: Any) -> Dict[str, Any]:
    """Canonical form of a noisy cell's engine configuration."""
    from repro.stochastic.noisy_engine import NoisyLearningEngine

    resolved = engine if engine is not None else NoisyLearningEngine()
    identity: Dict[str, Any] = {
        "class": f"{type(resolved).__module__}.{type(resolved).__qualname__}"
    }
    if isinstance(resolved, NoisyLearningEngine):
        budget = resolved.budget
        identity.update(
            budget=budget if isinstance(budget, int) else repr(budget),
            max_activations=resolved.max_activations,
            patience=resolved.patience,
            inertia=resolved.inertia,
            exploration=resolved.exploration,
        )
    else:
        # Custom engines must carry their configuration in repr() for
        # the fingerprint to distinguish configurations.
        identity["repr"] = repr(resolved)
    return identity


def _canonical_allowed(spec: RunSpec) -> Optional[List[List[Any]]]:
    if spec.allowed is None:
        return None
    from repro.core.restricted import normalize_mask

    mask = normalize_mask(spec.game, spec.allowed)
    if mask is None:
        return None
    return sorted(
        [miner.name, [coin.name for coin in coins]] for miner, coins in mask.items()
    )


def canonical_cell(spec: RunSpec) -> Dict[str, Any]:
    """The cell's canonical JSON form — everything but the seed.

    Two specs with equal canonical forms produce identically
    distributed results under equal seeds; the form (and therefore the
    fingerprint) deliberately excludes ``seed`` and ``label``.
    """
    from repro.learning.policies import RandomImprovingPolicy
    from repro.learning.schedulers import UniformRandomScheduler

    payload: Dict[str, Any] = {
        "format": "game-of-coins/sweep-cell",
        "version": 1,
        "game": _canonical_game(spec.game),
        "kind": spec.kind,
        "runs": spec.runs,
        "backend": spec.backend,
        "max_steps": spec.max_steps,
        "allowed": _canonical_allowed(spec),
        "stream": spec.stream,
    }
    if spec.kind == "noisy":
        payload["engine"] = _engine_identity(spec.engine)
    elif spec.kind == "classes":
        payload["policy"] = spec.policy if spec.policy is not None else "random-improving"
        payload["scheduler"] = spec.scheduler if spec.scheduler is not None else "uniform"
    else:
        payload["policy"] = _strategy_identity(spec.policy, RandomImprovingPolicy)
        payload["scheduler"] = _strategy_identity(spec.scheduler, UniformRandomScheduler)
    return payload


def cell_fingerprint(spec: RunSpec) -> str:
    """SHA-256 hex digest of :func:`canonical_cell`."""
    blob = json.dumps(canonical_cell(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _entropy_words(sequence: np.random.SeedSequence) -> List[int]:
    entropy = sequence.entropy
    if entropy is None:
        return [0]
    if isinstance(entropy, (int, np.integer)):
        return [int(entropy)]
    return [int(word) for word in entropy]


def seed_descriptor(seed: Any) -> SeedDescriptor:
    """A JSON-able description of a seed (int or ``SeedSequence``)."""
    if isinstance(seed, np.random.SeedSequence):
        return {
            "entropy": _entropy_words(seed),
            "spawn_key": [int(k) for k in seed.spawn_key],
        }
    return int(seed)


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid cell: id, spec, and its content fingerprint."""

    cell_id: str
    spec: RunSpec
    fingerprint: str

    def shard(self, n_shards: int) -> int:
        """This cell's 0-based shard index under an *n_shards* partition."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be ≥ 1, got {n_shards}")
        return int(self.fingerprint[:16], 16) % n_shards

    def resolve_seed(self, root: np.random.SeedSequence) -> Any:
        """The seed this cell runs under: explicit, or fingerprint-derived.

        An explicit ``spec.seed`` passes through untouched (so grids
        wrapping legacy experiments reproduce their numbers exactly).
        Otherwise the cell's root is ``SeedSequence(root entropy +
        fingerprint words)`` — append-stable and independent of the
        cell's position in the grid.
        """
        if self.spec.seed is not None:
            return self.spec.seed
        words = [int(self.fingerprint[i : i + 16], 16) for i in range(0, 64, 16)]
        return np.random.SeedSequence(_entropy_words(root) + words)

    def cache_key(self, root: np.random.SeedSequence, *, version: Optional[str] = None) -> str:
        """Content address of this cell's results under *root*.

        SHA-256 over (fingerprint, resolved seed descriptor, library
        version) — the full provenance of the result bytes, so a cache
        can never serve results produced by different code, different
        randomness, or a different cell.
        """
        if version is None:
            from repro import __version__ as version
        blob = json.dumps(
            {
                "cell": self.fingerprint,
                "seed": seed_descriptor(self.resolve_seed(root)),
                "repro": version,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def parse_shard(shard: Union[None, str, Tuple[int, int]]) -> Optional[Tuple[int, int]]:
    """Normalize a ``--shard K/N`` argument to 1-based ``(K, N)``."""
    if shard is None:
        return None
    if isinstance(shard, str):
        match = re.fullmatch(r"(\d+)/(\d+)", shard.strip())
        if not match:
            raise ValueError(f"shard must look like 'K/N' (e.g. '2/8'), got {shard!r}")
        index, count = int(match.group(1)), int(match.group(2))
    else:
        index, count = shard
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard index must satisfy 1 ≤ K ≤ N, got {index}/{count}")
    return index, count


# ----------------------------------------------------------------------
# Grids
# ----------------------------------------------------------------------

_RUNSPEC_FIELDS = frozenset(field.name for field in dataclass_fields(RunSpec))

_LABEL_SANITIZE = re.compile(r"[^A-Za-z0-9_.,()+^-]+")


def _auto_label(value: Any) -> str:
    from repro.kernel.classes import ClassGame

    if value is None:
        return "none"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, (str, int, float)):
        return str(value)
    if isinstance(value, Fraction):
        return f"{value.numerator}-{value.denominator}"
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    if isinstance(value, (Game, ClassGame)):
        blob = json.dumps(_canonical_game(value), sort_keys=True, separators=(",", ":"))
        return "game-" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:8]
    digest = hashlib.sha256(repr(value).encode("utf-8")).hexdigest()[:8]
    return f"{type(value).__name__.lower()}-{digest}"


def _sanitize_label(label: str) -> str:
    clean = _LABEL_SANITIZE.sub("-", label).strip("-")
    return clean or "value"


class SweepGrid:
    """Axes of ``RunSpec`` fields, expanded deterministically into cells.

    Parameters
    ----------
    axes:
        Ordered mapping of ``RunSpec`` field name → sequence of values.
        The cartesian product is walked with the *first* axis outermost
        (like nested for-loops in declaration order). Values label
        themselves in cell ids (``.name`` for strategies, ``str`` for
        scalars, a content hash for games); wrap a value in
        :func:`labeled` to choose the label.
    base:
        ``RunSpec`` fields shared by every cell (e.g. ``runs``,
        ``backend``, ``stream``).
    exclude:
        Optional predicate over the axis-value dict; cells where it
        returns True are dropped from the grid.
    override:
        Optional hook over the axis-value dict returning extra
        ``RunSpec`` fields for that cell (e.g. a legacy per-cell
        ``seed``, or an ``engine`` built from a ``budget`` axis value).
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        *,
        base: Optional[Mapping[str, Any]] = None,
        exclude: Optional[Callable[[Dict[str, Any]], bool]] = None,
        override: Optional[Callable[[Dict[str, Any]], Optional[Mapping[str, Any]]]] = None,
    ) -> None:
        if not axes:
            raise ValueError("a sweep grid needs at least one axis")
        self.axes: Dict[str, List[Any]] = {}
        for key, values in axes.items():
            values = list(values)
            if not values:
                raise ValueError(f"axis {key!r} has no values")
            self.axes[key] = values
        self.base: Dict[str, Any] = dict(base or {})
        for key in itertools.chain(self.axes, self.base):
            if key not in _RUNSPEC_FIELDS:
                raise ValueError(
                    f"{key!r} is not a RunSpec field; axes and base must use "
                    f"RunSpec field names ({', '.join(sorted(_RUNSPEC_FIELDS))})"
                )
        overlap = set(self.axes) & set(self.base)
        if overlap:
            raise ValueError(f"axes and base both set {sorted(overlap)}")
        self.exclude = exclude
        self.override = override
        self._cells: Optional[List[SweepCell]] = None

    def cells(self) -> List[SweepCell]:
        """Expand (and memoize) the grid into labeled fingerprinted cells."""
        if self._cells is not None:
            return self._cells
        axis_items: List[List[Tuple[str, str, Any]]] = []
        for key, values in self.axes.items():
            entries = []
            for value in values:
                if isinstance(value, Labeled):
                    label, raw = value.label, value.value
                else:
                    label, raw = _auto_label(value), value
                entries.append((key, _sanitize_label(label), raw))
            axis_items.append(entries)
        cells: List[SweepCell] = []
        seen: Dict[str, int] = {}
        for combo in itertools.product(*axis_items):
            values = {key: raw for key, _, raw in combo}
            if self.exclude is not None and self.exclude(dict(values)):
                continue
            params = dict(self.base)
            params.update(values)
            if self.override is not None:
                extra = self.override(dict(values))
                if extra:
                    for key in extra:
                        if key not in _RUNSPEC_FIELDS:
                            raise ValueError(f"override returned non-RunSpec field {key!r}")
                    params.update(extra)
            cell_id = "/".join(f"{key}={label}" for key, label, _ in combo)
            if params.get("label") is None:
                params["label"] = cell_id
            spec = RunSpec(**params)
            if cell_id in seen:
                raise ValueError(
                    f"duplicate cell id {cell_id!r}; label axis values explicitly "
                    "with labeled(...) to disambiguate"
                )
            seen[cell_id] = 1
            cells.append(SweepCell(cell_id, spec, cell_fingerprint(spec)))
        if not cells:
            raise ValueError("grid expanded to zero cells (exclude dropped everything)")
        self._cells = cells
        return cells

    def __len__(self) -> int:
        return len(self.cells())
