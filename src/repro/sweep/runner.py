"""Sweep execution: shards, resume, caching, merge.

:func:`run_sweep` drives a :class:`~repro.sweep.grid.SweepGrid` through
:func:`repro.run_many` with three fabric guarantees layered on top:

**Sharding.** With ``shard="K/N"`` (1-based) only the cells whose
fingerprint lands in shard *K* of an *N*-way partition run — the
partition is a pure function of cell content, so N hosts given the same
grid and root seed agree on it with zero coordination. Each shard
appends a JSONL manifest under ``<out>/shards/`` recording what it
opened, computed, hit in cache and finished (with wall times — the
manifests are receipts; the deterministic results live in the cache).

**Resume.** A completed cell's result is stored in the content-addressed
:class:`~repro.sweep.cache.ResultCache` under ``<out>/cache/`` via an
atomic rename. A killed sweep restarted with the same arguments
re-loads every completed cell as a cache hit and re-runs only the rest
— correctness needs no journal replay because the cache write *is* the
commit point. Overlapping grids (same cells, different sweep) hit the
same entries.

**Merge.** When every cell of the grid is complete,
:func:`merge_sweep` (or ``run_sweep`` itself, when it ran unsharded)
folds the cached results into one deterministic
``bench.json``-compatible report at ``<out>/report.json`` — killed,
resumed, sharded-across-hosts and uninterrupted sweeps all produce
byte-identical reports.

Without ``out=`` the fabric runs *ephemerally* — no cache, no
manifests, all pending cells in one :func:`repro.run_many` call (so
vectorized cross-cell packing still applies). That is the mode the
in-process callers (``measure_convergence``, E2/E9/E15) use: same
grid declaration, same seeds, no filesystem footprint.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.log import get_logger
from repro.obs.recorder import get_recorder
from repro.run import run_many
from repro.sweep.cache import ResultCache
from repro.sweep.grid import SweepCell, SweepGrid, parse_shard, seed_descriptor
from repro.sweep.report import build_report, cell_entry

__all__ = ["SweepError", "SweepResult", "merge_sweep", "run_sweep"]

logger = get_logger("sweep")

GRID_FORMAT = "game-of-coins/sweep-grid"
_GRID_VERSION = 1


class SweepError(RuntimeError):
    """A sweep-fabric failure (bad arguments, unmergeable state)."""


@dataclass
class SweepResult:
    """What one :func:`run_sweep` call produced (this shard's view)."""

    #: Cells this call was responsible for, in grid order.
    cells: List[SweepCell]
    #: Cell id → cell result (records list, or a streamed aggregate).
    results: Dict[str, Any]
    #: Cell id → content-addressed cache key.
    keys: Dict[str, str]
    cache_hits: int = 0
    cache_misses: int = 0
    #: Output directory (None for ephemeral sweeps).
    out: Optional[str] = None
    #: Merged report (present when this call completed the whole grid).
    report: Optional[Dict[str, Any]] = None
    #: Path of the written report, when ``out`` was set and merged.
    report_path: Optional[str] = None
    wall_seconds: float = 0.0
    shard: Optional[Tuple[int, int]] = None
    _order: List[str] = field(default_factory=list, repr=False)

    def in_order(self) -> List[Any]:
        """Results of this call's cells, in grid order."""
        return [self.results[cell_id] for cell_id in self._order]


def _root_sequence(seed: Any) -> np.random.SeedSequence:
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def _write_grid_receipt(
    out: str,
    entries: Sequence[Dict[str, Any]],
    root_desc: Any,
    n_shards: int,
    *,
    force: bool,
) -> str:
    """Persist (atomically) what this grid is, for merge and resume checks."""
    from repro import __version__
    from repro.io import write_json_atomic

    path = os.path.join(out, "grid.json")
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            previous = None
        if previous is not None and not force:
            if previous.get("root") != root_desc:
                raise SweepError(
                    f"{path} was written with root seed {previous.get('root')!r}, "
                    f"this sweep uses {root_desc!r}; cached results would never "
                    "match. Use a fresh --out directory or pass force=True."
                )
    payload = {
        "format": GRID_FORMAT,
        "version": _GRID_VERSION,
        "root": root_desc,
        "repro_version": __version__,
        "n_shards": n_shards,
        "cells": list(entries),
    }
    return write_json_atomic(payload, path)


class _ShardManifest:
    """Append-only JSONL journal of one shard's progress (a receipt).

    Append mode is deliberate: a resumed shard continues the same file,
    so the journal shows the kill and the resume — it is never the
    source of truth (the cache is), so replaying it is unnecessary and
    clobbering it would destroy the evidence.
    """

    def __init__(self, path: str, *, truncate: bool = False) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self.path = path
        self._handle = open(path, "w" if truncate else "a", encoding="utf-8")

    def write(self, event: str, **fields: Any) -> None:
        record = {"event": event}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


def run_sweep(
    grid: SweepGrid,
    *,
    out: Optional[str] = None,
    seed: Any = None,
    executor: str = "auto",
    max_workers: Optional[int] = None,
    shard: Union[None, str, Tuple[int, int]] = None,
    wave: Optional[int] = None,
    resume: bool = True,
    force: bool = False,
) -> SweepResult:
    """Run (this shard of) *grid*, caching, resuming and merging.

    Parameters
    ----------
    out:
        Sweep directory (created): ``cache/`` entries, ``shards/``
        manifests, ``grid.json`` receipt, and — once the whole grid is
        complete — ``report.json``. ``None`` runs ephemerally (no
        filesystem footprint, no resume).
    seed:
        Root seed (int, ``SeedSequence`` or None). Cells with explicit
        ``RunSpec.seed`` ignore it; all others derive append-stable
        roots from it plus their fingerprint.
    shard:
        ``"K/N"`` (or 1-based ``(K, N)``): run only shard K of the
        fingerprint partition. Requires ``out`` (shards meet in the
        cache). The merged report is written by whichever invocation
        finds the grid complete — normally a final ``merge_sweep``.
    wave:
        Cells per :func:`repro.run_many` call. Default: all pending
        cells in one call (best vectorized packing); ``wave=1`` commits
        each cell to cache before starting the next (finest resume
        granularity — what the CLI uses).
    resume:
        Load completed cells from the cache (default). ``resume=False``
        recomputes everything; with an existing sweep directory it
        refuses unless ``force`` is also set.
    force:
        Override the root-seed receipt check and the ``resume=False``
        clobber refusal.
    """
    cells = grid.cells()
    shard_kn = parse_shard(shard)
    if shard_kn is not None and out is None:
        raise SweepError("shard= requires out=: shards meet in the cache directory")
    root = _root_sequence(seed)
    root_desc = seed_descriptor(root)
    from repro import __version__

    keys = {cell.cell_id: cell.cache_key(root, version=__version__) for cell in cells}
    entries = [cell_entry(cell, keys[cell.cell_id]) for cell in cells]

    if shard_kn is None:
        mine = list(cells)
        shard_index, n_shards = 1, 1
    else:
        shard_index, n_shards = shard_kn
        mine = [cell for cell in cells if cell.shard(n_shards) == shard_index - 1]

    recorder = get_recorder()
    observing = recorder.enabled
    if observing:
        recorder.count("sweep.runs")
        recorder.count("sweep.cells", len(mine))
        recorder.event(
            "sweep.open",
            cells=len(cells),
            mine=len(mine),
            shard=shard_index,
            of=n_shards,
            out=out,
        )

    cache: Optional[ResultCache] = None
    manifest: Optional[_ShardManifest] = None
    started = perf_counter()
    if out is not None:
        os.makedirs(out, exist_ok=True)
        _write_grid_receipt(out, entries, root_desc, n_shards, force=force)
        cache = ResultCache(os.path.join(out, "cache"))
        manifest_path = os.path.join(
            out, "shards", f"shard-{shard_index}-of-{n_shards}.jsonl"
        )
        if not resume and os.path.exists(manifest_path) and not force:
            raise SweepError(
                f"{manifest_path} exists and resume=False would restart the "
                "shard; pass force=True to truncate it (or leave resume on)"
            )
        manifest = _ShardManifest(manifest_path, truncate=(not resume and force))
        manifest.write(
            "shard.open",
            shard=shard_index,
            of=n_shards,
            cells=len(mine),
            grid_cells=len(cells),
            root=root_desc,
            pid=os.getpid(),
            resume=resume,
        )

    results: Dict[str, Any] = {}
    hits = 0
    pending: List[SweepCell] = []
    for cell in mine:
        key = keys[cell.cell_id]
        cached = cache.load(key) if (cache is not None and resume) else None
        if cached is not None:
            hits += 1
            results[cell.cell_id] = cached
            if manifest is not None:
                manifest.write("cell.done", cell=cell.cell_id, key=key, cached=True)
        else:
            pending.append(cell)

    try:
        wave_size = max(1, len(pending) if wave is None else wave)
        for start in range(0, len(pending), wave_size):
            batch = pending[start : start + wave_size]
            specs = [
                replace(cell.spec, seed=cell.resolve_seed(root)) for cell in batch
            ]
            wave_started = perf_counter()
            batch_results = run_many(
                specs, executor=executor, max_workers=max_workers
            )
            wave_wall = perf_counter() - wave_started
            for cell, result in zip(batch, batch_results):
                key = keys[cell.cell_id]
                results[cell.cell_id] = result
                if cache is not None:
                    cache.store(key, result, cell_id=cell.cell_id)
                if manifest is not None:
                    manifest.write("cell.done", cell=cell.cell_id, key=key, cached=False)
            if manifest is not None and len(pending) > len(batch):
                manifest.write(
                    "wave.done", cells=len(batch), wall=round(wave_wall, 6)
                )
        wall = perf_counter() - started
        if manifest is not None:
            manifest.write(
                "shard.done",
                cells=len(mine),
                hits=hits,
                misses=len(pending),
                wall=round(wall, 6),
            )
    finally:
        if manifest is not None:
            manifest.close()

    if observing:
        recorder.event(
            "sweep.done",
            cells=len(mine),
            hits=hits,
            misses=len(pending),
            wall=round(perf_counter() - started, 6),
        )

    result = SweepResult(
        cells=mine,
        results=results,
        keys={cell.cell_id: keys[cell.cell_id] for cell in mine},
        cache_hits=hits,
        cache_misses=len(pending),
        out=out,
        wall_seconds=perf_counter() - started,
        shard=shard_kn,
        _order=[cell.cell_id for cell in mine],
    )
    if shard_kn is None:
        # This call owned the whole grid: merge now.
        result.report = build_report(entries, results)
        if out is not None:
            from repro.io import write_json_atomic

            result.report_path = write_json_atomic(
                result.report, os.path.join(out, "report.json"), sort_keys=False
            )
    return result


def merge_sweep(out: str, *, write: bool = True) -> Dict[str, Any]:
    """Merge a sweep directory's cached cells into the final report.

    Reads the ``grid.json`` receipt, loads every cell from the cache,
    and raises :class:`SweepError` naming the incomplete cells (and the
    shards that own them) if any are missing — the caller re-runs those
    shards and merges again. With ``write=True`` (default) the report
    is also written atomically to ``<out>/report.json``.
    """
    path = os.path.join(out, "grid.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            receipt = json.load(handle)
    except FileNotFoundError:
        raise SweepError(f"{out!r} has no grid.json receipt; was a sweep run there?")
    if receipt.get("format") != GRID_FORMAT:
        raise SweepError(f"{path} is not a sweep grid receipt")
    from repro.sweep.cache import cell_result_from_records

    cache = ResultCache(os.path.join(out, "cache"))
    entries = receipt["cells"]
    n_shards = int(receipt.get("n_shards", 1))
    results: Dict[str, Any] = {}
    missing: List[str] = []
    for entry in entries:
        key = entry["key"]
        try:
            with open(cache.path_for(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            results[entry["id"]] = cell_result_from_records(
                payload["stream"], payload["results"]
            )
        except (OSError, ValueError, KeyError):
            shard_of = int(entry["fingerprint"][:16], 16) % n_shards + 1
            missing.append(f"{entry['id']} (shard {shard_of}/{n_shards})")
    if missing:
        preview = "; ".join(missing[:8])
        more = f" … and {len(missing) - 8} more" if len(missing) > 8 else ""
        raise SweepError(
            f"sweep at {out!r} is incomplete: {len(missing)}/{len(entries)} "
            f"cell(s) missing — {preview}{more}. Re-run the owning shards, "
            "then merge again."
        )
    report = build_report(entries, results)
    if write:
        from repro.io import write_json_atomic

        write_json_atomic(report, os.path.join(out, "report.json"), sort_keys=False)
    return report
