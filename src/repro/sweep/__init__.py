"""The sweep fabric: declarative grids → sharded, cached, merged runs.

The grid layer above :func:`repro.run_many`. A
:class:`~repro.sweep.grid.SweepGrid` declares an experiment grid as
axes of :class:`~repro.run.RunSpec` fields; :func:`~repro.sweep.runner.run_sweep`
executes it with content-addressed determinism:

* every cell gets a **fingerprint** (SHA-256 of its canonical content)
  that drives append-stable seeding, a coordination-free ``--shard
  K/N`` partition across processes and hosts, and a
  **content-addressed result cache** — re-running any overlapping grid
  is a cache hit (``sweep.cache.hits`` / ``.misses`` on the
  :mod:`repro.obs` recorder);
* progress journals to **append-only JSONL shard manifests**, and cache
  commits are **atomic renames**, so a killed sweep resumes by
  re-running only its incomplete cells;
* completed sweeps merge into one deterministic,
  ``bench.json``-compatible **report** that ``benchmarks/compare.py``
  diffs — byte-identical whether the sweep ran uninterrupted, was
  killed and resumed, or ran sharded across hosts.

``measure_convergence`` and the E2/E9/E15 experiment grids route
through this fabric (see each experiment's ``sweep_grid()``); the CLI
front end is ``python -m repro sweep``.
"""

from repro.sweep.cache import ResultCache, result_from_dict, result_to_dict
from repro.sweep.grid import (
    Labeled,
    SweepCell,
    SweepGrid,
    cell_fingerprint,
    labeled,
    parse_shard,
)
from repro.sweep.report import REPORT_FORMAT, build_report, cell_entry, result_stats
from repro.sweep.runner import SweepError, SweepResult, merge_sweep, run_sweep

__all__ = [
    "Labeled",
    "REPORT_FORMAT",
    "ResultCache",
    "SweepCell",
    "SweepError",
    "SweepGrid",
    "SweepResult",
    "build_report",
    "cell_entry",
    "cell_fingerprint",
    "labeled",
    "merge_sweep",
    "parse_shard",
    "result_from_dict",
    "result_stats",
    "result_to_dict",
    "run_sweep",
]
