"""Content-addressed result cache for sweep cells.

Entries live at ``<root>/<key[:2]>/<key>.json`` where ``key`` is
:meth:`~repro.sweep.grid.SweepCell.cache_key` — the SHA-256 of (cell
fingerprint, resolved seed, library version). Because the address
*is* the provenance, any grid that declares an equivalent cell under
the same root seed re-uses the entry, and entries written by different
library versions or seeds can never collide.

Writes are atomic (:func:`repro.io.write_json_atomic`), so a cache
entry either exists completely or not at all — which is exactly the
resume predicate :func:`~repro.sweep.runner.run_sweep` uses after a
crash: corrupt or truncated files (impossible via this writer, but
possible via copy tools) simply read as a miss and the cell re-runs.

Hits, misses and writes are counted on the active
:mod:`repro.obs` recorder (``sweep.cache.hits`` /
``sweep.cache.misses`` / ``sweep.cache.writes``).

Result records round-trip exactly: :class:`TrajectorySummary`,
:class:`CellStats`, :class:`NoisyRunResult` and :class:`ClassRunResult`
are all counts, names and verdicts (no Fractions), so JSON preserves
them bit-for-bit and a cache hit compares equal to the freshly
computed object.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.io import write_json_atomic
from repro.kernel.batch import CellStats, TrajectorySummary
from repro.kernel.classes import ClassRunResult
from repro.obs.recorder import get_recorder
from repro.stochastic.noisy_engine import NoisyRunResult

__all__ = ["ResultCache", "result_from_dict", "result_to_dict"]

_ENTRY_FORMAT = "game-of-coins/sweep-cache-entry"
_ENTRY_VERSION = 1


def result_to_dict(result: Any) -> Dict[str, Any]:
    """A typed JSON form of one run record (or streamed aggregate)."""
    if isinstance(result, TrajectorySummary):
        return {
            "type": "trajectory",
            "run_index": result.run_index,
            "policy_name": result.policy_name,
            "scheduler_name": result.scheduler_name,
            "steps": result.steps,
            "converged": result.converged,
            "final_coins": list(result.final_coins),
        }
    if isinstance(result, CellStats):
        return {
            "type": "stats",
            "runs": result.runs,
            "policy_name": result.policy_name,
            "scheduler_name": result.scheduler_name,
            "steps": list(result.steps),
            "converged": result.converged,
            "finals": [[list(coins), count] for coins, count in result.finals],
        }
    if isinstance(result, NoisyRunResult):
        return {
            "type": "noisy",
            "run_index": result.run_index,
            "final_coins": list(result.final_coins),
            "activations": result.activations,
            "moves": result.moves,
            "settled": result.settled,
            "reached_equilibrium": result.reached_equilibrium,
            "rounds_sampled": result.rounds_sampled,
        }
    if isinstance(result, ClassRunResult):
        return {
            "type": "classes",
            "run_index": result.run_index,
            "policy": result.policy,
            "scheduler": result.scheduler,
            "steps": result.steps,
            "moved": result.moved,
            "converged": result.converged,
            "final": [list(row) for row in result.final],
        }
    raise TypeError(f"no cache serialization for {type(result).__name__}")


def result_from_dict(payload: Dict[str, Any]) -> Any:
    """Rebuild the exact record :func:`result_to_dict` serialized."""
    kind = payload.get("type")
    if kind == "trajectory":
        return TrajectorySummary(
            run_index=payload["run_index"],
            policy_name=payload["policy_name"],
            scheduler_name=payload["scheduler_name"],
            steps=payload["steps"],
            converged=payload["converged"],
            final_coins=tuple(payload["final_coins"]),
        )
    if kind == "stats":
        return CellStats(
            runs=payload["runs"],
            policy_name=payload["policy_name"],
            scheduler_name=payload["scheduler_name"],
            steps=tuple(payload["steps"]),
            converged=payload["converged"],
            finals=tuple((tuple(coins), count) for coins, count in payload["finals"]),
        )
    if kind == "noisy":
        return NoisyRunResult(
            run_index=payload["run_index"],
            final_coins=tuple(payload["final_coins"]),
            activations=payload["activations"],
            moves=payload["moves"],
            settled=payload["settled"],
            reached_equilibrium=payload["reached_equilibrium"],
            rounds_sampled=payload["rounds_sampled"],
        )
    if kind == "classes":
        return ClassRunResult(
            run_index=payload["run_index"],
            policy=payload["policy"],
            scheduler=payload["scheduler"],
            steps=payload["steps"],
            moved=payload["moved"],
            converged=payload["converged"],
            final=tuple(tuple(row) for row in payload["final"]),
        )
    raise ValueError(f"unknown cached result type {kind!r}")


def cell_result_to_records(result: Any) -> Tuple[bool, List[Dict[str, Any]]]:
    """``(stream, record dicts)`` for a cell result (aggregate or list)."""
    if isinstance(result, CellStats):
        return True, [result_to_dict(result)]
    return False, [result_to_dict(record) for record in result]


def cell_result_from_records(stream: bool, records: List[Dict[str, Any]]) -> Any:
    rebuilt = [result_from_dict(record) for record in records]
    if stream:
        if len(rebuilt) != 1:
            raise ValueError(f"streamed entry must hold one aggregate, got {len(rebuilt)}")
        return rebuilt[0]
    return rebuilt


class ResultCache:
    """Filesystem cache of completed cell results, addressed by key."""

    def __init__(self, root: str) -> None:
        self.root = root

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def load(self, key: str) -> Optional[Any]:
        """The cached cell result, or None (counted as hit/miss)."""
        recorder = get_recorder()
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != _ENTRY_FORMAT or payload.get("key") != key:
                raise ValueError("not a cache entry for this key")
            result = cell_result_from_records(payload["stream"], payload["results"])
        except FileNotFoundError:
            if recorder.enabled:
                recorder.count("sweep.cache.misses")
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Truncated/corrupt/foreign file: a miss, never an error —
            # the cell recomputes and the atomic store replaces it.
            if recorder.enabled:
                recorder.count("sweep.cache.misses")
            return None
        if recorder.enabled:
            recorder.count("sweep.cache.hits")
        return result

    def store(self, key: str, result: Any, *, cell_id: Optional[str] = None) -> str:
        """Atomically persist one completed cell result under *key*."""
        stream, records = cell_result_to_records(result)
        payload = {
            "format": _ENTRY_FORMAT,
            "version": _ENTRY_VERSION,
            "key": key,
            "cell_id": cell_id,
            "stream": stream,
            "results": records,
        }
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        write_json_atomic(payload, path, indent=None, sort_keys=True)
        recorder = get_recorder()
        if recorder.enabled:
            recorder.count("sweep.cache.writes")
        return path
