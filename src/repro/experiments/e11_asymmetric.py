"""E11 — extension: the asymmetric case (paper Discussion).

Restricts coins to hardware classes (e.g. SHA256d vs Scrypt rigs) and
verifies that the paper's machinery survives, in two tiers:

* **Empirical tier** — legal better-response learning still converges
  (the ordinal potential argument never used full strategy sets), the
  restricted greedy construction still yields equilibria, and the
  table reports how restrictions change convergence time and the
  miners' payoff distribution.
* **Exact-enumeration tier** — the mask-aware
  :class:`~repro.kernel.space.ConfigSpace` engine walks every
  mask-valid configuration and certifies, per game: the *full*
  restricted equilibrium count, the restricted improvement DAG's
  acyclicity (Theorem 1 under restriction), and the exact longest
  restricted improving path (the tight worst case over every legal
  scheduler/policy/start). The empirical tier is then audited against
  it: every converged run must land in the enumerated sink set, and
  the greedy construction is in the set exactly when it is stable.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.paths import analyze_improvement_dag
from repro.core.factories import random_configuration, random_game
from repro.core.restricted import RestrictedGame
from repro.experiments.common import ExperimentResult
from repro.learning.restricted_engine import RestrictedLearningEngine
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


def _hardware_split(game, rng, scrypt_fraction=0.4):
    """Randomly assign hardware classes; coins split between algorithms."""
    coin_algorithms = {}
    for index, coin in enumerate(game.coins):
        coin_algorithms[coin.name] = "scrypt" if index % 2 else "sha256d"
    miner_hardware = {}
    for miner in game.miners:
        miner_hardware[miner.name] = (
            "scrypt" if rng.random() < scrypt_fraction else "sha256d"
        )
    return coin_algorithms, miner_hardware


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Extension: asymmetric (hardware-restricted) mining"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=4, miners=8, coins=4, starts_per_game=3)


def run(
    *,
    games: int = 10,
    miners: int = 10,
    coins: int = 4,
    starts_per_game: int = 5,
    enumeration_limit: int = 200_000,
    seed: int = 0,
) -> ExperimentResult:
    """Convergence and exact structure of hardware-restricted games.

    ``enumeration_limit`` caps the per-game mask-valid configuration
    count the exact tier will scan; games above it show ``-`` in the
    enumeration columns (hardware splits keep the masked space tiny —
    ``2^10 = 1024`` at the defaults, vs ``4^10 ≈ 1M`` unmasked).
    """
    table = Table(
        "E11 — asymmetric mining (hardware-restricted coins)",
        [
            "game",
            "restricted miners",
            "runs",
            "converged",
            "mean steps (restricted)",
            "mean steps (free)",
            "greedy stable",
            "equilibria (exact)",
            "longest path (exact)",
        ],
    )
    rngs = spawn_rngs(seed, games)
    total_runs = 0
    converged_runs = 0
    greedy_ok = 0
    potential_ok = True
    enumerated_games = 0
    dag_acyclic = True
    finals_in_sinks = True
    greedy_matches_enumeration = True
    equilibrium_counts = []
    longest_paths = []
    for index in range(games):
        rng = rngs[index]
        game = random_game(miners, coins, seed=rng)
        coin_algorithms, miner_hardware = _hardware_split(game, rng)
        restricted = RestrictedGame.by_algorithm(game, coin_algorithms, miner_hardware)

        engine = RestrictedLearningEngine(mode="random")
        free_engine_steps = []
        restricted_steps = []
        converged_here = 0
        finals = []
        for start_index in range(starts_per_game):
            # Start everyone on an allowed coin.
            assignment = {
                miner: restricted.allowed_coins(miner)[
                    int(rng.integers(0, len(restricted.allowed_coins(miner))))
                ]
                for miner in game.miners
            }
            from repro.core.configuration import Configuration

            start = Configuration.from_mapping(game.miners, assignment)
            trajectory = engine.run(restricted, start, seed=int(rng.integers(0, 2**31)))
            total_runs += 1
            converged_runs += int(trajectory.converged)
            converged_here += int(trajectory.converged)
            restricted_steps.append(trajectory.length)
            if trajectory.converged:
                finals.append(trajectory.final)
            # Potential audit along the restricted path.
            for i in range(len(trajectory.configurations) - 1):
                if (
                    restricted.compare_potential(
                        trajectory.configurations[i], trajectory.configurations[i + 1]
                    )
                    >= 0
                ):
                    potential_ok = False

            from repro.learning.engine import LearningEngine

            free = LearningEngine(record_configurations=False).run(
                game, random_configuration(game, seed=rng), seed=int(rng.integers(0, 2**31))
            )
            free_engine_steps.append(free.length)

        greedy = restricted.greedy_equilibrium()
        stable = restricted.is_stable(greedy)
        greedy_ok += int(stable)

        # Exact-enumeration tier: the mask-aware space engine certifies
        # the full restricted equilibrium set and the worst-case legal
        # improving path, and audits the empirical tier against them.
        if restricted.configuration_count() <= enumeration_limit:
            analysis = analyze_improvement_dag(restricted, limit=enumeration_limit)
            enumerated_games += 1
            dag_acyclic = dag_acyclic and analysis.acyclic
            sinks = set(analysis.sinks)
            finals_in_sinks = finals_in_sinks and all(
                final in sinks for final in finals
            )
            greedy_matches_enumeration = greedy_matches_enumeration and (
                (greedy in sinks) == stable
            )
            equilibrium_counts.append(len(analysis.sinks))
            longest_paths.append(analysis.longest_path)
            equilibria_cell = str(len(analysis.sinks))
            longest_cell = str(analysis.longest_path)
        else:
            equilibria_cell = "-"
            longest_cell = "-"

        restricted_count = sum(
            1
            for miner in game.miners
            if len(restricted.allowed_coins(miner)) < len(game.coins)
        )
        table.add_row(
            f"#{index}",
            f"{restricted_count}/{miners}",
            starts_per_game,
            f"{converged_here}/{starts_per_game}",
            float(np.mean(restricted_steps)),
            float(np.mean(free_engine_steps)),
            "yes" if stable else "NO",
            equilibria_cell,
            longest_cell,
        )
    return ExperimentResult(
        experiment="E11",
        table=table,
        metrics={
            "convergence_rate": converged_runs / total_runs if total_runs else 1.0,
            "greedy_stable_rate": greedy_ok / games,
            "potential_monotone": potential_ok,
            "enumerated_games": enumerated_games,
            "restricted_dag_acyclic": dag_acyclic,
            "finals_in_enumerated_sinks": finals_in_sinks,
            "greedy_matches_enumeration": greedy_matches_enumeration,
            "mean_equilibria": (
                float(np.mean(equilibrium_counts)) if equilibrium_counts else 0.0
            ),
            "max_longest_path": max(longest_paths) if longest_paths else 0,
        },
    )
