"""E11 — extension: the asymmetric case (paper Discussion).

Restricts coins to hardware classes (e.g. SHA256d vs Scrypt rigs) and
verifies that the paper's machinery survives: legal better-response
learning still converges (the ordinal potential argument never used
full strategy sets), the restricted greedy construction still yields
equilibria, and the table reports how restrictions change convergence
time and the miners' payoff distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.factories import random_configuration, random_game
from repro.core.restricted import RestrictedGame
from repro.experiments.common import ExperimentResult
from repro.learning.restricted_engine import RestrictedLearningEngine
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


def _hardware_split(game, rng, scrypt_fraction=0.4):
    """Randomly assign hardware classes; coins split between algorithms."""
    coin_algorithms = {}
    for index, coin in enumerate(game.coins):
        coin_algorithms[coin.name] = "scrypt" if index % 2 else "sha256d"
    miner_hardware = {}
    for miner in game.miners:
        miner_hardware[miner.name] = (
            "scrypt" if rng.random() < scrypt_fraction else "sha256d"
        )
    return coin_algorithms, miner_hardware


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Extension: asymmetric (hardware-restricted) mining"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=4, miners=8, coins=4, starts_per_game=3)


def run(
    *,
    games: int = 10,
    miners: int = 10,
    coins: int = 4,
    starts_per_game: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Convergence and structure of hardware-restricted games."""
    table = Table(
        "E11 — asymmetric mining (hardware-restricted coins)",
        [
            "game",
            "restricted miners",
            "runs",
            "converged",
            "mean steps (restricted)",
            "mean steps (free)",
            "greedy stable",
        ],
    )
    rngs = spawn_rngs(seed, games)
    total_runs = 0
    converged_runs = 0
    greedy_ok = 0
    potential_ok = True
    for index in range(games):
        rng = rngs[index]
        game = random_game(miners, coins, seed=rng)
        coin_algorithms, miner_hardware = _hardware_split(game, rng)
        restricted = RestrictedGame.by_algorithm(game, coin_algorithms, miner_hardware)

        engine = RestrictedLearningEngine(mode="random")
        free_engine_steps = []
        restricted_steps = []
        converged_here = 0
        for start_index in range(starts_per_game):
            # Start everyone on an allowed coin.
            assignment = {
                miner: restricted.allowed_coins(miner)[
                    int(rng.integers(0, len(restricted.allowed_coins(miner))))
                ]
                for miner in game.miners
            }
            from repro.core.configuration import Configuration

            start = Configuration.from_mapping(game.miners, assignment)
            trajectory = engine.run(restricted, start, seed=int(rng.integers(0, 2**31)))
            total_runs += 1
            converged_runs += int(trajectory.converged)
            converged_here += int(trajectory.converged)
            restricted_steps.append(trajectory.length)
            # Potential audit along the restricted path.
            for i in range(len(trajectory.configurations) - 1):
                if (
                    restricted.compare_potential(
                        trajectory.configurations[i], trajectory.configurations[i + 1]
                    )
                    >= 0
                ):
                    potential_ok = False

            from repro.learning.engine import LearningEngine

            free = LearningEngine(record_configurations=False).run(
                game, random_configuration(game, seed=rng), seed=int(rng.integers(0, 2**31))
            )
            free_engine_steps.append(free.length)

        greedy = restricted.greedy_equilibrium()
        stable = restricted.is_stable(greedy)
        greedy_ok += int(stable)
        restricted_count = sum(
            1
            for miner in game.miners
            if len(restricted.allowed_coins(miner)) < len(game.coins)
        )
        table.add_row(
            f"#{index}",
            f"{restricted_count}/{miners}",
            starts_per_game,
            f"{converged_here}/{starts_per_game}",
            float(np.mean(restricted_steps)),
            float(np.mean(free_engine_steps)),
            "yes" if stable else "NO",
        )
    return ExperimentResult(
        experiment="E11",
        table=table,
        metrics={
            "convergence_rate": converged_runs / total_runs if total_runs else 1.0,
            "greedy_stable_rate": greedy_ok / games,
            "potential_monotone": potential_ok,
        },
    )
