"""Shared scaffolding for the E1–E10 experiment runners.

Each experiment module exposes ``run(...) -> ExperimentResult`` with
keyword parameters sized so the default run finishes in seconds. The
result couples the printable table (what EXPERIMENTS.md records) with a
metrics dict (what tests and benchmarks assert on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.util.tables import Table


@dataclass
class ExperimentResult:
    """A rendered table plus machine-checkable headline metrics."""

    experiment: str
    table: Table
    metrics: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return self.table.render()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
