"""Shared scaffolding for the E1–E16 experiment runners.

Each experiment module exposes ``run(...) -> ExperimentResult`` with
keyword parameters sized so the default run finishes in seconds, plus
registry metadata — ``DESCRIPTION``, ``FAST_PARAMS`` and declared
``ACCEPTS_BACKEND``/``ACCEPTS_WORKERS`` capabilities, collected by
:data:`repro.experiments.EXPERIMENTS`. The result couples the
printable table (what EXPERIMENTS.md records) with a metrics dict
(what tests and benchmarks assert on).

Learning-heavy runners additionally take ``backend=`` (``"fast"``
integer kernel — the default — or ``"exact"`` Fractions; identical
results) and ``workers=`` (0 = serial in-process, otherwise a
:class:`~repro.kernel.batch.BatchRunner` fans trajectories out over
that many worker processes). :func:`resolve_batch_runner` centralizes
that translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.kernel.batch import BatchRunner
from repro.util.tables import Table


def resolve_batch_runner(
    *,
    backend: str = "fast",
    workers: int = 0,
    executor: str = "process",
) -> Optional[BatchRunner]:
    """The experiments' ``workers=`` convention → an optional runner.

    ``workers=0`` (the default) means plain serial execution — callers
    get ``None`` and fall through to their in-process loop.
    ``workers≥1`` builds a :class:`BatchRunner` capped at that many
    workers; batch seeding matches the serial loop, so results are
    identical either way. An explicit worker count means the caller
    wants the pool, so the executor defaults to ``"process"`` — the
    runner reuses one pool across all of the experiment's cells, which
    amortizes start-up, but tiny default workloads may still finish
    faster with ``workers=0``. Callers should ``close()`` the runner
    (it is a context manager) when the sweep is done.
    """
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers == 0:
        return None
    return BatchRunner(backend=backend, executor=executor, max_workers=workers)


@dataclass
class ExperimentResult:
    """A rendered table plus machine-checkable headline metrics."""

    experiment: str
    table: Table
    metrics: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return self.table.render()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
