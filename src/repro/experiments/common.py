"""Shared scaffolding for the E1–E16 experiment runners.

Each experiment module exposes ``run(...) -> ExperimentResult`` with
keyword parameters sized so the default run finishes in seconds, plus
registry metadata — ``DESCRIPTION``, ``FAST_PARAMS`` and declared
``ACCEPTS_BACKEND``/``ACCEPTS_WORKERS`` capabilities, collected by
:data:`repro.experiments.EXPERIMENTS`. The result couples the
printable table (what EXPERIMENTS.md records) with a metrics dict
(what tests and benchmarks assert on).

Learning-heavy runners additionally take ``backend=`` (``"fast"``
integer kernel — the default — or ``"exact"`` Fractions; identical
results) and ``executor=`` (handed to :func:`repro.run_many`, which
picks the mechanism — tensor-vectorized populations, worker pools, or
serial; identical results in every mode). The old ``workers=`` knob
still works but is deprecated; :func:`resolve_execution` centralizes
the translation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.kernel.batch import BatchRunner
from repro.util.tables import Table


def resolve_execution(
    *, executor: str = "auto", workers: int = 0, stacklevel: int = 2
) -> Tuple[str, Optional[int]]:
    """The experiments' execution knobs → ``(executor, max_workers)``.

    ``workers≥1`` is the deprecated spelling of "fan out over that many
    worker processes": it emits a :class:`DeprecationWarning` and maps
    to ``("process", workers)`` unless an explicit non-default
    *executor* already says otherwise. Results are identical across all
    modes, so the knobs only pick speed.

    ``stacklevel`` aims the warning: the default 2 points at the direct
    caller; shims forwarding their own ``workers=`` argument (the
    experiment ``run()`` functions) pass 3 so the warning lands on
    *their* caller — the line that actually wrote ``workers=``.
    """
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers == 0:
        return executor, None
    warnings.warn(
        "workers= is deprecated; pass executor='process' (and max_workers=) — "
        "execution now routes through repro.run_many",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if executor == "auto":
        return "process", workers
    return executor, workers


def resolve_batch_runner(
    *,
    backend: str = "fast",
    workers: int = 0,
    executor: str = "process",
    stacklevel: int = 2,
) -> Optional[BatchRunner]:
    """Deprecated: the old ``workers=`` convention → an optional runner.

    Kept as a shim for one release; use :func:`repro.run_many` (or
    :func:`resolve_execution`) instead. ``workers=0`` returns ``None``
    without warning — that was always the "no runner" spelling.
    ``stacklevel`` follows the :func:`resolve_execution` convention.
    """
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers == 0:
        return None
    warnings.warn(
        "resolve_batch_runner is deprecated; route execution through "
        "repro.run_many (see resolve_execution)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return BatchRunner(backend=backend, executor=executor, max_workers=workers)


@dataclass
class ExperimentResult:
    """A rendered table plus machine-checkable headline metrics."""

    experiment: str
    table: Table
    metrics: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return self.table.render()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
