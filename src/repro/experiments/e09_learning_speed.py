"""E9 — discussion: convergence speed under specific learning dynamics.

The paper proves convergence for arbitrary better response and asks (in
the Discussion) about speed under specific markets. This experiment
fixes a game family and sweeps the *learning process*: policy ×
scheduler, plus the multiplicative-weights comparator from the related
work. Reported: steps (or rounds) to stability per process.
"""

from __future__ import annotations

from repro.analysis.convergence import stats_from_steps
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult, resolve_execution
from repro.learning.policies import (
    BestResponsePolicy,
    EpsilonGreedyPolicy,
    MaxRpuPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.learning.regret import MultiplicativeWeightsLearner
from repro.learning.schedulers import (
    LargestFirstScheduler,
    RoundRobinScheduler,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Discussion: convergence speed by learning process"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(miners=10, coins=3, runs=4, mwu_rounds=80)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--executor``/``--workers`` only where declared).
ACCEPTS_BACKEND = True
ACCEPTS_WORKERS = True
ACCEPTS_EXECUTOR = True


def run(
    *,
    miners: int = 20,
    coins: int = 4,
    runs: int = 10,
    mwu_rounds: int = 300,
    power_distribution: str = "pareto",
    seed: int = 0,
    backend: str = "fast",
    executor: str = "auto",
    workers: int = 0,
) -> ExperimentResult:
    """Convergence speed by learning process on a fixed game family.

    The whole policy × scheduler grid is ONE :func:`repro.run_many`
    call (all cells share the game shape, so the vectorized executor
    advances them in the same lockstep buckets); per-cell seeds follow
    the exact draw order of the old serial loop, so numbers are
    unchanged. ``workers=`` is the deprecated spelling of
    ``executor="process"``.
    """
    from repro.run import RunSpec, run_many

    executor, max_workers = resolve_execution(executor=executor, workers=workers, stacklevel=3)
    rngs = spawn_rngs(seed, 4)
    game = random_game(
        miners, coins, power_distribution=power_distribution, seed=rngs[0]
    )
    policies = (
        BestResponsePolicy(),
        RandomImprovingPolicy(),
        MinimalGainPolicy(),
        MaxRpuPolicy(),
        EpsilonGreedyPolicy(0.25),
    )
    schedulers = (
        UniformRandomScheduler(),
        RoundRobinScheduler(),
        LargestFirstScheduler(),
        SmallestFirstScheduler(),
    )
    table = Table(
        "E9 — convergence speed by learning process",
        ["process", "mean steps", "median", "p95", "max"],
    )
    cells = [
        RunSpec(
            game=game,
            runs=runs,
            policy=policy,
            scheduler=scheduler,
            backend=backend,
            seed=int(rngs[1].integers(0, 2**31)),
            label=f"{policy.name} × {scheduler.name}",
        )
        for policy in policies
        for scheduler in schedulers
    ]
    fastest = None
    slowest = None
    for spec, summaries in zip(cells, run_many(cells, executor=executor, max_workers=max_workers)):
        stats = stats_from_steps(
            [summary.steps for summary in summaries], monotone=len(summaries)
        )
        table.add_row(
            spec.label, stats.mean_steps, stats.median_steps, stats.p95_steps, stats.max_steps
        )
        if fastest is None or stats.mean_steps < fastest[1]:
            fastest = (spec.label, stats.mean_steps)
        if slowest is None or stats.mean_steps > slowest[1]:
            slowest = (spec.label, stats.mean_steps)

    # MWU comparator: rounds to a stable realized profile (if at all).
    learner = MultiplicativeWeightsLearner(step_size=0.3)
    mwu = learner.run(game, mwu_rounds, seed=int(rngs[2].integers(0, 2**31)))
    mwu_label = (
        str(mwu.stabilized_at) if mwu.stabilized_at is not None else f">{mwu_rounds}"
    )
    table.add_row("multiplicative weights (rounds)", mwu_label, "—", "—", "—")

    return ExperimentResult(
        experiment="E9",
        table=table,
        metrics={
            "fastest_process": fastest[0],
            "fastest_mean_steps": fastest[1],
            "slowest_process": slowest[0],
            "slowest_mean_steps": slowest[1],
            "mwu_stabilized": mwu.stabilized_at is not None,
        },
    )
