"""E9 — discussion: convergence speed under specific learning dynamics.

The paper proves convergence for arbitrary better response and asks (in
the Discussion) about speed under specific markets. This experiment
fixes a game family and sweeps the *learning process*: policy ×
scheduler, plus the multiplicative-weights comparator from the related
work. Reported: steps (or rounds) to stability per process.
"""

from __future__ import annotations

from repro.analysis.convergence import stats_from_steps
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult, resolve_execution
from repro.learning.policies import (
    BestResponsePolicy,
    EpsilonGreedyPolicy,
    MaxRpuPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.learning.regret import MultiplicativeWeightsLearner
from repro.learning.schedulers import (
    LargestFirstScheduler,
    RoundRobinScheduler,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Discussion: convergence speed by learning process"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(miners=10, coins=3, runs=4, mwu_rounds=80)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--executor``/``--workers`` only where declared).
ACCEPTS_BACKEND = True
ACCEPTS_WORKERS = True
ACCEPTS_EXECUTOR = True


def _policies():
    return (
        BestResponsePolicy(),
        RandomImprovingPolicy(),
        MinimalGainPolicy(),
        MaxRpuPolicy(),
        EpsilonGreedyPolicy(0.25),
    )


def _schedulers():
    return (
        UniformRandomScheduler(),
        RoundRobinScheduler(),
        LargestFirstScheduler(),
        SmallestFirstScheduler(),
    )


def sweep_grid(
    *,
    miners: int = 20,
    coins: int = 4,
    runs: int = 10,
    power_distribution: str = "pareto",
    seed: int = 0,
    backend: str = "fast",
    mwu_rounds: int = 300,
):
    """The E9 grid as a :class:`~repro.sweep.SweepGrid` (policy × scheduler).

    One fixed game, every (policy, scheduler) pair a streamed cell.
    Per-cell seeds follow the exact draw order of the pre-fabric loop
    (``spawn_rngs(seed, 4)``: stream 0 builds the game, stream 1 draws
    one seed per pair in policy-major order), so the fabric reproduces
    the historical E9 numbers bit-for-bit. ``mwu_rounds`` is accepted
    for signature symmetry with :func:`run`; the multiplicative-weights
    comparator is not a grid cell (it is a single sequential learner).
    """
    from repro.sweep import SweepGrid

    del mwu_rounds  # not a grid axis; see docstring
    rngs = spawn_rngs(seed, 4)
    game = random_game(
        miners, coins, power_distribution=power_distribution, seed=rngs[0]
    )
    policies = _policies()
    schedulers = _schedulers()
    seeds = {
        (policy.name, scheduler.name): int(rngs[1].integers(0, 2**31))
        for policy in policies
        for scheduler in schedulers
    }

    def override(values):
        return {"seed": seeds[(values["policy"].name, values["scheduler"].name)]}

    return SweepGrid(
        {"policy": list(policies), "scheduler": list(schedulers)},
        base={"game": game, "runs": runs, "backend": backend, "stream": True},
        override=override,
    )


def run(
    *,
    miners: int = 20,
    coins: int = 4,
    runs: int = 10,
    mwu_rounds: int = 300,
    power_distribution: str = "pareto",
    seed: int = 0,
    backend: str = "fast",
    executor: str = "auto",
    workers: int = 0,
) -> ExperimentResult:
    """Convergence speed by learning process on a fixed game family.

    The grid is declared by :func:`sweep_grid` and executed as one
    ephemeral :func:`~repro.sweep.run_sweep` (all cells in one
    :func:`repro.run_many` call, sharing the vectorized lockstep
    buckets); per-cell seeds follow the exact draw order of the old
    serial loop, so numbers are unchanged. ``workers=`` is the
    deprecated spelling of ``executor="process"``.
    """
    from repro.sweep import run_sweep

    executor, max_workers = resolve_execution(executor=executor, workers=workers, stacklevel=3)
    rngs = spawn_rngs(seed, 4)
    game = random_game(
        miners, coins, power_distribution=power_distribution, seed=rngs[0]
    )
    table = Table(
        "E9 — convergence speed by learning process",
        ["process", "mean steps", "median", "p95", "max"],
    )
    grid = sweep_grid(
        miners=miners,
        coins=coins,
        runs=runs,
        power_distribution=power_distribution,
        seed=seed,
        backend=backend,
    )
    sweep = run_sweep(grid, executor=executor, max_workers=max_workers)
    labels = [
        f"{policy.name} × {scheduler.name}"
        for policy in _policies()
        for scheduler in _schedulers()
    ]
    fastest = None
    slowest = None
    for label, cell_stats in zip(labels, sweep.in_order()):
        stats = stats_from_steps(list(cell_stats.steps), monotone=cell_stats.runs)
        table.add_row(
            label, stats.mean_steps, stats.median_steps, stats.p95_steps, stats.max_steps
        )
        if fastest is None or stats.mean_steps < fastest[1]:
            fastest = (label, stats.mean_steps)
        if slowest is None or stats.mean_steps > slowest[1]:
            slowest = (label, stats.mean_steps)

    # MWU comparator: rounds to a stable realized profile (if at all).
    learner = MultiplicativeWeightsLearner(step_size=0.3)
    mwu = learner.run(game, mwu_rounds, seed=int(rngs[2].integers(0, 2**31)))
    mwu_label = (
        str(mwu.stabilized_at) if mwu.stabilized_at is not None else f">{mwu_rounds}"
    )
    table.add_row("multiplicative weights (rounds)", mwu_label, "—", "—", "—")

    return ExperimentResult(
        experiment="E9",
        table=table,
        metrics={
            "fastest_process": fastest[0],
            "fastest_mean_steps": fastest[1],
            "slowest_process": slowest[0],
            "slowest_mean_steps": slowest[1],
            "mwu_stabilized": mwu.stabilized_at is not None,
        },
    )
