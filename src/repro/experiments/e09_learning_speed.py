"""E9 — discussion: convergence speed under specific learning dynamics.

The paper proves convergence for arbitrary better response and asks (in
the Discussion) about speed under specific markets. This experiment
fixes a game family and sweeps the *learning process*: policy ×
scheduler, plus the multiplicative-weights comparator from the related
work. Reported: steps (or rounds) to stability per process.
"""

from __future__ import annotations

from repro.analysis.convergence import measure_convergence
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult, resolve_batch_runner
from repro.learning.policies import (
    BestResponsePolicy,
    EpsilonGreedyPolicy,
    MaxRpuPolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.learning.regret import MultiplicativeWeightsLearner
from repro.learning.schedulers import (
    LargestFirstScheduler,
    RoundRobinScheduler,
    SmallestFirstScheduler,
    UniformRandomScheduler,
)
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Discussion: convergence speed by learning process"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(miners=10, coins=3, runs=4, mwu_rounds=80)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--workers`` only where declared).
ACCEPTS_BACKEND = True
ACCEPTS_WORKERS = True


def run(
    *,
    miners: int = 20,
    coins: int = 4,
    runs: int = 10,
    mwu_rounds: int = 300,
    power_distribution: str = "pareto",
    seed: int = 0,
    backend: str = "fast",
    workers: int = 0,
) -> ExperimentResult:
    """Convergence speed by learning process on a fixed game family.

    ``backend``/``workers`` follow the convention documented in
    :mod:`repro.experiments.common` — same numbers, different speed.
    """
    runner = resolve_batch_runner(backend=backend, workers=workers)
    rngs = spawn_rngs(seed, 4)
    game = random_game(
        miners, coins, power_distribution=power_distribution, seed=rngs[0]
    )
    policies = (
        BestResponsePolicy(),
        RandomImprovingPolicy(),
        MinimalGainPolicy(),
        MaxRpuPolicy(),
        EpsilonGreedyPolicy(0.25),
    )
    schedulers = (
        UniformRandomScheduler(),
        RoundRobinScheduler(),
        LargestFirstScheduler(),
        SmallestFirstScheduler(),
    )
    table = Table(
        "E9 — convergence speed by learning process",
        ["process", "mean steps", "median", "p95", "max"],
    )
    fastest = None
    slowest = None
    try:
        for policy in policies:
            for scheduler in schedulers:
                stats = measure_convergence(
                    game,
                    runs=runs,
                    policy=policy,
                    scheduler=scheduler,
                    seed=int(rngs[1].integers(0, 2**31)),
                    backend=backend,
                    runner=runner,
                )
                label = f"{policy.name} × {scheduler.name}"
                table.add_row(
                    label, stats.mean_steps, stats.median_steps, stats.p95_steps, stats.max_steps
                )
                if fastest is None or stats.mean_steps < fastest[1]:
                    fastest = (label, stats.mean_steps)
                if slowest is None or stats.mean_steps > slowest[1]:
                    slowest = (label, stats.mean_steps)
    finally:
        if runner is not None:
            runner.close()

    # MWU comparator: rounds to a stable realized profile (if at all).
    learner = MultiplicativeWeightsLearner(step_size=0.3)
    mwu = learner.run(game, mwu_rounds, seed=int(rngs[2].integers(0, 2**31)))
    mwu_label = (
        str(mwu.stabilized_at) if mwu.stabilized_at is not None else f">{mwu_rounds}"
    )
    table.add_row("multiplicative weights (rounds)", mwu_label, "—", "—", "—")

    return ExperimentResult(
        experiment="E9",
        table=table,
        metrics={
            "fastest_process": fastest[0],
            "fastest_mean_steps": fastest[1],
            "slowest_process": slowest[0],
            "slowest_mean_steps": slowest[1],
            "mwu_stabilized": mwu.stabilized_at is not None,
        },
    )
