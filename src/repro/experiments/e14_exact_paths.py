"""E14 — extension: exact worst-case learning time via the DAG view.

Theorem 1 makes the improvement graph a DAG; its longest path is the
*tight* worst case over every scheduler, policy and start — something
no sampling experiment (E2/E9) can certify. This experiment computes it
exactly, verifies acyclicity and sink-equilibrium agreement, and
reports how close empirical learners get to the bound.

The analysis runs on :mod:`repro.kernel.space` (integer configuration
codes, Gray-code walk, flat successor arrays), which raised the default
size from 5 to 10 miners at the same time budget. A second, symmetric
section drives home the symmetry reduction: equal-power games are
analyzed through their orbit quotient, so spaces of hundreds of
thousands of configurations collapse to a few dozen canonical nodes.
"""

from __future__ import annotations


from repro.analysis.paths import analyze_improvement_dag
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_configuration, random_game
from repro.core.game import Game
from repro.experiments.common import ExperimentResult
from repro.learning.engine import LearningEngine
from repro.learning.policies import MinimalGainPolicy
from repro.learning.schedulers import SmallestFirstScheduler
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Extension: exact worst-case learning time (DAG view)"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=4, miners=4, coins=2, empirical_runs=10)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--workers`` only where declared).
ACCEPTS_BACKEND = True


def run(
    *,
    games: int = 8,
    miners: int = 10,
    coins: int = 2,
    empirical_runs: int = 30,
    seed: int = 0,
    backend: str = "space",
    symmetric_miners: int = 12,
    symmetric_coins: int = 3,
) -> ExperimentResult:
    """Exact longest improving path vs empirical adversarial maxima.

    ``backend`` selects the DAG engine (``"space"`` is the integer-code
    default; ``"exact"`` is the Fraction brute force, feasible only at
    much smaller sizes). Set ``symmetric_miners=0`` to skip the
    equal-power symmetry-reduction showcase rows.
    """
    table = Table(
        "E14 — exact worst-case learning time (improvement-graph DAG)",
        [
            "game",
            "configs",
            "scanned",
            "acyclic",
            "sinks = equilibria",
            "exact worst case",
            "empirical max (adversarial)",
            "gap",
        ],
    )
    rngs = spawn_rngs(seed, games)
    acyclic_all = True
    sinks_match_all = True
    tight = 0
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index])
        analysis = analyze_improvement_dag(game, backend=backend)
        acyclic_all &= analysis.acyclic
        matches = set(analysis.sinks) == set(enumerate_equilibria(game))
        sinks_match_all &= matches
        bound = analysis.longest_path if analysis.longest_path is not None else -1

        engine = LearningEngine(
            policy=MinimalGainPolicy(),
            scheduler=SmallestFirstScheduler(),
            record_configurations=False,
        )
        longest_seen = 0
        for _ in range(empirical_runs):
            start = random_configuration(game, seed=int(rngs[index].integers(0, 2**31)))
            trajectory = engine.run(
                game, start, seed=int(rngs[index].integers(0, 2**31))
            )
            longest_seen = max(longest_seen, trajectory.length)
        if longest_seen == bound:
            tight += 1
        table.add_row(
            f"#{index}",
            analysis.total_configurations,
            analysis.nodes_scanned,
            "yes" if analysis.acyclic else "NO",
            "yes" if matches else "NO",
            bound,
            longest_seen,
            bound - longest_seen,
        )

    sym_metrics = {}
    if symmetric_miners and backend == "space":
        # Equal-power miners are interchangeable: the DAG analysis runs
        # on the orbit quotient, shrinking |C|^n combinatorially. Sinks
        # stay integer codes here — materializing tens of thousands of
        # equilibrium Configurations would dwarf the analysis itself.
        from repro.kernel.space import ConfigSpace

        sym_game = Game.create(
            [3] * symmetric_miners,
            [5 + 2 * i for i in range(symmetric_coins)],
        )
        sym = ConfigSpace(sym_game, symmetry=True).dag_report()
        acyclic_all &= sym.acyclic
        table.add_row(
            f"sym n={symmetric_miners} |C|={symmetric_coins}",
            sym.total_configurations,
            sym.nodes_scanned,
            "yes" if sym.acyclic else "NO",
            f"{len(sym.sink_codes)} sinks",
            sym.longest_path if sym.longest_path is not None else -1,
            "—",
            "—",
        )
        sym_metrics = {
            "symmetric_configurations": sym.total_configurations,
            "symmetric_orbits_scanned": sym.nodes_scanned,
            "symmetric_longest_path": sym.longest_path,
            "symmetric_acyclic": sym.acyclic,
        }

    return ExperimentResult(
        experiment="E14",
        table=table,
        metrics={
            "all_acyclic": acyclic_all,
            "sinks_match_equilibria": sinks_match_all,
            "tight_fraction": tight / games,
            **sym_metrics,
        },
    )
