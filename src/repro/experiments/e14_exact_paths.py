"""E14 — extension: exact worst-case learning time via the DAG view.

Theorem 1 makes the improvement graph a DAG; its longest path is the
*tight* worst case over every scheduler, policy and start — something
no sampling experiment (E2/E9) can certify. This experiment computes it
exactly for small games, verifies acyclicity and sink-equilibrium
agreement, and reports how close empirical learners get to the bound.
"""

from __future__ import annotations


from repro.analysis.paths import (
    improvement_graph,
    is_acyclic,
    longest_improvement_path,
    sink_configurations,
)
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_configuration, random_game
from repro.experiments.common import ExperimentResult
from repro.learning.engine import LearningEngine
from repro.learning.policies import MinimalGainPolicy
from repro.learning.schedulers import SmallestFirstScheduler
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


def run(
    *,
    games: int = 8,
    miners: int = 5,
    coins: int = 2,
    empirical_runs: int = 30,
    seed: int = 0,
) -> ExperimentResult:
    """Exact longest improving path vs empirical adversarial maxima."""
    table = Table(
        "E14 — exact worst-case learning time (improvement-graph DAG)",
        [
            "game",
            "configs",
            "acyclic",
            "sinks = equilibria",
            "exact worst case",
            "empirical max (adversarial)",
            "gap",
        ],
    )
    rngs = spawn_rngs(seed, games)
    acyclic_all = True
    sinks_match_all = True
    tight = 0
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index])
        graph = improvement_graph(game)
        acyclic = is_acyclic(graph)
        acyclic_all &= acyclic
        sinks = set(sink_configurations(graph))
        matches = sinks == set(enumerate_equilibria(game))
        sinks_match_all &= matches
        bound = longest_improvement_path(graph)

        engine = LearningEngine(
            policy=MinimalGainPolicy(),
            scheduler=SmallestFirstScheduler(),
            record_configurations=False,
        )
        longest_seen = 0
        for run_index in range(empirical_runs):
            start = random_configuration(game, seed=int(rngs[index].integers(0, 2**31)))
            trajectory = engine.run(
                game, start, seed=int(rngs[index].integers(0, 2**31))
            )
            longest_seen = max(longest_seen, trajectory.length)
        if longest_seen == bound:
            tight += 1
        table.add_row(
            f"#{index}",
            game.configuration_count(),
            "yes" if acyclic else "NO",
            "yes" if matches else "NO",
            bound,
            longest_seen,
            bound - longest_seen,
        )
    return ExperimentResult(
        experiment="E14",
        table=table,
        metrics={
            "all_acyclic": acyclic_all,
            "sinks_match_equilibria": sinks_match_all,
            "tight_fraction": tight / games,
        },
    )
