"""E6 — Proposition 2: there is often a better equilibrium.

Across random generic games, measure how often a stable configuration
admits a (miner, other-equilibrium) pair with a strictly higher payoff,
how large the gain is, and who the winners are (big vs small miners).
This is the demand side of the manipulation market: the gains here are
what Section 5's mechanism lets someone buy.
"""

from __future__ import annotations

import numpy as np

from repro.core.assumptions import check_never_alone
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult
from repro.manipulation.better_equilibrium import improvement_opportunities
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Proposition 2: a better equilibrium usually exists"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=6, miners=6, coins=2)


def run(
    *,
    games: int = 20,
    miners: int = 6,
    coins: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Frequency and size of Proposition 2 improvements."""
    rngs = spawn_rngs(seed, games)
    table = Table(
        "E6 — better equilibria exist (Proposition 2)",
        ["game", "A1", "equilibria", "eq. with improvement", "best gain ratio", "winner rank"],
    )
    with_improvement = 0
    total_multi = 0
    gain_ratios = []
    winner_ranks = []
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index], ensure_generic=True)
        a1 = check_never_alone(game, exhaustive_limit=100_000)
        equilibria = enumerate_equilibria(game)
        if len(equilibria) < 2:
            table.add_row(f"#{index}", "yes" if a1 else "no", len(equilibria), "n/a", "n/a", "n/a")
            continue
        improved = 0
        best_ratio = 1.0
        best_rank = None
        power_order = sorted(game.miners, key=lambda m: -m.power)
        for eq in equilibria:
            opportunities = improvement_opportunities(game, eq, equilibria)
            if opportunities:
                improved += 1
                top = opportunities[0]
                if top.gain_ratio > best_ratio:
                    best_ratio = top.gain_ratio
                    best_rank = power_order.index(top.miner) + 1
        if a1:
            total_multi += len(equilibria)
            with_improvement += improved
        if best_rank is not None:
            gain_ratios.append(best_ratio)
            winner_ranks.append(best_rank)
        table.add_row(
            f"#{index}",
            "yes" if a1 else "no",
            len(equilibria),
            f"{improved}/{len(equilibria)}",
            best_ratio,
            best_rank if best_rank is not None else "n/a",
        )
    return ExperimentResult(
        experiment="E6",
        table=table,
        metrics={
            "improvement_fraction": (
                with_improvement / total_multi if total_multi else 1.0
            ),
            "mean_best_gain_ratio": float(np.mean(gain_ratios)) if gain_ratios else 1.0,
            "mean_winner_rank": float(np.mean(winner_ranks)) if winner_ranks else 0.0,
        },
    )
