"""E15 — extension: does Theorem 1 survive sampled rewards?

The exact engines converge because miners observe expected payoffs.
Here miners observe *sampled block wins* and move on estimated
improvements (:mod:`repro.stochastic.noisy_engine`). Sweeping the
per-decision sample budget measures how much observation is needed
before the paper's prediction — convergence to a pure equilibrium —
re-emerges: the misconvergence rate (final state not in the exact
ConfigSpace equilibrium set) should fall towards zero as the budget
grows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult, resolve_execution
from repro.stochastic.risk import (
    MisconvergenceReport,
    _budget_label,
    _summarize_budget,
)
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Extension: noisy sampled learning vs. Theorem 1's prediction"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=1, miners=5, coins=2, budgets=(1, 16, 128), replications=12,
    max_activations=1500)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--executor``/``--workers`` only where declared).
ACCEPTS_WORKERS = True
ACCEPTS_EXECUTOR = True


def sweep_grid(
    *,
    games: int = 3,
    miners: int = 6,
    coins: int = 2,
    budgets: Sequence = (1, 4, 16, 64, 256, 1024),
    replications: int = 40,
    max_activations: int = 4_000,
    inertia: float = 0.0,
    exploration: float = 0.0,
    seed: int = 0,
):
    """The E15 grid as a :class:`~repro.sweep.SweepGrid` (game × budget).

    Each cell is ``replications`` noisy runs of one (game, sample
    budget) pair. Per-cell seeds follow the exact draw order of the
    pre-fabric loop — one game per ``spawn_rngs`` stream, then one
    profile seed whose :class:`~numpy.random.SeedSequence` children
    seed the budgets — so the fabric (ephemeral, sharded, or cached)
    reproduces the historical E15 numbers bit-for-bit. Adding budgets
    still never changes another budget's replications.
    """
    from repro.stochastic.noisy_engine import NoisyLearningEngine
    from repro.sweep import SweepGrid, labeled

    if not budgets:
        raise ValueError("need at least one sample budget")
    rngs = spawn_rngs(seed, games)
    game_entries = []
    seeds = {}
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index])
        game_entries.append(labeled(f"#{index}", game))
        profile_seed = int(rngs[index].integers(0, 2**31))
        children = np.random.SeedSequence(profile_seed).spawn(len(budgets))
        for position, child in enumerate(children):
            seeds[(index, position)] = int(child.generate_state(1)[0])
    engines = [
        labeled(
            _budget_label(budget),
            NoisyLearningEngine(
                budget=budget,
                max_activations=max_activations,
                inertia=inertia,
                exploration=exploration,
            ),
        )
        for budget in budgets
    ]
    game_values = [entry.value for entry in game_entries]
    engine_values = [entry.value for entry in engines]

    def override(values):
        game_pos = next(i for i, g in enumerate(game_values) if g is values["game"])
        budget_pos = next(
            i for i, e in enumerate(engine_values) if e is values["engine"]
        )
        return {"seed": seeds[(game_pos, budget_pos)]}

    return SweepGrid(
        {"game": game_entries, "engine": engines},
        base={"runs": replications, "kind": "noisy"},
        override=override,
    )


def run(
    *,
    games: int = 3,
    miners: int = 6,
    coins: int = 2,
    budgets: Sequence[int] = (1, 4, 16, 64, 256, 1024),
    replications: int = 40,
    max_activations: int = 4_000,
    inertia: float = 0.0,
    exploration: float = 0.0,
    seed: int = 0,
    executor: str = "auto",
    workers: int = 0,
) -> ExperimentResult:
    """Misconvergence rate and learning effort per sample budget.

    The (game × budget) grid is declared by :func:`sweep_grid` and
    executed as one ephemeral :func:`~repro.sweep.run_sweep` (every
    cell's replications in one :func:`repro.run_many` call); per-cell
    seeds match the pre-fabric nested loop, so numbers are unchanged.
    Final states are judged against each game's exact equilibrium set.
    ``workers=`` is the deprecated spelling of ``executor="process"``.
    """
    from repro.sweep import run_sweep

    executor, max_workers = resolve_execution(executor=executor, workers=workers, stacklevel=3)
    table = Table(
        "E15 — noisy better-response learning vs. the exact prediction",
        [
            "game",
            "budget",
            "misconvergence",
            "settled",
            "mean activations",
            "p95 activations",
            "mean moves",
            "equilibria reached/exact",
        ],
    )
    grid = sweep_grid(
        games=games,
        miners=miners,
        coins=coins,
        budgets=budgets,
        replications=replications,
        max_activations=max_activations,
        inertia=inertia,
        exploration=exploration,
        seed=seed,
    )
    sweep = run_sweep(grid, executor=executor, max_workers=max_workers)
    per_cell = sweep.in_order()
    rngs = spawn_rngs(seed, games)
    total_low = 0.0
    total_high = 0.0
    monotone_games = 0
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index])
        equilibria = tuple(enumerate_equilibria(game))
        equilibrium_set = frozenset(equilibria)
        cell_results = per_cell[index * len(budgets):(index + 1) * len(budgets)]
        outcomes = tuple(
            _summarize_budget(game, _budget_label(budget), results, equilibrium_set)
            for budget, results in zip(budgets, cell_results)
        )
        report = MisconvergenceReport(equilibria=equilibria, outcomes=outcomes)
        exact_count = len(report.equilibria)
        for outcome in report.outcomes:
            table.add_row(
                f"#{index}",
                outcome.budget_label,
                f"{outcome.misconvergence_rate:.0%}",
                f"{outcome.settled_rate:.0%}",
                outcome.mean_activations,
                outcome.p95_activations,
                outcome.mean_moves,
                f"{outcome.distinct_equilibria_reached}/{exact_count}",
            )
        rates = report.rates()
        total_low += rates[0]
        total_high += rates[-1]
        monotone_games += int(rates[-1] <= rates[0])
    return ExperimentResult(
        experiment="E15",
        table=table,
        metrics={
            "games": games,
            "misconvergence_at_min_budget": total_low / games,
            "misconvergence_at_max_budget": total_high / games,
            "monotone_fraction": monotone_games / games,
        },
    )
