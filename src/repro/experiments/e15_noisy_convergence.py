"""E15 — extension: does Theorem 1 survive sampled rewards?

The exact engines converge because miners observe expected payoffs.
Here miners observe *sampled block wins* and move on estimated
improvements (:mod:`repro.stochastic.noisy_engine`). Sweeping the
per-decision sample budget measures how much observation is needed
before the paper's prediction — convergence to a pure equilibrium —
re-emerges: the misconvergence rate (final state not in the exact
ConfigSpace equilibrium set) should fall towards zero as the budget
grows.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult, resolve_execution
from repro.stochastic.risk import misconvergence_profile
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Extension: noisy sampled learning vs. Theorem 1's prediction"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=1, miners=5, coins=2, budgets=(1, 16, 128), replications=12,
    max_activations=1500)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--executor``/``--workers`` only where declared).
ACCEPTS_WORKERS = True
ACCEPTS_EXECUTOR = True


def run(
    *,
    games: int = 3,
    miners: int = 6,
    coins: int = 2,
    budgets: Sequence[int] = (1, 4, 16, 64, 256, 1024),
    replications: int = 40,
    max_activations: int = 4_000,
    inertia: float = 0.0,
    exploration: float = 0.0,
    seed: int = 0,
    executor: str = "auto",
    workers: int = 0,
) -> ExperimentResult:
    """Misconvergence rate and learning effort per sample budget.

    ``executor`` picks the batch mechanism for each (game, budget)
    cell's replications via :func:`repro.run_many`; results are
    identical in every mode. ``workers=`` is the deprecated spelling of
    ``executor="process"``.
    """
    executor, max_workers = resolve_execution(executor=executor, workers=workers, stacklevel=3)
    table = Table(
        "E15 — noisy better-response learning vs. the exact prediction",
        [
            "game",
            "budget",
            "misconvergence",
            "settled",
            "mean activations",
            "p95 activations",
            "mean moves",
            "equilibria reached/exact",
        ],
    )
    rngs = spawn_rngs(seed, games)
    total_low = 0.0
    total_high = 0.0
    monotone_games = 0
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index])
        report = misconvergence_profile(
            game,
            budgets=list(budgets),
            replications=replications,
            max_activations=max_activations,
            inertia=inertia,
            exploration=exploration,
            seed=int(rngs[index].integers(0, 2**31)),
            executor=executor,
            max_workers=max_workers,
        )
        exact_count = len(report.equilibria)
        for outcome in report.outcomes:
            table.add_row(
                f"#{index}",
                outcome.budget_label,
                f"{outcome.misconvergence_rate:.0%}",
                f"{outcome.settled_rate:.0%}",
                outcome.mean_activations,
                outcome.p95_activations,
                outcome.mean_moves,
                f"{outcome.distinct_equilibria_reached}/{exact_count}",
            )
        rates = report.rates()
        total_low += rates[0]
        total_high += rates[-1]
        monotone_games += int(rates[-1] <= rates[0])
    return ExperimentResult(
        experiment="E15",
        table=table,
        metrics={
            "games": games,
            "misconvergence_at_min_budget": total_low / games,
            "misconvergence_at_max_budget": total_high / games,
            "monotone_fraction": monotone_games / games,
        },
    )
