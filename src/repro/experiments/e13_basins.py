"""E13 — extension: basins of attraction and the manipulation planner.

Measures where learning lands from random starts (the equilibrium
landing distribution), how much the distribution depends on the
learning policy, and whether the Section 5 mechanism is worth its price
for the planner's chosen beneficiary compared with "wait for luck".
"""

from __future__ import annotations

from repro.analysis.basins import basin_by_policy, basin_profile
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult
from repro.learning.policies import BestResponsePolicy, MinimalGainPolicy, RandomImprovingPolicy
from repro.manipulation.planner import plan_manipulation
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Extension: equilibrium basins + manipulation planner"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=3, miners=6, coins=2, samples=20)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--executor``/``--workers`` only where declared).
ACCEPTS_BACKEND = True
ACCEPTS_EXECUTOR = True


def run(
    *,
    games: int = 6,
    miners: int = 6,
    coins: int = 2,
    samples: int = 40,
    horizon_rounds: int = 20_000,
    seed: int = 0,
    backend: str = "fast",
    executor: str = "auto",
) -> ExperimentResult:
    """Basin entropy per policy + planner verdicts.

    ``backend`` selects the learning loop's arithmetic and ``executor``
    the batch mechanism (see :mod:`repro.experiments.common`); verdicts
    are identical either way.
    """
    table = Table(
        "E13 — equilibrium basins and the manipulation planner",
        [
            "game",
            "equilibria",
            "basins reached",
            "dominant landings",
            "entropy (bits)",
            "entropy spread by policy",
            "planner: worth buying?",
            "break-even rounds",
        ],
    )
    rngs = spawn_rngs(seed, games)
    worth = 0
    planned = 0
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index])
        equilibria = enumerate_equilibria(game)
        profile = basin_profile(
            game,
            samples=samples,
            seed=int(rngs[index].integers(0, 2**31)),
            backend=backend,
            executor=executor,
        )
        by_policy = basin_by_policy(
            game,
            (BestResponsePolicy(), RandomImprovingPolicy(), MinimalGainPolicy()),
            samples=max(samples // 2, 10),
            seed=int(rngs[index].integers(0, 2**31)),
            backend=backend,
            executor=executor,
        )
        entropies = [p.entropy() for p in by_policy.values()]
        verdict = "n/a"
        break_even = "n/a"
        if len(equilibria) >= 2:
            current, _ = profile.dominant()
            beneficiary = max(game.miners, key=lambda m: m.power)
            report = plan_manipulation(
                game,
                beneficiary,
                current,
                equilibria,
                basin=profile,
                seed=int(rngs[index].integers(0, 2**31)),
            )
            planned += 1
            if report.best is not None:
                worth += int(report.worth_buying(horizon_rounds))
                verdict = "yes" if report.worth_buying(horizon_rounds) else "no"
                break_even = (
                    f"{report.best.break_even_rounds:.0f}"
                    if report.best.break_even_rounds is not None
                    else "never"
                )
            else:
                verdict = "no gain available"
        dominant_eq, _ = profile.dominant()
        table.add_row(
            f"#{index}",
            len(equilibria),
            profile.distinct_equilibria,
            f"{profile.count_of(dominant_eq)}/{profile.samples}",
            profile.entropy(),
            f"{min(entropies):.2f}–{max(entropies):.2f}",
            verdict,
            break_even,
        )
    return ExperimentResult(
        experiment="E13",
        table=table,
        metrics={
            "plans_evaluated": planned,
            "worth_buying_fraction": worth / planned if planned else 0.0,
        },
    )
