"""E12 — extension: simultaneous moves break convergence; inertia fixes it.

The paper's Theorem 1 is for sequential improvement steps. This
experiment shows the theorem's scope is tight: the synchronous
best-response dynamic (all unstable miners jump at once) cycles on a
large fraction of games — echoing the physical-layer EDA oscillation of
E1 — while small per-miner inertia restores convergence.
"""

from __future__ import annotations

import numpy as np

from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult
from repro.learning.simultaneous import cycling_fraction
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Extension: simultaneous moves cycle; inertia fixes it"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=4, miners=6, coins=3, starts=6)


def run(
    *,
    games: int = 8,
    miners: int = 8,
    coins: int = 3,
    starts: int = 10,
    inertias: tuple = (0.0, 0.3, 0.6),
    seed: int = 0,
) -> ExperimentResult:
    """Cycling fraction of synchronous dynamics vs inertia level."""
    table = Table(
        "E12 — simultaneous better response: cycling vs inertia",
        ["game"] + [f"cycle rate (inertia={i})" for i in inertias],
    )
    rngs = spawn_rngs(seed, games)
    rates = {inertia: [] for inertia in inertias}
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index])
        row = [f"#{index}"]
        for inertia in inertias:
            rate = cycling_fraction(
                game,
                starts=starts,
                inertia=inertia,
                max_rounds=300,
                seed=int(rngs[index].integers(0, 2**31)),
            )
            rates[inertia].append(rate)
            row.append(rate)
        table.add_row(*row)
    means = {inertia: float(np.mean(values)) for inertia, values in rates.items()}
    table.add_row("mean", *[means[i] for i in inertias])
    return ExperimentResult(
        experiment="E12",
        table=table,
        metrics={
            "sync_cycle_rate": means[inertias[0]],
            "inertial_cycle_rate": means[inertias[-1]],
            "inertia_helps": means[inertias[-1]] <= means[inertias[0]],
        },
    )
