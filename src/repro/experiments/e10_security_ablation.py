"""E10 — discussion: dominant-position attacks + staged-vs-naive ablation.

Two parts:

* **Security attack.** Use the reward design mechanism to steer the
  system into an equilibrium where the attacker majority-controls a
  coin (the paper's Discussion warns exactly this is possible). Report
  how often random games admit such a target and the attack's cost.
* **Ablation.** Re-run every E7-style manipulation with the naive
  single-shot designs of :mod:`repro.design.naive` instead of the
  staged mechanism, quantifying how much the anchor construction buys.
"""

from __future__ import annotations


from repro.analysis.security import dominance_target, vulnerable_coins
from repro.core.equilibrium import enumerate_equilibria, greedy_equilibrium
from repro.core.factories import random_game
from repro.design.mechanism import DynamicRewardDesign
from repro.design.naive import proportional_boost_design, single_shot_design
from repro.experiments.common import ExperimentResult
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Discussion: dominance attacks + staged-vs-naive ablation"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=4, miners=6, coins=2, naive_trials_per_pair=2)


def run(
    *,
    games: int = 10,
    miners: int = 6,
    coins: int = 2,
    naive_trials_per_pair: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Dominance attacks and the staged-vs-naive success-rate ablation."""
    rngs = spawn_rngs(seed, games)
    table = Table(
        "E10 — security attack + design ablation",
        ["game", "dominance target", "attack success", "staged", "single-shot", "proportional"],
    )
    attacks_possible = 0
    attacks_succeeded = 0
    staged_successes = 0
    staged_runs = 0
    naive_successes = {"single-shot": 0, "proportional": 0}
    naive_runs = {"single-shot": 0, "proportional": 0}

    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index], ensure_generic=True)
        equilibria = enumerate_equilibria(game)
        start = greedy_equilibrium(game)

        # Part 1: dominance attack for the largest miner on the first coin.
        attacker = max(game.miners, key=lambda m: m.power)
        target = dominance_target(game, attacker, game.coins[0])
        attack_result = "n/a"
        if target is not None and target != start:
            attacks_possible += 1
            mech = DynamicRewardDesign()
            outcome = mech.run(game, start, target, seed=seed + index)
            ok = outcome.success and game.coins[0].name in vulnerable_coins(
                game, outcome.final
            )
            attacks_succeeded += int(ok)
            attack_result = "yes" if ok else "NO"

        # Part 2: ablation on an arbitrary equilibrium pair.
        other = next((eq for eq in equilibria if eq != start), None)
        staged_mark = single_mark = prop_mark = "n/a"
        if other is not None:
            mech = DynamicRewardDesign()
            staged = mech.run(game, start, other, seed=seed + 100 + index)
            staged_runs += 1
            staged_successes += int(staged.success)
            staged_mark = "yes" if staged.success else "NO"

            single_ok = 0
            prop_ok = 0
            for trial in range(naive_trials_per_pair):
                trial_seed = seed + 1000 * (index + 1) + trial
                single = single_shot_design(game, start, other, seed=trial_seed)
                naive_runs["single-shot"] += 1
                single_ok += int(single.success)
                naive_successes["single-shot"] += int(single.success)
                prop = proportional_boost_design(game, start, other, seed=trial_seed)
                naive_runs["proportional"] += 1
                prop_ok += int(prop.success)
                naive_successes["proportional"] += int(prop.success)
            single_mark = f"{single_ok}/{naive_trials_per_pair}"
            prop_mark = f"{prop_ok}/{naive_trials_per_pair}"

        table.add_row(
            f"#{index}",
            "found" if target is not None else "none",
            attack_result,
            staged_mark,
            single_mark,
            prop_mark,
        )

    def _rate(successes: int, runs: int) -> float:
        return successes / runs if runs else float("nan")

    return ExperimentResult(
        experiment="E10",
        table=table,
        metrics={
            "dominance_targets_found": attacks_possible,
            "attack_success_rate": _rate(attacks_succeeded, attacks_possible),
            "staged_success_rate": _rate(staged_successes, staged_runs),
            "single_shot_success_rate": _rate(
                naive_successes["single-shot"], naive_runs["single-shot"]
            ),
            "proportional_success_rate": _rate(
                naive_successes["proportional"], naive_runs["proportional"]
            ),
        },
    )
