"""The E1–E10 experiment runners (one per paper table/figure).

Each module exposes ``run(**params) -> ExperimentResult``; the
``benchmarks/`` directory wraps these in pytest-benchmark targets and
prints the tables EXPERIMENTS.md records.
"""

from repro.experiments import (
    e01_migration,
    e02_convergence,
    e03_no_exact_potential,
    e04_potential_monotonicity,
    e05_welfare,
    e06_better_equilibrium,
    e07_reward_design,
    e08_design_cost,
    e09_learning_speed,
    e10_security_ablation,
    e11_asymmetric,
    e12_simultaneous,
    e13_basins,
    e14_exact_paths,
    e15_noisy_convergence,
    e16_risk,
)
from repro.experiments.common import ExperimentResult

#: E1–E10 reproduce the paper's artifacts; E11–E16 execute its
#: discussion/future-work directions (asymmetric mining, simultaneous
#: dynamics, basin analysis + manipulation planning, noisy sampled
#: learning, realized-reward risk).
ALL_EXPERIMENTS = {
    "E1": e01_migration.run,
    "E2": e02_convergence.run,
    "E3": e03_no_exact_potential.run,
    "E4": e04_potential_monotonicity.run,
    "E5": e05_welfare.run,
    "E6": e06_better_equilibrium.run,
    "E7": e07_reward_design.run,
    "E8": e08_design_cost.run,
    "E9": e09_learning_speed.run,
    "E10": e10_security_ablation.run,
    "E11": e11_asymmetric.run,
    "E12": e12_simultaneous.run,
    "E13": e13_basins.run,
    "E14": e14_exact_paths.run,
    "E15": e15_noisy_convergence.run,
    "E16": e16_risk.run,
}

__all__ = ["ExperimentResult", "ALL_EXPERIMENTS"]
