"""The E1–E16 experiment runners (one per paper table/figure).

Each module exposes ``run(**params) -> ExperimentResult`` plus its own
metadata — ``DESCRIPTION``, the ``--fast`` parameter set
(``FAST_PARAMS``) and declared CLI knob capabilities
(``ACCEPTS_BACKEND`` / ``ACCEPTS_EXECUTOR`` / ``ACCEPTS_WORKERS``).
The :data:`EXPERIMENTS`
registry collects that metadata into :class:`ExperimentSpec` records so
the CLI (and the ``benchmarks/`` harness) never re-derive it from
signatures or parallel dicts.
"""

from dataclasses import dataclass, field
from types import ModuleType
from typing import Any, Callable, Dict, Mapping, Optional

from repro.experiments import (
    e01_migration,
    e02_convergence,
    e03_no_exact_potential,
    e04_potential_monotonicity,
    e05_welfare,
    e06_better_equilibrium,
    e07_reward_design,
    e08_design_cost,
    e09_learning_speed,
    e10_security_ablation,
    e11_asymmetric,
    e12_simultaneous,
    e13_basins,
    e14_exact_paths,
    e15_noisy_convergence,
    e16_risk,
)
from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment's runner plus the metadata its module declares."""

    name: str
    run: Callable[..., ExperimentResult]
    description: str
    #: The shrunken parameter set behind the CLI's ``--fast`` flag.
    fast_params: Mapping[str, Any] = field(default_factory=dict)
    #: Whether ``run`` takes a ``backend=`` / ``executor=`` /
    #: ``workers=`` knob. The CLI forwards the flags only where
    #: declared — no signature inspection.
    accepts_backend: bool = False
    accepts_executor: bool = False
    accepts_workers: bool = False
    #: The experiment's grid as a :class:`~repro.sweep.SweepGrid`
    #: factory (``sweep_grid(**params)``), for experiments that route
    #: through the sweep fabric — drives ``python -m repro sweep``
    #: (sharding, caching, resumable manifests). ``None`` for
    #: experiments without a declarative grid.
    sweep_grid: Optional[Callable[..., Any]] = None


def _spec(name: str, module: ModuleType) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        run=module.run,
        description=module.DESCRIPTION,
        fast_params=dict(module.FAST_PARAMS),
        accepts_backend=getattr(module, "ACCEPTS_BACKEND", False),
        accepts_executor=getattr(module, "ACCEPTS_EXECUTOR", False),
        accepts_workers=getattr(module, "ACCEPTS_WORKERS", False),
        sweep_grid=getattr(module, "sweep_grid", None),
    )


#: E1–E10 reproduce the paper's artifacts; E11–E16 execute its
#: discussion/future-work directions (asymmetric mining, simultaneous
#: dynamics, basin analysis + manipulation planning, noisy sampled
#: learning, realized-reward risk).
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        _spec("E1", e01_migration),
        _spec("E2", e02_convergence),
        _spec("E3", e03_no_exact_potential),
        _spec("E4", e04_potential_monotonicity),
        _spec("E5", e05_welfare),
        _spec("E6", e06_better_equilibrium),
        _spec("E7", e07_reward_design),
        _spec("E8", e08_design_cost),
        _spec("E9", e09_learning_speed),
        _spec("E10", e10_security_ablation),
        _spec("E11", e11_asymmetric),
        _spec("E12", e12_simultaneous),
        _spec("E13", e13_basins),
        _spec("E14", e14_exact_paths),
        _spec("E15", e15_noisy_convergence),
        _spec("E16", e16_risk),
    )
}

#: Back-compat name → runner map (the registry's ``run`` column).
ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    name: spec.run for name, spec in EXPERIMENTS.items()
}

__all__ = ["ALL_EXPERIMENTS", "EXPERIMENTS", "ExperimentResult", "ExperimentSpec"]
