"""E7 — Algorithm 2 / Theorem 2: reward design moves any s0 to any sf.

Random equilibrium pairs, swept over game size and over learner
adversarialness. The claims under test: the mechanism *always* reaches
the target (success 100%), stage loop-iteration counts stay finite and
small (Theorem 2's Φ bound), and success is independent of the learning
order (arbitrary better response).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.equilibrium import greedy_equilibrium
from repro.core.factories import random_configuration, random_game
from repro.design.mechanism import DynamicRewardDesign
from repro.experiments.common import ExperimentResult
from repro.learning.engine import LearningEngine
from repro.learning.policies import MinimalGainPolicy, RandomImprovingPolicy
from repro.learning.schedulers import SmallestFirstScheduler, UniformRandomScheduler
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


def _two_equilibria(game, rng):
    """A pair of distinct equilibria: greedy + learned-from-random."""
    first = greedy_equilibrium(game)
    engine = LearningEngine(record_configurations=False)
    for _ in range(20):
        start = random_configuration(game, seed=rng)
        second = engine.run(game, start, seed=rng).final
        if second != first:
            return first, second
    return None


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Algorithm 2: reward design moves s0 → sf, any learner"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(miner_counts=(4, 6), coins=2, pairs_per_size=2)


def run(
    *,
    miner_counts: Sequence[int] = (4, 6, 8, 12),
    coins: int = 3,
    pairs_per_size: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Success rate, iterations and steps of the mechanism across sizes."""
    learners = (
        ("uniform-random", RandomImprovingPolicy(), UniformRandomScheduler()),
        ("adversarial", MinimalGainPolicy(), SmallestFirstScheduler()),
    )
    table = Table(
        "E7 — dynamic reward design (Algorithm 2 / Theorem 2)",
        [
            "n miners",
            "learner",
            "runs",
            "success",
            "mean stage iters",
            "max stage iters",
            "mean steps",
        ],
    )
    rngs = spawn_rngs(seed, len(miner_counts) * pairs_per_size)
    rng_cursor = 0
    total = 0
    successes = 0
    worst_stage_iters = 0
    for n in miner_counts:
        pairs = []
        for _ in range(pairs_per_size):
            rng = rngs[rng_cursor]
            rng_cursor += 1
            game = random_game(n, coins, seed=rng)
            found = _two_equilibria(game, rng)
            if found is not None:
                pairs.append((game, found[0], found[1]))
        for label, policy, scheduler in learners:
            run_successes = 0
            stage_iters = []
            steps = []
            for game, s0, sf in pairs:
                mechanism = DynamicRewardDesign(policy=policy, scheduler=scheduler)
                result = mechanism.run(game, s0, sf, seed=seed + 17)
                run_successes += int(result.success)
                stage_iters.extend(r.iterations for r in result.stage_reports)
                steps.append(result.total_steps)
            total += len(pairs)
            successes += run_successes
            if stage_iters:
                worst_stage_iters = max(worst_stage_iters, max(stage_iters))
            table.add_row(
                n,
                label,
                len(pairs),
                f"{run_successes}/{len(pairs)}",
                float(np.mean(stage_iters)) if stage_iters else 0.0,
                max(stage_iters) if stage_iters else 0,
                float(np.mean(steps)) if steps else 0.0,
            )
    return ExperimentResult(
        experiment="E7",
        table=table,
        metrics={
            "runs": total,
            "success_rate": successes / total if total else 1.0,
            "worst_stage_iterations": worst_stage_iters,
        },
    )
