"""E1 — Figure 1: the November-2017 BTC → BCH hashrate migration.

Two reproductions of the same episode:

* **Game layer** (matches Figure 1's story cleanly): replay the
  jump-diffusion weight series through equilibrium learning and report
  the BCH hashrate share before, at, and after the exchange-rate spike.
* **Chain layer** (physical realism): the event-driven PoW simulation
  with the 2017 difficulty rules, which additionally reproduces the
  violent EDA-era hashrate oscillation the clean game model abstracts
  away.

The headline check: BCH's share of hashrate rises by roughly the
weight-ratio factor (≈3×) when the price spikes, then decays — the
shape of Figure 1(b).
"""

from __future__ import annotations


from repro.chainsim import BitcoinRetarget, MiningSimulation, SimMiner, bch_2017_rule
from repro.experiments.common import ExperimentResult
from repro.market import bitcoin_cash_spec, bitcoin_spec, btc_bch_scenario
from repro.util.rng import make_rng
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Figure 1: BTC→BCH hashrate migration (game + chain layers)"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(horizon_h=160, resolution_h=8, tail_miners=8, chain_miners=12,
    chain_horizon_h=24)


def run(
    *,
    horizon_h: float = 240.0,
    resolution_h: float = 4.0,
    tail_miners: int = 20,
    chain_miners: int = 30,
    chain_horizon_h: float = 96.0,
    seed: int = 2017,
) -> ExperimentResult:
    """Run both layers of the Figure 1 reproduction."""
    scenario = btc_bch_scenario(
        horizon_h=horizon_h,
        resolution_h=resolution_h,
        tail_miners=tail_miners,
        seed=seed,
    )
    replay = scenario.replay(seed=seed + 1)
    bch_share = replay.hashrate_share("BCH")
    weights = scenario.weight_series()
    ratio = weights.ratio("BCH", "BTC")

    jump_index = int(96.0 / resolution_h)
    pre = float(bch_share[: max(jump_index - 1, 1)].mean())
    peak = float(bch_share[jump_index:].max())
    post = float(bch_share[-max(len(bch_share) // 8, 2):].mean())

    table = Table(
        "E1 — BTC/BCH migration (game layer = Figure 1(b) shape)",
        ["phase", "BCH weight ratio", "BCH hashrate share"],
    )
    table.add_row("pre-spike", float(ratio[: max(jump_index - 1, 1)].mean()), pre)
    table.add_row("spike peak", float(ratio.max()), peak)
    table.add_row("post decay", float(ratio[-max(len(ratio) // 8, 2):].mean()), post)

    # Chain layer: block-granular rerun of the same episode.
    times = scenario.times_h
    btc_path = weights.weights["BTC"]
    bch_path = weights.weights["BCH"]

    def rate_fn(t: float, coin: str) -> float:
        index = min(int(t / resolution_h), len(times) - 1)
        # Weights are fiat/hour; dividing by blocks/hour and coins/block
        # recovers an effective fiat rate — only ratios matter here.
        path = btc_path if coin == "BTC" else bch_path
        spec = bitcoin_spec() if coin == "BTC" else bitcoin_cash_spec()
        return float(path[index]) / (spec.blocks_per_hour * spec.coins_per_block)

    rng = make_rng(seed + 2)
    sim_miners = [
        SimMiner(f"m{i}", float(p)) for i, p in enumerate(rng.uniform(5.0, 50.0, chain_miners))
    ]
    simulation = MiningSimulation(
        [bitcoin_spec(), bitcoin_cash_spec()],
        sim_miners,
        rate_fn,
        difficulty_rules={"BTC": BitcoinRetarget(window=36), "BCH": bch_2017_rule()},
        seed=seed + 3,
    )
    chain_result = simulation.run(chain_horizon_h, sample_resolution_h=resolution_h)
    chain_bch = chain_result.hashrate_shares["BCH"]

    table2_rows = [
        ("blocks found BTC", chain_result.blocks_found("BTC")),
        ("blocks found BCH", chain_result.blocks_found("BCH")),
        ("coin switches", len(chain_result.switches)),
        ("BCH mean share", float(chain_bch.mean())),
        ("BCH share std (EDA oscillation)", float(chain_bch.std())),
    ]
    chain_table = Table(
        "E1 — chain layer (block-granular, 2017 difficulty rules)",
        ["metric", "value"],
    )
    for label, value in table2_rows:
        chain_table.add_row(label, value)

    # Merge both tables into one printable artifact.
    merged = Table(
        "E1 — Figure 1 reproduction",
        ["section", "metric", "value"],
    )
    for row in table.rows:
        merged.add_row("game", f"{row[0]} (ratio {row[1]})", row[2])
    for row in chain_table.rows:
        merged.add_row("chain", row[0], row[1])

    migration_factor = peak / pre if pre > 0 else float("inf")
    return ExperimentResult(
        experiment="E1",
        table=merged,
        metrics={
            "bch_share_pre": pre,
            "bch_share_peak": peak,
            "bch_share_post": post,
            "migration_factor": migration_factor,
            "chain_switches": len(chain_result.switches),
            "chain_bch_mean_share": float(chain_bch.mean()),
        },
    )
