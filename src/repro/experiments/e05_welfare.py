"""E5 — Observation 3 + Claim 4: equilibria are globally optimal.

For random generic games satisfying Assumption 1, enumerate all
equilibria and verify (a) each attains welfare exactly ``Σ F(c)``
(Observation 3), and (b) when more than one equilibrium exists, every
equilibrium admits a strictly-better-off miner elsewhere (Claim 4).
Also reports the price of anarchy/stability (both must equal 1 under
Observation 3) and the payoff Gini spread across equilibria.
"""

from __future__ import annotations

from repro.analysis.efficiency import efficiency_report
from repro.analysis.welfare import gini_coefficient, verifies_observation3
from repro.core.assumptions import check_never_alone
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult
from repro.manipulation.better_equilibrium import find_better_equilibrium_exhaustive
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Observation 3 / Claim 4: equilibria are globally optimal"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=5, miners=6, coins=2)


def run(
    *,
    games: int = 15,
    miners: int = 6,
    coins: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Enumerate equilibria of small generic games and audit Section 4."""
    table = Table(
        "E5 — welfare at equilibrium (Observation 3, Claim 4)",
        ["game", "A1", "equilibria", "all optimal", "PoA", "PoS", "Claim 4 holds", "payoff gini range"],
    )
    rngs = spawn_rngs(seed, games)
    audited = 0
    optimal = 0
    claim4_expected = 0
    claim4_held = 0
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index], ensure_generic=True)
        a1 = check_never_alone(game, exhaustive_limit=100_000)
        equilibria = enumerate_equilibria(game)
        if not equilibria:
            continue
        all_optimal = all(verifies_observation3(game, eq) for eq in equilibria)
        report = efficiency_report(game, equilibria)
        ginis = [
            gini_coefficient(list(game.payoff_vector(eq).values())) for eq in equilibria
        ]
        claim4 = "n/a"
        if a1 and len(equilibria) > 1:
            claim4_expected += len(equilibria)
            holds = all(
                find_better_equilibrium_exhaustive(game, eq) is not None
                for eq in equilibria
            )
            claim4_held += len(equilibria) if holds else 0
            claim4 = "yes" if holds else "NO"
        table.add_row(
            f"#{index}",
            "yes" if a1 else "no",
            len(equilibria),
            "yes" if all_optimal else "NO",
            report.price_of_anarchy,
            report.price_of_stability,
            claim4,
            f"{min(ginis):.3f}–{max(ginis):.3f}",
        )
        if a1:
            audited += len(equilibria)
            optimal += len(equilibria) if all_optimal else 0
    return ExperimentResult(
        experiment="E5",
        table=table,
        metrics={
            "equilibria_audited": audited,
            "observation3_fraction": optimal / audited if audited else 1.0,
            "claim4_fraction": (
                claim4_held / claim4_expected if claim4_expected else 1.0
            ),
        },
    )
