"""E4 — Theorem 1 mechanics: the ordinal potential strictly increases.

Records full trajectories across random games and audits every single
better-response step against ``rank(list(s))`` — the paper's ordinal
potential — plus Observations 1 and 2 (the local RPU facts the proof
rests on). On top of the sampled trajectories, an *exhaustive* tier
audits every edge of the full improvement DAG for small games via the
integer-code enumeration engine (:mod:`repro.kernel.space`) — the
complete computational proof-of-theorem, not just the visited slice.
Any violation would print as a failure row.
"""

from __future__ import annotations


from repro.core.factories import random_configuration, random_game
from repro.kernel.space import ConfigSpace
from repro.core.potential import compare_potential, rpu_list
from repro.experiments.common import ExperimentResult
from repro.learning.engine import LearningEngine
from repro.learning.policies import MinimalGainPolicy, RandomImprovingPolicy
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


def _audit_observations(game, trajectory) -> int:
    """Count Observation 1/2 violations along a trajectory (expect 0)."""
    violations = 0
    for index, step in enumerate(trajectory.steps):
        before = trajectory.configurations[index]
        after = trajectory.configurations[index + 1]
        rpu_source_before = game.rpu(step.source, before)
        rpu_source_after = game.rpu(step.source, after)
        rpu_target_after = game.rpu(step.target, after)
        # Observation 2: RPU_c(s) < min(RPU_c(s'), RPU_c'(s')).
        if rpu_target_after is not None and rpu_source_before is not None:
            if rpu_target_after <= rpu_source_before:
                violations += 1
        if rpu_source_after is not None and rpu_source_before is not None:
            if rpu_source_after <= rpu_source_before:
                violations += 1
        # Observation 1: the target sits strictly later in list(s).
        entries = rpu_list(game, before)
        coin_order = [game.coins[entry[1]] for entry in entries]
        if coin_order.index(step.target) <= coin_order.index(step.source):
            violations += 1
    return violations


def _audit_all_edges(game) -> tuple:
    """(edges audited, violations) over the *entire* improvement DAG.

    Walks every configuration at the integer-code level and checks
    ``H(s) < H(s')`` on every better-response edge; Configurations are
    materialized only to evaluate the Fraction potential comparator.
    """
    space = ConfigSpace(game, symmetry=False)
    edges = 0
    violations = 0
    for code, assign, mass in space.iter_gray():
        successors = space.successor_codes(code, assign, mass)
        if not successors:
            continue
        before = space.config_of(code)
        for child in successors:
            edges += 1
            if compare_potential(game, before, space.config_of(child)) >= 0:
                violations += 1
    return edges, violations


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Ordinal potential strictly increases on every step"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=3, miners=6, coins=3, starts_per_game=2)


def run(
    *,
    games: int = 10,
    miners: int = 8,
    coins: int = 4,
    starts_per_game: int = 3,
    seed: int = 0,
    exact_games: int = 3,
    exact_miners: int = 5,
    exact_coins: int = 2,
) -> ExperimentResult:
    """Audit potential monotonicity and Observations 1–2 on live paths.

    ``exact_games`` additionally audits *every* DAG edge of that many
    small games exhaustively (set it to 0 to skip)."""
    policies = (RandomImprovingPolicy(), MinimalGainPolicy())
    table = Table(
        "E4 — ordinal potential audit (Theorem 1, Observations 1–2)",
        ["game", "policy", "steps audited", "potential increases", "observation violations"],
    )
    rngs = spawn_rngs(seed, games * starts_per_game * 2)
    rng_index = 0
    total_steps = 0
    total_increases = 0
    total_violations = 0
    for game_index in range(games):
        game = random_game(miners, coins, seed=rngs[rng_index])
        rng_index += 1
        for policy in policies:
            steps = 0
            increases = 0
            violations = 0
            for start_index in range(starts_per_game):
                rng = rngs[(game_index * starts_per_game + start_index) % len(rngs)]
                start = random_configuration(game, seed=rng)
                engine = LearningEngine(policy=policy, record_configurations=True)
                trajectory = engine.run(game, start, seed=int(rng.integers(0, 2**31)))
                steps += trajectory.length
                for i in range(len(trajectory.configurations) - 1):
                    if (
                        compare_potential(
                            game,
                            trajectory.configurations[i],
                            trajectory.configurations[i + 1],
                        )
                        < 0
                    ):
                        increases += 1
                violations += _audit_observations(game, trajectory)
            table.add_row(f"#{game_index}", policy.name, steps, increases, violations)
            total_steps += steps
            total_increases += increases
            total_violations += violations

    exact_edges = 0
    exact_edge_violations = 0
    for exact_index in range(exact_games):
        game = random_game(exact_miners, exact_coins, seed=1000 + seed * 97 + exact_index)
        edges, edge_violations = _audit_all_edges(game)
        exact_edges += edges
        exact_edge_violations += edge_violations
        table.add_row(
            f"exact #{exact_index} ({exact_miners}×{exact_coins})",
            "every DAG edge",
            edges,
            edges - edge_violations,
            edge_violations,
        )

    return ExperimentResult(
        experiment="E4",
        table=table,
        metrics={
            "steps_audited": total_steps,
            "strict_increase_fraction": (
                total_increases / total_steps if total_steps else 1.0
            ),
            "observation_violations": total_violations,
            "exact_edges_audited": exact_edges,
            "exact_edge_violations": exact_edge_violations,
        },
    )
