"""E16 — extension: reward risk at and off equilibrium.

Expected payoffs hide the variance miners actually live with. For one
game this experiment contrasts an exact equilibrium (the greedy
Appendix A construction) with an unstable start: per-miner expected
totals, closed-form vs. sampled standard deviations, empirical
ruin-style tail probabilities and their Chebyshev bounds
(:mod:`repro.stochastic.risk`), plus the chain-simulator
reconciliation (:mod:`repro.stochastic.bridge`) that ties the block
lottery back to the physical PoW layer.
"""

from __future__ import annotations

from repro.core.equilibrium import greedy_equilibrium
from repro.core.factories import random_configuration, random_game
from repro.experiments.common import ExperimentResult
from repro.stochastic.bridge import reconcile
from repro.stochastic.risk import reward_risk, ruin_bound
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Extension: realized-reward risk at/off equilibrium"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(miners=5, coins=2, horizon_rounds=400, replications=12,
    reconcile_horizon_h=120.0)


def run(
    *,
    miners: int = 6,
    coins: int = 2,
    horizon_rounds: int = 2_000,
    replications: int = 40,
    ruin_fraction: float = 0.8,
    reconcile_horizon_h: float = 400.0,
    seed: int = 0,
) -> ExperimentResult:
    """Risk profiles at equilibrium vs. off equilibrium, one game."""
    rng, start_rng, eq_rng, off_rng = spawn_rngs(seed, 4)
    game = random_game(miners, coins, seed=rng)
    equilibrium = greedy_equilibrium(game)
    start = random_configuration(game, seed=start_rng)
    for _ in range(50):
        if not game.is_stable(start):
            break
        start = random_configuration(game, seed=start_rng)

    table = Table(
        "E16 — realized-reward risk (closed form, sampled, Chebyshev)",
        [
            "state",
            "miner",
            "expected total",
            "realized mean",
            "exact σ",
            "realized σ",
            "CV",
            f"P(ruin<{ruin_fraction:.0%})",
            "Chebyshev bound",
        ],
    )
    profiles = {}
    for label, config, config_rng in (
        ("equilibrium", equilibrium, eq_rng),
        ("off-equilibrium", start, off_rng),
    ):
        profile = reward_risk(
            game,
            config,
            horizon_rounds=horizon_rounds,
            replications=replications,
            ruin_fraction=ruin_fraction,
            seed=int(config_rng.integers(0, 2**31)),
        )
        profiles[label] = (config, profile)
        for entry in profile.miners:
            bound = ruin_bound(
                game,
                config,
                game.miner_named(entry.name),
                horizon_rounds=horizon_rounds,
                ruin_fraction=ruin_fraction,
            )
            table.add_row(
                label,
                entry.name,
                float(entry.expected_total),
                float(entry.realized_mean),
                entry.exact_std,
                entry.realized_std,
                entry.coefficient_of_variation,
                entry.ruin_probability,
                bound,
            )

    report = reconcile(
        game,
        equilibrium,
        horizon_h=reconcile_horizon_h,
        lottery_rounds=horizon_rounds,
        seed=int(eq_rng.integers(0, 2**31)),
    )
    eq_profile = profiles["equilibrium"][1]
    off_profile = profiles["off-equilibrium"][1]
    return ExperimentResult(
        experiment="E16",
        table=table,
        metrics={
            "max_relative_bias_at_equilibrium": eq_profile.max_relative_bias(),
            "max_relative_bias_off_equilibrium": off_profile.max_relative_bias(),
            "max_ruin_probability": max(
                entry.ruin_probability for entry in eq_profile.miners
            ),
            "chain_reconciliation_deviation": report.max_deviation("chain"),
            "lottery_reconciliation_deviation": report.max_deviation("lottery"),
        },
    )
