"""E2 — Theorem 1: arbitrary better-response learning always converges.

Sweeps game size (miners × coins), power distribution and learning
policy; reports step counts to equilibrium. The theorem's claim is the
100% convergence column; the step counts are the empirical convergence
speed the paper's discussion asks about.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.convergence import stats_from_steps
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult, resolve_execution
from repro.learning.policies import (
    BestResponsePolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Theorem 1: better-response learning always converges"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(miner_counts=(5, 10), coin_counts=(2,), runs_per_cell=3)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--executor``/``--workers`` only where declared).
ACCEPTS_BACKEND = True
ACCEPTS_WORKERS = True
ACCEPTS_EXECUTOR = True


def _policies():
    return (RandomImprovingPolicy(), BestResponsePolicy(), MinimalGainPolicy())


def sweep_grid(
    *,
    miner_counts: Sequence[int] = (5, 10, 25, 50, 100),
    coin_counts: Sequence[int] = (2, 5, 10),
    runs_per_cell: int = 10,
    power_distribution: str = "uniform",
    seed: int = 0,
    backend: str = "fast",
):
    """The E2 grid as a :class:`~repro.sweep.SweepGrid` (game × policy).

    Per-cell seeds follow the exact draw order of the pre-fabric loop
    (one game per (n, k) from its spawned rng, then one seed draw per
    policy from the *same* rng), so running this grid — through
    :func:`~repro.sweep.run_sweep`, sharded across hosts, or from
    cache — reproduces the historical E2 numbers bit-for-bit. Cells
    stream (:class:`~repro.kernel.batch.CellStats`): E2 reads step
    counts only.
    """
    from repro.sweep import SweepGrid, labeled

    policies = _policies()
    cell_rngs = spawn_rngs(seed, len(miner_counts) * len(coin_counts))
    games = []
    seeds = {}
    index = 0
    for n in miner_counts:
        for k in coin_counts:
            rng = cell_rngs[index]
            index += 1
            game = random_game(n, k, power_distribution=power_distribution, seed=rng)
            position = len(games)
            games.append(labeled(f"{n}x{k}", game))
            for policy in policies:
                seeds[(position, policy.name)] = int(rng.integers(0, 2**31))
    game_values = [entry.value for entry in games]

    def override(values):
        position = next(i for i, g in enumerate(game_values) if g is values["game"])
        return {"seed": seeds[(position, values["policy"].name)]}

    return SweepGrid(
        {"game": games, "policy": list(policies)},
        base={"runs": runs_per_cell, "backend": backend, "stream": True},
        override=override,
    )


def run(
    *,
    miner_counts: Sequence[int] = (5, 10, 25, 50, 100),
    coin_counts: Sequence[int] = (2, 5, 10),
    runs_per_cell: int = 10,
    power_distribution: str = "uniform",
    seed: int = 0,
    backend: str = "fast",
    executor: str = "auto",
    workers: int = 0,
) -> ExperimentResult:
    """The E2 sweep; every cell must converge in 100% of runs.

    The grid is declared by :func:`sweep_grid` and executed as one
    ephemeral :func:`~repro.sweep.run_sweep` (all pending cells in one
    :func:`repro.run_many` call, so ``executor="auto"`` still packs
    the whole grid into one tensor population). Per-cell seeds match
    the pre-fabric loop, so no number changes. ``workers=`` is the
    deprecated spelling of ``executor="process"``.
    """
    from repro.sweep import run_sweep

    executor, max_workers = resolve_execution(executor=executor, workers=workers, stacklevel=3)
    policies = _policies()
    table = Table(
        "E2 — convergence of better-response learning (Theorem 1)",
        ["n miners", "k coins", "policy", "mean steps", "p95 steps", "max steps", "converged"],
    )
    grid = sweep_grid(
        miner_counts=miner_counts,
        coin_counts=coin_counts,
        runs_per_cell=runs_per_cell,
        power_distribution=power_distribution,
        seed=seed,
        backend=backend,
    )
    sweep = run_sweep(grid, executor=executor, max_workers=max_workers)
    labels = [
        (n, k, policy) for n in miner_counts for k in coin_counts for policy in policies
    ]
    total_runs = 0
    converged_runs = 0
    max_steps_seen = 0
    for (n, k, policy), cell_stats in zip(labels, sweep.in_order()):
        stats = stats_from_steps(list(cell_stats.steps), monotone=cell_stats.runs)
        table.add_row(
            n,
            k,
            policy.name,
            stats.mean_steps,
            stats.p95_steps,
            stats.max_steps,
            "100%",
        )
        total_runs += stats.runs
        converged_runs += stats.runs  # engine raises otherwise
        max_steps_seen = max(max_steps_seen, stats.max_steps)
    return ExperimentResult(
        experiment="E2",
        table=table,
        metrics={
            "total_runs": total_runs,
            "convergence_rate": converged_runs / total_runs,
            "max_steps_seen": max_steps_seen,
        },
    )
