"""E2 — Theorem 1: arbitrary better-response learning always converges.

Sweeps game size (miners × coins), power distribution and learning
policy; reports step counts to equilibrium. The theorem's claim is the
100% convergence column; the step counts are the empirical convergence
speed the paper's discussion asks about.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.convergence import stats_from_steps
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult, resolve_execution
from repro.learning.policies import (
    BestResponsePolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Theorem 1: better-response learning always converges"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(miner_counts=(5, 10), coin_counts=(2,), runs_per_cell=3)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--executor``/``--workers`` only where declared).
ACCEPTS_BACKEND = True
ACCEPTS_WORKERS = True
ACCEPTS_EXECUTOR = True


def run(
    *,
    miner_counts: Sequence[int] = (5, 10, 25, 50, 100),
    coin_counts: Sequence[int] = (2, 5, 10),
    runs_per_cell: int = 10,
    power_distribution: str = "uniform",
    seed: int = 0,
    backend: str = "fast",
    executor: str = "auto",
    workers: int = 0,
) -> ExperimentResult:
    """The E2 sweep; every cell must converge in 100% of runs.

    The whole grid is ONE :func:`repro.run_many` call — one
    :class:`~repro.run.RunSpec` per (size, policy) cell, each with the
    same per-cell seed the serial loop would draw — so ``executor=``
    picks the mechanism (tensor-vectorized populations by default on
    ``"auto"``) without changing a single number. ``workers=`` is the
    deprecated spelling of ``executor="process"``.
    """
    from repro.run import RunSpec, run_many

    executor, max_workers = resolve_execution(executor=executor, workers=workers, stacklevel=3)
    policies = (RandomImprovingPolicy(), BestResponsePolicy(), MinimalGainPolicy())
    table = Table(
        "E2 — convergence of better-response learning (Theorem 1)",
        ["n miners", "k coins", "policy", "mean steps", "p95 steps", "max steps", "converged"],
    )
    cell_rngs = spawn_rngs(seed, len(miner_counts) * len(coin_counts))
    cells = []
    labels = []
    cell = 0
    for n in miner_counts:
        for k in coin_counts:
            rng = cell_rngs[cell]
            cell += 1
            game = random_game(n, k, power_distribution=power_distribution, seed=rng)
            for policy in policies:
                # The same per-measurement seed draw order the serial
                # measure_convergence loop used, so results are stable
                # across releases and executors.
                cells.append(
                    RunSpec(
                        game=game,
                        runs=runs_per_cell,
                        policy=policy,
                        backend=backend,
                        seed=int(rng.integers(0, 2**31)),
                        label=f"{n}x{k}:{policy.name}",
                    )
                )
                labels.append((n, k, policy))
    results = run_many(cells, executor=executor, max_workers=max_workers)
    total_runs = 0
    converged_runs = 0
    max_steps_seen = 0
    for (n, k, policy), summaries in zip(labels, results):
        stats = stats_from_steps(
            [summary.steps for summary in summaries], monotone=len(summaries)
        )
        table.add_row(
            n,
            k,
            policy.name,
            stats.mean_steps,
            stats.p95_steps,
            stats.max_steps,
            "100%",
        )
        total_runs += stats.runs
        converged_runs += stats.runs  # engine raises otherwise
        max_steps_seen = max(max_steps_seen, stats.max_steps)
    return ExperimentResult(
        experiment="E2",
        table=table,
        metrics={
            "total_runs": total_runs,
            "convergence_rate": converged_runs / total_runs,
            "max_steps_seen": max_steps_seen,
        },
    )
