"""E2 — Theorem 1: arbitrary better-response learning always converges.

Sweeps game size (miners × coins), power distribution and learning
policy; reports step counts to equilibrium. The theorem's claim is the
100% convergence column; the step counts are the empirical convergence
speed the paper's discussion asks about.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.convergence import measure_convergence
from repro.core.factories import random_game
from repro.experiments.common import ExperimentResult, resolve_batch_runner
from repro.learning.policies import (
    BestResponsePolicy,
    MinimalGainPolicy,
    RandomImprovingPolicy,
)
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Theorem 1: better-response learning always converges"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(miner_counts=(5, 10), coin_counts=(2,), runs_per_cell=3)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--workers`` only where declared).
ACCEPTS_BACKEND = True
ACCEPTS_WORKERS = True


def run(
    *,
    miner_counts: Sequence[int] = (5, 10, 25, 50, 100),
    coin_counts: Sequence[int] = (2, 5, 10),
    runs_per_cell: int = 10,
    power_distribution: str = "uniform",
    seed: int = 0,
    backend: str = "fast",
    workers: int = 0,
) -> ExperimentResult:
    """The E2 sweep; every cell must converge in 100% of runs.

    ``backend``/``workers`` follow the convention documented in
    :mod:`repro.experiments.common` — same numbers, different speed.
    """
    runner = resolve_batch_runner(backend=backend, workers=workers)
    policies = (RandomImprovingPolicy(), BestResponsePolicy(), MinimalGainPolicy())
    table = Table(
        "E2 — convergence of better-response learning (Theorem 1)",
        ["n miners", "k coins", "policy", "mean steps", "p95 steps", "max steps", "converged"],
    )
    total_runs = 0
    converged_runs = 0
    max_steps_seen = 0
    cell_rngs = spawn_rngs(seed, len(miner_counts) * len(coin_counts))
    cell = 0
    try:
        for n in miner_counts:
            for k in coin_counts:
                rng = cell_rngs[cell]
                cell += 1
                game = random_game(n, k, power_distribution=power_distribution, seed=rng)
                for policy in policies:
                    stats = measure_convergence(
                        game,
                        runs=runs_per_cell,
                        policy=policy,
                        seed=int(rng.integers(0, 2**31)),
                        backend=backend,
                        runner=runner,
                    )
                    table.add_row(
                        n,
                        k,
                        policy.name,
                        stats.mean_steps,
                        stats.p95_steps,
                        stats.max_steps,
                        "100%",
                    )
                    total_runs += stats.runs
                    converged_runs += stats.runs  # engine raises otherwise
                    max_steps_seen = max(max_steps_seen, stats.max_steps)
    finally:
        if runner is not None:
            runner.close()
    return ExperimentResult(
        experiment="E2",
        table=table,
        metrics={
            "total_runs": total_runs,
            "convergence_rate": converged_runs / total_runs,
            "max_steps_seen": max_steps_seen,
        },
    )
