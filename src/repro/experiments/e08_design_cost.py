"""E8 — manipulation cost vs indefinite gain (Section 5's economics).

Executes real manipulations end-to-end: find a Proposition 2
improvement, buy it with the reward design mechanism, price the
mechanism's reward boosts as whale-transaction fee spend, and report
the beneficiary's break-even horizon — the quantitative version of the
paper's "pay a finite cost while gaining an advantage indefinitely".
Also compares the whale lever with the exchange-rate lever.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro._numeric import to_fraction
from repro.core.equilibrium import enumerate_equilibria
from repro.core.factories import random_game
from repro.design.mechanism import DynamicRewardDesign
from repro.experiments.common import ExperimentResult
from repro.manipulation.better_equilibrium import improvement_opportunities
from repro.manipulation.exchange import PriceImpactModel, exchange_cost_of_phase
from repro.manipulation.whale import manipulation_roi
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Manipulation economics: bounded cost, indefinite gain"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(games=4, miners=6, coins=2)


def run(
    *,
    games: int = 8,
    miners: int = 6,
    coins: int = 2,
    market_depth: float = 50.0,
    seed: int = 0,
) -> ExperimentResult:
    """Cost, gain, break-even and lever comparison for real manipulations."""
    table = Table(
        "E8 — manipulation economics (bounded cost, indefinite gain)",
        [
            "game",
            "beneficiary",
            "gain/round",
            "whale cost",
            "break-even rounds",
            "exchange-lever cost",
        ],
    )
    rngs = spawn_rngs(seed, games)
    break_evens = []
    executed = 0
    for index in range(games):
        game = random_game(miners, coins, seed=rngs[index], ensure_generic=True)
        equilibria = enumerate_equilibria(game)
        if len(equilibria) < 2:
            continue
        start = equilibria[0]
        opportunities = improvement_opportunities(game, start, equilibria)
        if not opportunities:
            continue
        best = opportunities[0]
        mechanism = DynamicRewardDesign()
        result = mechanism.run(game, start, best.target, seed=seed + index)
        if not result.success:
            continue
        executed += 1
        roi = manipulation_roi(game, best.miner, start, best.target, result.ledger)

        # Price the same boosts through the exchange-rate lever.
        # Exact conversion: a float depth enters via its dyadic
        # expansion, never a rounded approximation.
        impact = PriceImpactModel(depth=to_fraction(market_depth, name="market_depth"))
        exchange_cost = Fraction(0)
        for phase in result.ledger.phases:
            # One phase boosts at most one coin above baseline by
            # excess_per_round; approximate the factor via total reward.
            base_total = game.rewards.total()
            designed_total = base_total + phase.excess_per_round
            exchange_cost += exchange_cost_of_phase(
                base_total, designed_total, phase.rounds, impact
            )

        if roi.break_even_rounds is not None:
            break_evens.append(roi.break_even_rounds)
        table.add_row(
            f"#{index}",
            roi.miner,
            float(roi.gain_per_round),
            float(roi.cost),
            roi.break_even_rounds if roi.break_even_rounds is not None else "never",
            float(exchange_cost),
        )
    return ExperimentResult(
        experiment="E8",
        table=table,
        metrics={
            "manipulations_executed": executed,
            "all_costs_finite": all(np.isfinite(b) for b in break_evens),
            "median_break_even_rounds": (
                float(np.median(break_evens)) if break_evens else float("nan")
            ),
        },
    )
