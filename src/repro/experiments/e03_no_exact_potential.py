"""E3 — Proposition 1: the game has no exact potential.

Reproduces the paper's 2×2 counterexample cycle (defect 2/3) and then
audits random small games for non-closing 4-cycles: by Monderer &
Shapley, *any* nonzero cycle defect refutes an exact potential, so the
table reports how ubiquitous the refutation is.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.factories import random_game
from repro.core.potential import (
    find_nonzero_four_cycle,
    proposition1_counterexample,
)
from repro.experiments.common import ExperimentResult
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


def run(*, random_games: int = 20, seed: int = 0) -> ExperimentResult:
    """Paper counterexample + randomized 4-cycle audit."""
    _, paper_defect = proposition1_counterexample()
    table = Table(
        "E3 — no exact potential (Proposition 1)",
        ["game", "witness 4-cycle found", "cycle defect"],
    )
    table.add_row("paper counterexample (m=[2,1], F=[1,1])", "yes", str(paper_defect))

    witnesses = 0
    rngs = spawn_rngs(seed, random_games)
    for index in range(random_games):
        game = random_game(3, 2, seed=rngs[index])
        witness = find_nonzero_four_cycle(game)
        if witness is not None:
            witnesses += 1
            if index < 5:
                table.add_row(
                    f"random game #{index}",
                    "yes",
                    str(witness[5]),
                )
    table.add_row(
        f"random 3×2 games with a witness",
        f"{witnesses}/{random_games}",
        "—",
    )
    return ExperimentResult(
        experiment="E3",
        table=table,
        metrics={
            "paper_defect": paper_defect,
            "paper_defect_matches": paper_defect == Fraction(2, 3),
            "random_witness_fraction": witnesses / random_games,
        },
    )
