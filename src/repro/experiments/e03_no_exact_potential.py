"""E3 — Proposition 1: the game has no exact potential.

Reproduces the paper's 2×2 counterexample cycle (defect 2/3) and then
audits random games for non-closing 4-cycles: by Monderer & Shapley,
*any* nonzero cycle defect refutes an exact potential, so the table
reports how ubiquitous the refutation is. The search runs on the
integer-code engine (:mod:`repro.kernel.space`) — each 4-cycle is
tested by integer arithmetic over one common denominator — which makes
a second, larger audit tier (4 miners × 3 coins, ~2000 cycles per
game) affordable where the Fraction scan was not.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.factories import random_game
from repro.core.potential import (
    find_nonzero_four_cycle,
    proposition1_counterexample,
)
from repro.experiments.common import ExperimentResult
from repro.util.rng import spawn_rngs
from repro.util.tables import Table


#: One-line summary shown by ``python -m repro list``.
DESCRIPTION = "Proposition 1: no exact potential (cycle defect 2/3)"

#: The shrunken workload behind the CLI's ``--fast`` flag.
FAST_PARAMS = dict(random_games=5)

#: Declared CLI knob capabilities (the registry forwards
#: ``--backend``/``--workers`` only where declared).
ACCEPTS_BACKEND = True


def run(
    *,
    random_games: int = 20,
    large_games: int = 10,
    large_miners: int = 4,
    large_coins: int = 3,
    seed: int = 0,
    backend: str = "space",
) -> ExperimentResult:
    """Paper counterexample + randomized 4-cycle audits (two size tiers)."""
    _, paper_defect = proposition1_counterexample()
    table = Table(
        "E3 — no exact potential (Proposition 1)",
        ["game", "witness 4-cycle found", "cycle defect"],
    )
    table.add_row("paper counterexample (m=[2,1], F=[1,1])", "yes", str(paper_defect))

    witnesses = 0
    rngs = spawn_rngs(seed, random_games + large_games)
    for index in range(random_games):
        game = random_game(3, 2, seed=rngs[index])
        witness = find_nonzero_four_cycle(game, backend=backend)
        if witness is not None:
            witnesses += 1
            if index < 5:
                table.add_row(
                    f"random game #{index}",
                    "yes",
                    str(witness[5]),
                )
    table.add_row(
        "random 3×2 games with a witness",
        f"{witnesses}/{random_games}",
        "—",
    )

    large_witnesses = 0
    for index in range(large_games):
        game = random_game(large_miners, large_coins, seed=rngs[random_games + index])
        if find_nonzero_four_cycle(game, backend=backend) is not None:
            large_witnesses += 1
    if large_games:
        table.add_row(
            f"random {large_miners}×{large_coins} games with a witness",
            f"{large_witnesses}/{large_games}",
            "—",
        )

    return ExperimentResult(
        experiment="E3",
        table=table,
        metrics={
            "paper_defect": paper_defect,
            "paper_defect_matches": paper_defect == Fraction(2, 3),
            "random_witness_fraction": witnesses / random_games,
            "large_witness_fraction": (
                large_witnesses / large_games if large_games else 0.0
            ),
        },
    )
