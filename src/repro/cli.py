"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available experiments with one-line descriptions.
``run E7 [--seed N] [--fast] [--backend B] [--executor X] [--workers N]
[--metrics] [--trace PATH]``
    Run one experiment and print its table (``--fast`` shrinks the
    workload for a quick look; ``--backend``/``--executor``/``--workers``
    are passed through to runners that accept them — same numbers,
    different speed; ``--workers`` is the deprecated spelling of
    ``--executor process``). ``--metrics`` prints the observability
    summary table; ``--trace PATH`` writes a JSONL event trace plus a
    ``PATH.manifest.json`` run manifest (args, seed, versions, wall
    time, counter totals). Existing trace/manifest files are never
    clobbered unless ``--force`` is given.
``sweep E2 [--out DIR] [--shard K/N] [--merge] [--seed N] [--fast] …``
    Run an experiment's declarative grid through the sweep fabric
    (:mod:`repro.sweep`): content-addressed caching under
    ``DIR/cache/``, append-only shard manifests under ``DIR/shards/``,
    and a deterministic ``bench.json``-compatible ``DIR/report.json``.
    A killed sweep re-run with the same arguments resumes (completed
    cells are cache hits). ``--shard K/N`` runs only shard K of an
    N-way fingerprint partition (run each shard anywhere, then
    ``--merge`` folds the shared cache into the report). Without
    ``--out`` the sweep is ephemeral (no cache, no manifests).

Global flags (before the subcommand): ``-v``/``-q`` raise/lower the
``repro.*`` logging level (repeatable).
``all [--fast]``
    Run every experiment in order.
``demo [--miners N] [--coins K] [--seed N] [--backend B] [--executor X] [--noisy]``
    Generate a random game, converge learning from a random start, and
    print the equilibrium with payoffs and a basin profile.
    ``--noisy`` additionally runs the sample-based learner from the
    same start and reports whether it found an exact equilibrium.
``classes [--miners N] [--coins K] [--tiers T] [--seed N] [--restricted]``
    Population-compressed walkthrough: build a hardware-tier class game
    (default one million miners in four tiers), converge the exact
    count-level stepper, and print equilibrium hashrate shares and
    per-tier payoffs.
``migrate [--seed N]``
    Replay the Figure 1 BTC/BCH episode and print sparklines.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Game of Coins (ICDCS 2021) reproduction toolkit",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more repro.* logging (repeatable: -v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="less repro.* logging (repeatable)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS, key=_experiment_key))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--fast", action="store_true", help="shrunken workload")
    run.add_argument(
        "--backend",
        choices=("fast", "exact", "class"),
        default=None,
        help="numeric backend for runners that accept one (identical results)",
    )
    run.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process", "vectorized"),
        default=None,
        help="batch mechanism for runners that accept one (identical results)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="deprecated: use --executor process (0 = serial)",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/timers and print the observability summary",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL event trace to PATH plus PATH.manifest.json",
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing --trace file and its manifest",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run an experiment grid through the sweep fabric"
    )
    sweep.add_argument("experiment", choices=sorted(EXPERIMENTS, key=_experiment_key))
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--fast", action="store_true", help="shrunken workload")
    sweep.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="sweep directory (cache, shard manifests, report.json); "
        "omit for an ephemeral run",
    )
    sweep.add_argument(
        "--shard",
        metavar="K/N",
        default=None,
        help="run only shard K of an N-way partition (requires --out)",
    )
    sweep.add_argument(
        "--merge",
        action="store_true",
        help="merge a completed sharded sweep's cache into report.json and exit",
    )
    sweep.add_argument(
        "--backend",
        choices=("fast", "exact", "class"),
        default=None,
        help="numeric backend for grids that accept one (identical results)",
    )
    sweep.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process", "vectorized"),
        default="auto",
        help="batch mechanism (identical results)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="deprecated: use --executor process (0 = serial)",
    )
    sweep.add_argument(
        "--wave",
        type=int,
        default=1,
        help="cells committed to cache per batch (default 1: finest resume "
        "granularity; 0 = all pending cells in one batch)",
    )
    sweep.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every cell instead of loading completed ones from cache",
    )
    sweep.add_argument(
        "--force",
        action="store_true",
        help="override the root-seed receipt check / --no-resume clobber refusal",
    )
    sweep.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters (incl. sweep.cache.*) and print the summary",
    )

    run_all = subparsers.add_parser("all", help="run every experiment")
    run_all.add_argument("--seed", type=int, default=0)
    run_all.add_argument("--fast", action="store_true")

    demo = subparsers.add_parser("demo", help="random game walkthrough")
    demo.add_argument("--miners", type=int, default=8)
    demo.add_argument("--coins", type=int, default=3)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--backend",
        choices=("fast", "exact", "class"),
        default="fast",
        help="learning-loop arithmetic (identical trajectories)",
    )
    demo.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process", "vectorized"),
        default="auto",
        help="batch mechanism for the basin sampling (identical results)",
    )
    demo.add_argument(
        "--workers",
        type=int,
        default=0,
        help="deprecated: use --executor process",
    )
    demo.add_argument(
        "--noisy",
        action="store_true",
        help="also run the sample-based noisy learner from the same start",
    )
    demo.add_argument(
        "--budget",
        type=int,
        default=64,
        help="lottery rounds per estimate for --noisy (default 64)",
    )

    classes = subparsers.add_parser(
        "classes", help="population-compressed walkthrough (millions of miners)"
    )
    classes.add_argument("--miners", type=int, default=1_000_000)
    classes.add_argument("--coins", type=int, default=4)
    classes.add_argument("--tiers", type=int, default=4)
    classes.add_argument("--seed", type=int, default=0)
    classes.add_argument(
        "--restricted",
        action="store_true",
        help="restrict higher hardware tiers to later coins",
    )

    migrate = subparsers.add_parser("migrate", help="Figure 1 sparkline replay")
    migrate.add_argument("--seed", type=int, default=2017)
    return parser


def _experiment_key(name: str) -> int:
    return int(name[1:])


def _cmd_list(out) -> int:
    for name in sorted(EXPERIMENTS, key=_experiment_key):
        out.write(f"{name:>4}  {EXPERIMENTS[name].description}\n")
    return 0


def _cmd_run(
    name: str,
    seed: int,
    fast: bool,
    out,
    backend: Optional[str] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    metrics: bool = False,
    trace: Optional[str] = None,
    force: bool = False,
) -> int:
    spec = EXPERIMENTS[name]
    params = dict(spec.fast_params) if fast else {}
    params["seed"] = seed
    # Forward only the knobs the experiment declares it accepts; the
    # CLI stays uniform while experiments adopt backend/executor
    # incrementally.
    for knob, value, accepted in (
        ("backend", backend, spec.accepts_backend),
        ("executor", executor, spec.accepts_executor),
        ("workers", workers, spec.accepts_workers),
    ):
        if value is not None:
            if not accepted:
                out.write(f"note: {name} does not take --{knob}; ignoring\n")
            else:
                params[knob] = value
    if not metrics and trace is None:
        result = spec.run(**params)
        out.write(result.render() + "\n")
        out.write(f"\nmetrics: {result.metrics}\n")
        return 0

    from time import perf_counter

    from repro.obs import MetricsRecorder, RunManifest, TraceWriter, observe, report

    try:
        writer = TraceWriter(trace, force=force) if trace is not None else None
    except FileExistsError as error:
        out.write(f"error: {error}\n")
        return 2
    recorder = MetricsRecorder(trace=writer)
    started = perf_counter()
    with observe(recorder):
        result = spec.run(**params)
    wall = perf_counter() - started
    out.write(result.render() + "\n")
    out.write(f"\nmetrics: {result.metrics}\n")
    if writer is not None:
        writer.close()
        manifest_path = f"{writer.path}.manifest.json"
        manifest = RunManifest.from_recorder(
            recorder,
            command=f"run {name}",
            args={
                "experiment": name,
                "seed": seed,
                "fast": fast,
                "backend": backend,
                "executor": executor,
                "workers": workers,
            },
            seed=seed,
            executor=executor if executor is not None else "auto",
            wall_seconds=wall,
        )
        try:
            manifest.write(manifest_path, force=force)
        except FileExistsError as error:
            out.write(f"error: {error}\n")
            return 2
        out.write(f"trace: {writer.path} ({writer.records} records)\n")
        out.write(f"manifest: {manifest_path}\n")
    if metrics:
        out.write("\n" + report(recorder).render() + "\n")
    return 0


def _cmd_sweep(
    name: str,
    seed: int,
    fast: bool,
    out,
    directory: Optional[str] = None,
    shard: Optional[str] = None,
    merge: bool = False,
    backend: Optional[str] = None,
    executor: str = "auto",
    workers: int = 0,
    wave: int = 1,
    resume: bool = True,
    force: bool = False,
    metrics: bool = False,
) -> int:
    import os

    from repro.experiments.common import resolve_execution
    from repro.sweep import SweepError, merge_sweep, run_sweep

    spec = EXPERIMENTS[name]
    if spec.sweep_grid is None:
        sweepable = ", ".join(
            n
            for n in sorted(EXPERIMENTS, key=_experiment_key)
            if EXPERIMENTS[n].sweep_grid is not None
        )
        out.write(f"{name} declares no sweep grid (sweepable: {sweepable})\n")
        return 2
    if merge:
        if directory is None:
            out.write("--merge requires --out DIR\n")
            return 2
        try:
            report = merge_sweep(directory)
        except SweepError as error:
            out.write(f"error: {error}\n")
            return 1
        out.write(
            f"merged {len(report['benchmarks'])} cell(s) -> "
            f"{os.path.join(directory, 'report.json')}\n"
        )
        return 0
    params = dict(spec.fast_params) if fast else {}
    params["seed"] = seed
    if backend is not None:
        if spec.accepts_backend:
            params["backend"] = backend
        else:
            out.write(f"note: {name} does not take --backend; ignoring\n")
    grid = spec.sweep_grid(**params)
    executor, max_workers = resolve_execution(executor=executor, workers=workers)

    from repro.obs import MetricsRecorder, observe, report

    recorder = MetricsRecorder()
    try:
        with observe(recorder) if metrics else _null_context():
            result = run_sweep(
                grid,
                out=directory,
                seed=seed,
                executor=executor,
                max_workers=max_workers,
                shard=shard,
                wave=None if wave == 0 else wave,
                resume=resume,
                force=force,
            )
    except SweepError as error:
        out.write(f"error: {error}\n")
        return 1
    shard_note = f" (shard {result.shard[0]}/{result.shard[1]})" if result.shard else ""
    out.write(
        f"{name} sweep{shard_note}: {len(result.cells)} cell(s), "
        f"{result.cache_hits} cached, {result.cache_misses} computed "
        f"in {result.wall_seconds:.3f}s\n"
    )
    if result.report_path is not None:
        out.write(f"report: {result.report_path}\n")
    elif result.shard is not None:
        out.write("run the remaining shards, then merge with --merge\n")
    if metrics:
        out.write("\n" + report(recorder).render() + "\n")
    return 0


def _null_context():
    from contextlib import nullcontext

    return nullcontext()


def _cmd_demo(
    miners: int,
    coins: int,
    seed: int,
    out,
    backend: str = "fast",
    executor: str = "auto",
    workers: int = 0,
    noisy: bool = False,
    budget: int = 64,
) -> int:
    from repro.analysis.basins import basin_profile
    from repro.analysis.welfare import payoff_distribution
    from repro.core.factories import random_configuration, random_game
    from repro.experiments.common import resolve_execution
    from repro.learning.engine import LearningEngine

    game = random_game(miners, coins, seed=seed)
    out.write(f"{game}\n")
    start = random_configuration(game, seed=seed + 1)
    trajectory = LearningEngine(backend=backend).run(game, start, seed=seed + 2)
    out.write(
        f"converged in {trajectory.length} steps to {trajectory.final.as_dict()}\n"
    )
    out.write("payoffs:\n")
    for name, payoff in payoff_distribution(game, trajectory.final).items():
        out.write(f"  {name}: {float(payoff):.3f}\n")
    executor, max_workers = resolve_execution(executor=executor, workers=workers)
    profile = basin_profile(
        game, samples=25, seed=seed + 3, backend=backend,
        executor=executor, max_workers=max_workers,
    )
    out.write(
        f"basins: {profile.distinct_equilibria} equilibria reached from 25 starts, "
        f"entropy {profile.entropy():.2f} bits\n"
    )
    if noisy:
        from repro.stochastic.noisy_engine import NoisyLearningEngine

        result = NoisyLearningEngine(budget=budget).run(game, start, seed=seed + 4)
        verdict = "an exact equilibrium" if result.reached_equilibrium else (
            "NOT an equilibrium (misconverged)"
        )
        out.write(
            f"noisy learner (budget {budget}): settled={result.settled} after "
            f"{result.activations} activations / {result.moves} moves on {verdict}\n"
        )
    return 0


def _cmd_classes(
    miners: int,
    coins: int,
    tiers: int,
    seed: int,
    restricted: bool,
    out,
) -> int:
    from time import perf_counter

    from repro.kernel.classes import ClassGame, run_class_better_response

    if miners < tiers or tiers < 1 or coins < 1:
        out.write("need at least one coin and one miner per tier\n")
        return 2
    # A hardware-tier pyramid: each tier 5x the power and roughly a
    # quarter the population of the one below it.
    weights = [4 ** (tiers - 1 - k) for k in range(tiers)]
    total_weight = sum(weights)
    populations = [max(1, miners * w // total_weight) for w in weights]
    populations[0] += miners - sum(populations)
    spec = []
    for k in range(tiers):
        allowed = tuple(range(min(k, coins - 1), coins)) if restricted else None
        spec.append((5**k, allowed, populations[k]))
    rewards = [2 * coins - j for j in range(coins)]
    cgame = ClassGame.from_spec(spec, rewards)
    out.write(f"{cgame} — compression {cgame.compression:,.0f}x\n")
    started = perf_counter()
    counts = cgame.random_counts(seed=seed)
    trajectory = run_class_better_response(
        cgame, counts, seed=seed + 1, chunk=True, record="summary"
    )
    wall = perf_counter() - started
    out.write(
        f"converged={trajectory.converged} in {trajectory.steps} macro steps "
        f"({trajectory.moved:,} miner moves) — {wall:.3f}s\n"
    )
    mass = cgame.mass_of(trajectory.final)
    total_mass = sum(mass)
    out.write("equilibrium hashrate shares:\n")
    for j, name in enumerate(cgame.coin_names):
        out.write(f"  {name}: {mass[j] / total_mass:.3f}\n")
    out.write("per-miner payoffs by tier (occupied coins):\n")
    for k, payoffs in enumerate(cgame.class_payoffs(trajectory.final)):
        rendered = ", ".join(
            f"{coin}={float(value):.6f}" for coin, value in sorted(payoffs.items())
        )
        out.write(f"  {cgame.class_names[k]} (power {5**k}): {rendered}\n")
    return 0


def _cmd_migrate(seed: int, out) -> int:
    from repro.market.scenario import btc_bch_scenario
    from repro.util.sparkline import labeled_sparkline

    scenario = btc_bch_scenario(horizon_h=240, resolution_h=6, tail_miners=15, seed=seed)
    replay = scenario.replay(seed=seed + 1)
    weights = scenario.weight_series()
    out.write("Figure 1 replay (240 simulated hours, spike at t=96h):\n")
    out.write(labeled_sparkline("BCH/BTC weight ratio", weights.ratio("BCH", "BTC")) + "\n")
    out.write(labeled_sparkline("BCH hashrate share", replay.hashrate_share("BCH")) + "\n")
    out.write(f"coin switches: {replay.total_switches()}\n")
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.verbose or args.quiet:
        from repro.obs import configure_logging

        configure_logging(args.verbose - args.quiet)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "run":
        return _cmd_run(
            args.experiment, args.seed, args.fast, out,
            backend=args.backend, executor=args.executor, workers=args.workers,
            metrics=args.metrics, trace=args.trace, force=args.force,
        )
    if args.command == "sweep":
        return _cmd_sweep(
            args.experiment, args.seed, args.fast, out,
            directory=args.out, shard=args.shard, merge=args.merge,
            backend=args.backend, executor=args.executor, workers=args.workers,
            wave=args.wave, resume=not args.no_resume, force=args.force,
            metrics=args.metrics,
        )
    if args.command == "all":
        code = 0
        for name in sorted(EXPERIMENTS, key=_experiment_key):
            out.write(f"\n=== {name} ===\n")
            code = max(code, _cmd_run(name, args.seed, args.fast, out))
        return code
    if args.command == "demo":
        return _cmd_demo(
            args.miners, args.coins, args.seed, out,
            backend=args.backend, executor=args.executor, workers=args.workers,
            noisy=args.noisy, budget=args.budget,
        )
    if args.command == "classes":
        return _cmd_classes(
            args.miners, args.coins, args.tiers, args.seed, args.restricted, out
        )
    if args.command == "migrate":
        return _cmd_migrate(args.seed, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
