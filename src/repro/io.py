"""JSON serialization for games, configurations and trajectories.

Exact rationals survive the round trip: powers, rewards and step
payoffs serialize as ``"numerator/denominator"`` strings, never floats,
so a game loaded from disk has bit-identical strategic structure
(stability, potential comparisons, design invariants) to the one saved,
and a loaded trajectory's steps carry the original exact gains.

Format (version 1)::

    {
      "format": "game-of-coins/game",
      "version": 1,
      "miners": [{"name": "p1", "power": "5/2"}, ...],
      "coins": ["c1", "c2", ...],
      "rewards": {"c1": "100/1", ...}
    }

Configurations reference the owning game's miner/coin names only.
Trajectories store the initial assignment (with its miner order, so
rebuilt configurations compare equal to the originals) plus the step
list; intermediate configurations are *replayed* from the moves rather
than stored, which keeps files small and the round trip exact.
"""

from __future__ import annotations

import json
import os
import tempfile
from fractions import Fraction
from typing import Any, Callable, Dict, Optional

from repro.core.coin import RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.exceptions import InvalidModelError
from repro.learning.trajectory import Step, Trajectory

GAME_FORMAT = "game-of-coins/game"
CONFIGURATION_FORMAT = "game-of-coins/configuration"
TRAJECTORY_FORMAT = "game-of-coins/trajectory"
_VERSION = 1


def write_json_atomic(
    payload: Any,
    path: str,
    *,
    indent: Optional[int] = 2,
    sort_keys: bool = True,
    default: Optional[Callable[[Any], Any]] = None,
) -> str:
    """Write *payload* as JSON to *path* crash-safely and return *path*.

    The document is serialized to a temporary file in the same
    directory and renamed over *path* with :func:`os.replace`, so
    readers only ever observe the old complete file or the new
    complete file — never a truncated one. The rename is atomic on
    POSIX and same-volume by construction; the temp file is fsynced
    before the rename so a crash cannot publish an empty file.
    """
    target = os.path.abspath(path)
    fd, tmp_path = tempfile.mkstemp(
        dir=os.path.dirname(target),
        prefix=os.path.basename(target) + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=sort_keys, default=default)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def _fraction_to_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _fraction_from_str(text: str, *, context: str) -> Fraction:
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError) as error:
        raise InvalidModelError(f"bad rational {text!r} in {context}: {error}")


def game_to_dict(game: Game) -> Dict[str, Any]:
    """A JSON-ready dict for *game* (exact rationals as strings)."""
    return {
        "format": GAME_FORMAT,
        "version": _VERSION,
        "miners": [
            {"name": miner.name, "power": _fraction_to_str(miner.power)}
            for miner in game.miners
        ],
        "coins": [coin.name for coin in game.coins],
        "rewards": {
            coin.name: _fraction_to_str(game.rewards[coin]) for coin in game.coins
        },
    }


def game_from_dict(payload: Dict[str, Any]) -> Game:
    """Rebuild a game saved by :func:`game_to_dict`."""
    if payload.get("format") != GAME_FORMAT:
        raise InvalidModelError(
            f"not a game payload (format={payload.get('format')!r})"
        )
    if payload.get("version") != _VERSION:
        raise InvalidModelError(f"unsupported game version {payload.get('version')!r}")
    miners = tuple(
        Miner(entry["name"], _fraction_from_str(entry["power"], context=entry["name"]))
        for entry in payload["miners"]
    )
    coins = make_coins(payload["coins"])
    rewards = RewardFunction(
        {
            coin: _fraction_from_str(
                payload["rewards"][coin.name], context=f"reward of {coin.name}"
            )
            for coin in coins
        }
    )
    return Game(miners, coins, rewards)


def configuration_to_dict(config: Configuration) -> Dict[str, Any]:
    """A JSON-ready dict for *config* (names only)."""
    return {
        "format": CONFIGURATION_FORMAT,
        "version": _VERSION,
        "assignment": config.as_dict(),
    }


def configuration_from_dict(payload: Dict[str, Any], game: Game) -> Configuration:
    """Rebuild a configuration against *game* (validating names)."""
    if payload.get("format") != CONFIGURATION_FORMAT:
        raise InvalidModelError(
            f"not a configuration payload (format={payload.get('format')!r})"
        )
    assignment = payload["assignment"]
    mapping = {}
    for miner in game.miners:
        if miner.name not in assignment:
            raise InvalidModelError(f"configuration misses miner {miner.name!r}")
        mapping[miner] = game.coin_named(assignment[miner.name])
    return Configuration.from_mapping(game.miners, mapping)


def trajectory_to_dict(trajectory: Trajectory) -> Dict[str, Any]:
    """A JSON-ready dict for *trajectory* (payoffs as exact rationals).

    Stores the initial configuration (with its miner order) and the
    step list; whether intermediate configurations were recorded is a
    flag, so the loader reproduces the same ``configurations`` shape
    the engine would have produced.
    """
    initial = trajectory.initial
    return {
        "format": TRAJECTORY_FORMAT,
        "version": _VERSION,
        "miner_order": [miner.name for miner in initial.miners],
        "initial": initial.as_dict(),
        "steps": [
            {
                "miner": step.miner.name,
                "source": step.source.name,
                "target": step.target.name,
                "payoff_before": _fraction_to_str(step.payoff_before),
                "payoff_after": _fraction_to_str(step.payoff_after),
            }
            for step in trajectory.steps
        ],
        "converged": trajectory.converged,
        "recorded_configurations": len(trajectory.configurations)
        == len(trajectory.steps) + 1,
    }


def trajectory_from_dict(payload: Dict[str, Any], game: Game) -> Trajectory:
    """Rebuild a trajectory saved by :func:`trajectory_to_dict`.

    Configurations are replayed from the initial assignment and the
    step moves, so every rebuilt configuration (and every step's exact
    payoffs) compares equal to the original's.
    """
    if payload.get("format") != TRAJECTORY_FORMAT:
        raise InvalidModelError(
            f"not a trajectory payload (format={payload.get('format')!r})"
        )
    if payload.get("version") != _VERSION:
        raise InvalidModelError(
            f"unsupported trajectory version {payload.get('version')!r}"
        )
    miners = tuple(game.miner_named(name) for name in payload["miner_order"])
    if frozenset(miners) != frozenset(game.miners):
        raise InvalidModelError("trajectory miner order does not cover the game")
    assignment = payload["initial"]
    initial = Configuration(
        miners, [game.coin_named(assignment[miner.name]) for miner in miners]
    )
    game.validate_configuration(initial)
    recorded = bool(payload.get("recorded_configurations", True))
    trajectory = Trajectory(
        configurations=[initial], converged=bool(payload["converged"])
    )
    config = initial
    for index, entry in enumerate(payload["steps"]):
        miner = game.miner_named(entry["miner"])
        source = game.coin_named(entry["source"])
        target = game.coin_named(entry["target"])
        if config.coin_of(miner) != source:
            raise InvalidModelError(
                f"step {index}: miner {miner.name!r} is on "
                f"{config.coin_of(miner).name!r}, not the recorded source "
                f"{source.name!r}; trajectory is inconsistent"
            )
        config = config.move(miner, target)
        trajectory.steps.append(
            Step(
                index=index,
                miner=miner,
                source=source,
                target=target,
                payoff_before=_fraction_from_str(
                    entry["payoff_before"], context=f"step {index} payoff_before"
                ),
                payoff_after=_fraction_from_str(
                    entry["payoff_after"], context=f"step {index} payoff_after"
                ),
            )
        )
        if recorded:
            trajectory.configurations.append(config)
    if not recorded and trajectory.steps:
        trajectory.configurations.append(config)
    return trajectory


def save_game(game: Game, path: str) -> None:
    """Write *game* to *path* as JSON (atomically; see :func:`write_json_atomic`)."""
    write_json_atomic(game_to_dict(game), path)


def load_game(path: str) -> Game:
    """Read a game previously written by :func:`save_game`."""
    with open(path, "r", encoding="utf-8") as handle:
        return game_from_dict(json.load(handle))


def save_configuration(config: Configuration, path: str) -> None:
    write_json_atomic(configuration_to_dict(config), path)


def load_configuration(path: str, game: Game) -> Configuration:
    with open(path, "r", encoding="utf-8") as handle:
        return configuration_from_dict(json.load(handle), game)


def save_trajectory(trajectory: Trajectory, path: str) -> None:
    """Write *trajectory* to *path* as JSON (atomic write, exact payoffs preserved)."""
    write_json_atomic(trajectory_to_dict(trajectory), path)


def load_trajectory(path: str, game: Game) -> Trajectory:
    """Read a trajectory previously written by :func:`save_trajectory`."""
    with open(path, "r", encoding="utf-8") as handle:
        return trajectory_from_dict(json.load(handle), game)
