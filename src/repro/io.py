"""JSON serialization for games, configurations and results.

Exact rationals survive the round trip: powers and rewards serialize as
``"numerator/denominator"`` strings, never floats, so a game loaded
from disk has bit-identical strategic structure (stability, potential
comparisons, design invariants) to the one saved.

Format (version 1)::

    {
      "format": "game-of-coins/game",
      "version": 1,
      "miners": [{"name": "p1", "power": "5/2"}, ...],
      "coins": ["c1", "c2", ...],
      "rewards": {"c1": "100/1", ...}
    }

Configurations reference the owning game's miner/coin names only.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict

from repro.core.coin import RewardFunction, make_coins
from repro.core.configuration import Configuration
from repro.core.game import Game
from repro.core.miner import Miner
from repro.exceptions import InvalidModelError

GAME_FORMAT = "game-of-coins/game"
CONFIGURATION_FORMAT = "game-of-coins/configuration"
_VERSION = 1


def _fraction_to_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _fraction_from_str(text: str, *, context: str) -> Fraction:
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError) as error:
        raise InvalidModelError(f"bad rational {text!r} in {context}: {error}")


def game_to_dict(game: Game) -> Dict[str, Any]:
    """A JSON-ready dict for *game* (exact rationals as strings)."""
    return {
        "format": GAME_FORMAT,
        "version": _VERSION,
        "miners": [
            {"name": miner.name, "power": _fraction_to_str(miner.power)}
            for miner in game.miners
        ],
        "coins": [coin.name for coin in game.coins],
        "rewards": {
            coin.name: _fraction_to_str(game.rewards[coin]) for coin in game.coins
        },
    }


def game_from_dict(payload: Dict[str, Any]) -> Game:
    """Rebuild a game saved by :func:`game_to_dict`."""
    if payload.get("format") != GAME_FORMAT:
        raise InvalidModelError(
            f"not a game payload (format={payload.get('format')!r})"
        )
    if payload.get("version") != _VERSION:
        raise InvalidModelError(f"unsupported game version {payload.get('version')!r}")
    miners = tuple(
        Miner(entry["name"], _fraction_from_str(entry["power"], context=entry["name"]))
        for entry in payload["miners"]
    )
    coins = make_coins(payload["coins"])
    rewards = RewardFunction(
        {
            coin: _fraction_from_str(
                payload["rewards"][coin.name], context=f"reward of {coin.name}"
            )
            for coin in coins
        }
    )
    return Game(miners, coins, rewards)


def configuration_to_dict(config: Configuration) -> Dict[str, Any]:
    """A JSON-ready dict for *config* (names only)."""
    return {
        "format": CONFIGURATION_FORMAT,
        "version": _VERSION,
        "assignment": config.as_dict(),
    }


def configuration_from_dict(payload: Dict[str, Any], game: Game) -> Configuration:
    """Rebuild a configuration against *game* (validating names)."""
    if payload.get("format") != CONFIGURATION_FORMAT:
        raise InvalidModelError(
            f"not a configuration payload (format={payload.get('format')!r})"
        )
    assignment = payload["assignment"]
    mapping = {}
    for miner in game.miners:
        if miner.name not in assignment:
            raise InvalidModelError(f"configuration misses miner {miner.name!r}")
        mapping[miner] = game.coin_named(assignment[miner.name])
    return Configuration.from_mapping(game.miners, mapping)


def save_game(game: Game, path: str) -> None:
    """Write *game* to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(game_to_dict(game), handle, indent=2, sort_keys=True)


def load_game(path: str) -> Game:
    """Read a game previously written by :func:`save_game`."""
    with open(path, "r", encoding="utf-8") as handle:
        return game_from_dict(json.load(handle))


def save_configuration(config: Configuration, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(configuration_to_dict(config), handle, indent=2, sort_keys=True)


def load_configuration(path: str, game: Game) -> Configuration:
    with open(path, "r", encoding="utf-8") as handle:
        return configuration_from_dict(json.load(handle), game)
