"""``repro.obs`` — zero-overhead instrumentation, tracing, manifests.

The library-wide observability layer every other subsystem emits into:

* :class:`Recorder` / :class:`NullRecorder` / :class:`MetricsRecorder`
  — the counter/timer/gauge/event protocol. The NullRecorder is the
  process-wide default; every hook site guards its work behind
  ``recorder.enabled``, so disabled observability costs nothing and
  changes nothing (bit-identical results, identical RNG consumption —
  ``tests/test_obs.py`` asserts both).
* :class:`TraceWriter` — structured JSONL event export.
* :class:`RunManifest` / :func:`environment_stamp` — the receipt of a
  run: args, seed, versions, git SHA, hostname, executor, per-phase
  wall time, counter totals.
* :func:`get_logger` / :func:`configure_logging` — the stdlib
  ``repro.*`` logger hierarchy (NullHandler by default).
* :func:`report` — the human-readable summary table.

What the built-in hook points count (all names are stable API):

=========================  ============================================
``engine.runs/steps/scans``    scalar *and* tensor trajectory loops —
                               totals match the returned trajectories'
                               lengths exactly, on every executor
``engine.converged``           runs that ended stable
``tensor.lane.<int|float|exact>``  arithmetic lane chosen per job
``tensor.buckets``             lockstep buckets formed
``tensor.compactions``         population compaction passes
``tensor.escalations.<f64|exact>`` float-screen escalations
``run_many.cells.<route>``     cells served per executor route
``pool.degradations``          worker pools that fell back to serial
``space.codes_visited``        ConfigSpace nodes scanned
``space.equilibria``           stable codes found
``stochastic.races``           lottery blocks raced
``stochastic.budget_rounds``   per-decision sample-budget draws
``noisy.activations/moves``    noisy-learner dynamics
``sweep.runs``                 ``run_sweep`` invocations
``sweep.cells``                cells this invocation was responsible for
``sweep.cache.<hits|misses|writes>``  content-addressed result cache
=========================  ============================================
"""

from repro.obs.log import configure_logging, get_logger
from repro.obs.manifest import RunManifest, environment_stamp
from repro.obs.recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    get_recorder,
    observe,
    set_recorder,
)
from repro.obs.report import report
from repro.obs.trace import TraceWriter

__all__ = [
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "observe",
    "TraceWriter",
    "RunManifest",
    "environment_stamp",
    "get_logger",
    "configure_logging",
    "report",
]
