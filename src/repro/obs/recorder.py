"""The Recorder protocol and its two implementations.

Instrumentation in this library is *pull-free*: hot code asks
:func:`get_recorder` for the process-wide recorder and emits counters,
timer spans, gauges and events into it. The default recorder is
:data:`NULL_RECORDER` — a no-op singleton — and every hook site guards
its bookkeeping behind ``recorder.enabled``, so with observability off
(the default) the hot loops execute the same instructions as before
this subsystem existed: no dict updates, no string formatting, no RNG
perturbation, bit-identical results. The parity suites run with the
NullRecorder installed and must keep passing unchanged.

Switch a region on with :func:`observe`::

    from repro import obs

    with obs.observe(obs.MetricsRecorder()) as rec:
        run_many(cells)
    print(obs.report(rec).render())

:class:`MetricsRecorder` aggregates named counters (monotonic integer
sums), gauges (last value wins), and timers (``perf_counter`` span
totals with call counts), and forwards structured events to an optional
:class:`~repro.obs.trace.TraceWriter` for JSONL export. Updates are
lock-protected so the ``"thread"`` executor's workers can share one
recorder; multi-*process* workers do not share memory, so pooled
``"process"`` runs record coordination-level metrics (cells, packs,
degradations) in the parent but not the workers' per-step counters —
the ``"serial"`` and ``"vectorized"`` executors record everything.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "observe",
]


class _NullSpan:
    """The no-op timer span; one shared instance, nothing measured."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """What every instrumentation sink implements.

    The base class *is* the no-op implementation (every method returns
    immediately), so subclasses override only what they collect.
    ``enabled`` is the hot-path guard: hook sites skip all bookkeeping —
    even building the values they would record — when it is ``False``.
    """

    #: Hot-path guard; hook sites emit nothing when this is ``False``.
    enabled: bool = False

    def count(self, name: str, value: int = 1) -> None:
        """Add *value* to the named monotonic counter."""

    def gauge(self, name: str, value: Any) -> None:
        """Set the named gauge to *value* (last write wins)."""

    def timer(self, name: str) -> Any:
        """A context manager accumulating a ``perf_counter`` span."""
        return _NULL_SPAN

    def add_time(self, name: str, seconds: float) -> None:
        """Add one measured span to the named timer directly."""

    def event(self, name: str, **fields: Any) -> None:
        """Emit one structured event (traced as a JSONL record)."""


class NullRecorder(Recorder):
    """The default: record nothing, cost nothing, change nothing."""

    __slots__ = ()


#: The process-wide default recorder. Hook sites compare against
#: ``enabled`` rather than this identity, so custom no-ops work too.
NULL_RECORDER = NullRecorder()

_current: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The currently installed recorder (the NullRecorder by default)."""
    return _current


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install *recorder* process-wide; returns the previous one.

    ``None`` restores the :data:`NULL_RECORDER`. Prefer the
    :func:`observe` context manager, which restores automatically.
    """
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def observe(recorder: Recorder) -> Iterator[Recorder]:
    """Install *recorder* for the duration of the ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


class _TimerSpan:
    """One ``perf_counter`` span feeding a :class:`MetricsRecorder`."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "MetricsRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_TimerSpan":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._recorder.add_time(self._name, perf_counter() - self._start)
        return False


class MetricsRecorder(Recorder):
    """Aggregate counters, gauges, timers; forward events to a trace.

    ``trace`` is an optional :class:`~repro.obs.trace.TraceWriter`;
    events are appended to the in-memory ``events`` list either way, so
    tests and reports work without a file. All updates take the
    recorder's lock — cheap at the boundary-level frequency the hook
    sites emit at, and required for the ``"thread"`` executor.
    """

    enabled = True

    def __init__(self, trace: Any = None) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Any] = {}
        #: name → [total_seconds, span_count]
        self.timers: Dict[str, List[float]] = {}
        self.events: List[Dict[str, Any]] = []
        self.trace = trace
        self._lock = threading.Lock()

    # -- sinks ---------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: Any) -> None:
        with self._lock:
            self.gauges[name] = value

    def timer(self, name: str) -> _TimerSpan:
        return _TimerSpan(self, name)

    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            bucket = self.timers.setdefault(name, [0.0, 0])
            bucket[0] += seconds
            bucket[1] += 1

    def event(self, name: str, **fields: Any) -> None:
        with self._lock:
            self.events.append({"event": name, **fields})
        if self.trace is not None:
            self.trace.write(name, **fields)

    # -- reads ---------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe copy of everything collected so far."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "timers": {
                    name: {"seconds": total, "count": count}
                    for name, (total, count) in self.timers.items()
                },
                "events": len(self.events),
            }
